"""The LB-GEMINI lower bound (Agrawal et al. + Rafiei's symmetry).

The classic GEMINI framework lower-bounds the Euclidean distance by the
distance over the stored (first) coefficients alone, discarding the
omitted part entirely.  Rafiei & Mendelzon's improvement — counting each
stored coefficient's conjugate twin — is inherent in our weighted
half-spectrum bookkeeping, so this implementation *is* LB-GEMINI.

GEMINI stores no error term and no ``minProperty``, so it cannot produce a
meaningful upper bound; :func:`gemini_bounds` reports ``inf``.
"""

from __future__ import annotations

import math

from repro.bounds.core import BoundPair, partition
from repro.compression.base import SpectralSketch
from repro.spectral.dft import Spectrum

__all__ = ["gemini_bounds"]


def gemini_bounds(query: Spectrum, sketch: SpectralSketch) -> BoundPair:
    """LB-GEMINI: distance over stored coefficients only; no upper bound."""
    part = partition(query, sketch)
    return BoundPair(lower=math.sqrt(part.exact_sq))
