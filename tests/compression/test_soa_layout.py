"""The canonical structure-of-arrays surface of :class:`SketchDatabase`.

Every packed-array path — batch compression, row views, ``.npz``
serialisation, shared-memory staging — funnels through ``from_soa`` /
``soa_blocks``, so this file locks that API: field set and dtypes,
contiguity caching, the precomputed norms block, the bitwise integrity
handshake, and round-trips through each boundary.
"""

import numpy as np
import pytest

from repro.compression import BestMinErrorCompressor, SketchDatabase
from repro.compression.database import sketch_norms_sq
from repro.exceptions import CompressionError, CorruptionError
from repro.timeseries import zscore


def make_db(seed=11, count=10, n=64):
    rng = np.random.default_rng(seed)
    matrix = np.array(
        [zscore(np.cumsum(rng.normal(size=n))) for _ in range(count)]
    )
    names = [f"q{i}" for i in range(count)]
    return SketchDatabase.from_matrix(
        matrix, BestMinErrorCompressor(5), names
    )


@pytest.fixture(scope="module")
def db():
    return make_db()


def assert_databases_equal(left, right):
    assert (left.n, left.basis, left.method) == (
        right.n,
        right.basis,
        right.method,
    )
    assert left.names == right.names
    for field in SketchDatabase.SOA_FIELDS:
        lhs = left.soa_blocks()[field]
        rhs = right.soa_blocks()[field]
        assert lhs.dtype == rhs.dtype
        assert lhs.tobytes() == rhs.tobytes(), field


class TestBlocks:
    def test_blocks_cover_every_field_plus_norms(self, db):
        blocks = db.soa_blocks()
        assert set(blocks) == set(SketchDatabase.SOA_FIELDS) | {"norms"}

    def test_blocks_are_contiguous_in_canonical_dtypes(self, db):
        blocks = db.soa_blocks()
        expected = {
            "positions": np.intp,
            "coefficients": np.complex128,
            "weights": np.float64,
            "errors": np.float64,
            "min_powers": np.float64,
            "widths": np.intp,
            "norms": np.float64,
        }
        for field, block in blocks.items():
            assert block.flags["C_CONTIGUOUS"], field
            assert block.dtype == np.dtype(expected[field]), field

    def test_contiguous_blocks_are_cached_not_recopied(self, db):
        first = db.soa_blocks()
        second = db.soa_blocks()
        for field in first:
            assert first[field] is second[field], field

    def test_noncontiguous_fields_are_canonicalised_in_place(self):
        db = make_db(seed=5)
        db.weights = np.asfortranarray(np.ascontiguousarray(db.weights))
        assert not db.weights.flags["C_CONTIGUOUS"]
        blocks = db.soa_blocks()
        assert blocks["weights"].flags["C_CONTIGUOUS"]
        assert db.weights is blocks["weights"]

    def test_norms_block_matches_the_reference_formula(self, db):
        blocks = db.soa_blocks()
        re = db.coefficients.real
        im = db.coefficients.imag
        reference = np.einsum("ij,ij->i", db.weights, re * re + im * im)
        assert blocks["norms"].tobytes() == reference.tobytes()
        assert db.norms_sq is blocks["norms"]

    def test_widths_property_aliases_the_widths_block(self, db):
        assert db.widths is db.soa_blocks()["widths"]


class TestFromSoa:
    def test_round_trips_the_database(self, db):
        blocks = db.soa_blocks()
        rebuilt = SketchDatabase.from_soa(
            {f: blocks[f] for f in SketchDatabase.SOA_FIELDS},
            n=db.n,
            basis=db.basis,
            method=db.method,
            names=db.names,
        )
        assert_databases_equal(db, rebuilt)

    def test_adopts_contiguous_blocks_zero_copy(self, db):
        blocks = db.soa_blocks()
        rebuilt = SketchDatabase.from_soa(
            {f: blocks[f] for f in SketchDatabase.SOA_FIELDS},
            n=db.n,
            basis=db.basis,
            method=db.method,
        )
        for field in SketchDatabase.SOA_FIELDS:
            assert rebuilt.soa_blocks()[field] is blocks[field], field

    def test_copy_true_severs_aliasing(self, db):
        blocks = db.soa_blocks()
        rebuilt = SketchDatabase.from_soa(
            {f: blocks[f] for f in SketchDatabase.SOA_FIELDS},
            n=db.n,
            basis=db.basis,
            method=db.method,
            names=db.names,
            copy=True,
        )
        for field in SketchDatabase.SOA_FIELDS:
            assert rebuilt.soa_blocks()[field] is not blocks[field], field
        assert_databases_equal(db, rebuilt)

    def test_missing_field_raises(self, db):
        blocks = db.soa_blocks()
        partial = {
            f: blocks[f]
            for f in SketchDatabase.SOA_FIELDS
            if f != "weights"
        }
        with pytest.raises(CompressionError, match="weights"):
            SketchDatabase.from_soa(
                partial, n=db.n, basis=db.basis, method=db.method
            )

    def test_shape_disagreement_raises(self, db):
        blocks = {f: db.soa_blocks()[f] for f in SketchDatabase.SOA_FIELDS}
        blocks["weights"] = blocks["weights"][:, :-1]
        with pytest.raises(CompressionError, match="shape"):
            SketchDatabase.from_soa(
                blocks, n=db.n, basis=db.basis, method=db.method
            )


class TestNormsHandshake:
    def test_matching_norms_pass_and_seed_the_cache(self, db):
        blocks = db.soa_blocks()
        rebuilt = SketchDatabase.from_soa(
            {f: blocks[f] for f in SketchDatabase.SOA_FIELDS},
            n=db.n,
            basis=db.basis,
            method=db.method,
            verify_norms=blocks["norms"],
        )
        assert rebuilt._norms_cache.tobytes() == blocks["norms"].tobytes()

    def test_tampered_norms_raise_corruption(self, db):
        blocks = db.soa_blocks()
        torn = blocks["norms"].copy()
        torn[0] = np.nextafter(torn[0], np.inf)
        with pytest.raises(CorruptionError, match="handshake"):
            SketchDatabase.from_soa(
                {f: blocks[f] for f in SketchDatabase.SOA_FIELDS},
                n=db.n,
                basis=db.basis,
                method=db.method,
                verify_norms=torn,
            )

    def test_tampered_field_fails_against_published_norms(self, db):
        blocks = {f: db.soa_blocks()[f] for f in SketchDatabase.SOA_FIELDS}
        weights = blocks["weights"].copy()
        weights[2, 0] *= 1.5
        blocks["weights"] = weights
        with pytest.raises(CorruptionError):
            SketchDatabase.from_soa(
                blocks,
                n=db.n,
                basis=db.basis,
                method=db.method,
                verify_norms=db.norms_sq,
            )

    def test_norms_are_bitwise_deterministic_across_derivations(self, db):
        again = sketch_norms_sq(
            db.weights.copy(), db.coefficients.copy()
        )
        assert again.tobytes() == db.norms_sq.tobytes()


class TestRoundTrips:
    def test_save_load_preserves_blocks_and_norms(self, db, tmp_path):
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = SketchDatabase.load(path)
        assert_databases_equal(db, loaded)
        # The norms travel in the file: load seeds the cache instead of
        # recomputing, and the cached block is bitwise identical.
        assert loaded._norms_cache.tobytes() == db.norms_sq.tobytes()

    def test_take_slices_blocks_and_norms_bitwise(self, db):
        rows = [7, 2, 2, 9]
        view = db.take(rows)
        parent = db.soa_blocks()
        child = view.soa_blocks()
        for field in SketchDatabase.SOA_FIELDS:
            assert (
                child[field].tobytes() == parent[field][rows].tobytes()
            ), field
        assert child["norms"].tobytes() == parent["norms"][rows].tobytes()

    def test_appended_rebuilds_a_canonical_layout(self, db):
        grown = db.appended(db.sketch(3))
        blocks = grown.soa_blocks()
        assert len(grown) == len(db) + 1
        for field in ("positions", "coefficients", "weights"):
            assert (
                blocks[field][: len(db)].tobytes()
                == db.soa_blocks()[field].tobytes()
            ), field
        assert blocks["norms"][-1] == db.norms_sq[3]

    def test_batch_and_scalar_compression_share_one_layout(self):
        rng = np.random.default_rng(29)
        matrix = np.array(
            [zscore(np.cumsum(rng.normal(size=64))) for _ in range(8)]
        )
        compressor = BestMinErrorCompressor(5)
        batch = SketchDatabase.from_matrix(matrix, compressor)
        scalar = SketchDatabase.from_matrix(matrix, compressor, batch=False)
        assert_databases_equal(batch, scalar)
