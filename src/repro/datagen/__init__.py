"""Synthetic query-log substrate replacing the proprietary MSN logs."""

from repro.datagen.calendar import (
    easter_date,
    mothers_day,
    nth_weekday_of_month,
    super_bowl_sunday,
    thanksgiving,
)
from repro.datagen.catalog import CATALOG, QueryProfile, catalog_names, profile
from repro.datagen.components import DayGrid
from repro.datagen.events import (
    LogAggregator,
    LogRecord,
    daily_rates,
    iter_log_records,
    sample_daily_counts,
)
from repro.datagen.generator import (
    DEFAULT_MIXTURE,
    DEFAULT_START,
    QueryLogGenerator,
)

__all__ = [
    "easter_date",
    "mothers_day",
    "thanksgiving",
    "super_bowl_sunday",
    "nth_weekday_of_month",
    "CATALOG",
    "QueryProfile",
    "catalog_names",
    "profile",
    "DayGrid",
    "LogRecord",
    "LogAggregator",
    "daily_rates",
    "sample_daily_counts",
    "iter_log_records",
    "QueryLogGenerator",
    "DEFAULT_MIXTURE",
    "DEFAULT_START",
]
