"""Euclidean distance kernels with early abandoning.

Both the linear-scan baseline and the index's verification phase compare a
query against uncompressed sequences and "perform an early termination of
the Euclidean distance, when the running sum exceeded the best-so-far
match" (section 7.4).  :func:`euclidean_early_abandon` implements that in
chunks, so the common case (abandon after the first chunk) costs a
fraction of a full comparison while staying vectorised.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SeriesMismatchError

__all__ = [
    "VERIFY_CHUNK",
    "euclidean",
    "euclidean_early_abandon",
    "euclidean_early_abandon_sq",
    "distances_to_query",
]

#: Chunk width of the squared-distance verification kernel.  The blocked
#: batch verifier accumulates over the same chunk boundaries with the
#: same einsum reduction, so both paths produce bit-identical sums.
VERIFY_CHUNK = 64


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise SeriesMismatchError(
            f"cannot compare vectors of shapes {a.shape} and {b.shape}"
        )
    return float(np.linalg.norm(a - b))


def euclidean_early_abandon(
    a: np.ndarray,
    b: np.ndarray,
    cutoff: float,
    chunk: int = 64,
) -> float:
    """Euclidean distance, abandoned once it provably exceeds ``cutoff``.

    Returns the exact distance when it is ``< cutoff`` and ``inf``
    otherwise.  ``chunk`` trades per-chunk numpy overhead against wasted
    arithmetic after the cutoff is crossed.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise SeriesMismatchError(
            f"cannot compare vectors of shapes {a.shape} and {b.shape}"
        )
    if not math.isfinite(cutoff):
        return euclidean(a, b)
    cutoff_sq = cutoff * cutoff
    total = 0.0
    for start in range(0, a.size, chunk):
        diff = a[start : start + chunk] - b[start : start + chunk]
        total += float(np.dot(diff, diff))
        if total >= cutoff_sq:
            return float("inf")
    return math.sqrt(total)


def euclidean_early_abandon_sq(
    a: np.ndarray,
    b: np.ndarray,
    cutoff_sq: float,
    chunk: int = VERIFY_CHUNK,
) -> float:
    """Squared Euclidean distance, abandoned once it exceeds ``cutoff_sq``.

    The shared verifier (:mod:`repro.engine.core`) works entirely in
    squared-distance space: running squared sums compare without ``sqrt``
    round-trips, so bit-identical rows produce bit-identical keys and
    distance ties break deterministically by sequence id.  Abandonment is
    *strict* (``total > cutoff_sq``): a candidate that exactly ties the
    incumbent k-th distance survives to the tie-breaking comparison
    instead of being dropped mid-sum.  Returns the exact squared distance
    when ``<= cutoff_sq`` and ``inf`` otherwise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise SeriesMismatchError(
            f"cannot compare vectors of shapes {a.shape} and {b.shape}"
        )
    # Always accumulate chunk by chunk, even with an infinite cutoff: the
    # running sum is then the same left-to-right float64 arithmetic on
    # every call, so identical vectors produce bit-identical squared
    # distances no matter which cutoff was active — which is what lets
    # the cross-index agreement guarantee extend to exact distance ties.
    # The per-chunk reduction is einsum, not BLAS dot: numpy's einsum
    # reduces a row of a 2-D operand and a 1-D operand identically, so
    # the batch verifier's row-wise chunked einsum reproduces this sum
    # bit for bit, while BLAS may order the accumulation differently.
    abandon = math.isfinite(cutoff_sq)
    total = 0.0
    for start in range(0, a.size, chunk):
        diff = a[start : start + chunk] - b[start : start + chunk]
        total += float(np.einsum("i,i->", diff, diff))
        if abandon and total > cutoff_sq:
            return float("inf")
    return total


def distances_to_query(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Distances from every row of ``matrix`` to ``query``, vectorised."""
    matrix = np.asarray(matrix, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != query.size:
        raise SeriesMismatchError(
            f"matrix of shape {matrix.shape} does not match query of "
            f"length {query.size}"
        )
    diff = matrix - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
