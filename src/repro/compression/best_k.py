"""Best-coefficient compressors — the paper's contribution (section 3).

Instead of the first k coefficients, keep the k coefficients with the
*largest magnitude* (the tallest periodogram peaks).  Because the data are
highly periodic, most of the energy sits at mid-spectrum frequencies and
the best coefficients reconstruct the sequences far better (fig. 5).

Keeping the best coefficients yields the ``minProperty`` (Fact 1): every
omitted coefficient's magnitude is bounded by the smallest retained one,
``minPower``.  The three bound algorithms consume different side
information:

* **BestMin** — best coefficients + middle-coefficient filler; bounds use
  ``minPower`` only.
* **BestError** — best coefficients + omitted energy ``T.err``.
* **BestMinError** — best coefficients + ``T.err``; bounds use both.

The sketches for BestError and BestMinError are identical on disk; they
differ only in which bound algorithm interprets them, so
:class:`BestKCompressor` tags the sketch with the requested ``method``.
"""

from __future__ import annotations

from repro.compression.base import SpectralSketch
from repro.compression.first_k import _append_middle, _sketch_from_indexes
from repro.exceptions import CompressionError
from repro.spectral.dft import Spectrum
from repro.spectral.reconstruction import best_indexes

__all__ = [
    "BestKCompressor",
    "BestMinCompressor",
    "BestErrorCompressor",
    "BestMinErrorCompressor",
]


class BestKCompressor:
    """Keep the ``k`` largest-magnitude coefficients (skipping DC).

    Parameters
    ----------
    k:
        Number of retained best coefficients.
    store_error:
        Record ``T.err``, the weighted energy of the omitted coefficients.
    store_middle:
        Pad with the middle coefficient (storage-parity filler for the
        methods that do not store the error).  The filler does not take
        part in the ``minProperty``.
    method:
        Method tag recorded on the produced sketches.
    """

    def __init__(
        self,
        k: int,
        store_error: bool = False,
        store_middle: bool = False,
        method: str = "best_k",
    ) -> None:
        if k < 1:
            raise CompressionError(f"k must be >= 1, got {k}")
        if store_error and store_middle:
            raise CompressionError(
                "store_error and store_middle are mutually exclusive "
                "(each fills the same one-double budget slot)"
            )
        self.k = k
        self.store_error = store_error
        self.store_middle = store_middle
        self.method = method

    def compress(self, spectrum: Spectrum) -> SpectralSketch:
        """Compress a full :class:`Spectrum` into a best-coefficient sketch."""
        best = best_indexes(spectrum, self.k)
        if best.size < self.k:
            raise CompressionError(
                f"cannot keep {self.k} coefficients of a length-{spectrum.n} "
                f"signal ({best.size} available)"
            )
        # minPower is defined over the *best* selection only, before any
        # middle-coefficient padding.
        min_power = float(spectrum.magnitudes[best].min())
        indexes = _append_middle(spectrum, best) if self.store_middle else best
        return _sketch_from_indexes(
            spectrum, indexes, self.store_error, min_power, self.method
        )

    def compress_series(self, values) -> SpectralSketch:
        """Convenience: transform a raw sequence, then compress it."""
        return self.compress(Spectrum.from_series(values))


class BestMinCompressor(BestKCompressor):
    """``k`` best coefficients + middle coefficient (algorithm BestMin)."""

    def __init__(self, k: int) -> None:
        super().__init__(k, store_middle=True, method="best_min")


class BestErrorCompressor(BestKCompressor):
    """``k`` best coefficients + error (algorithm BestError)."""

    def __init__(self, k: int) -> None:
        super().__init__(k, store_error=True, method="best_error")


class BestMinErrorCompressor(BestKCompressor):
    """``k`` best coefficients + error (algorithm BestMinError)."""

    def __init__(self, k: int) -> None:
        super().__init__(k, store_error=True, method="best_min_error")
