"""Cross-model agreement on the catalog's named exemplars.

Four models, four different notions of "bursty" — so this suite does
NOT demand they agree in general (the experiment's mean Jaccard between
e.g. ``ma`` and ``macd`` is well under 0.5, and that disagreement is a
documented result, not a bug).  What every model *must* agree on is the
obvious cases: for the catalog's sharpest annual events, each model's
heaviest region overlaps the known event window.  The structural tests
then pin the agreement report itself: scores in range, worst offenders
named, deterministic output.
"""

import datetime as _dt

import pytest

from repro.datagen.generator import QueryLogGenerator
from repro.evaluation.bursts import (
    burst_model_experiment,
    experiment_models,
)

_START = _dt.date(2002, 1, 1)


@pytest.fixture(scope="module")
def collection():
    return QueryLogGenerator(seed=0, start=_START, days=365).catalog_collection()


@pytest.fixture(scope="module")
def models(collection):
    return experiment_models(collection)


def _day(month, day):
    return (_dt.date(2002, month, day) - _START).days


#: (query, inclusive day window the heaviest region must overlap).  The
#: windows wrap the catalog's ramp-then-drop shapes: the ramp rises for
#: up to ~30 days before the event, so the window opens that far early.
_EXEMPLARS = [
    ("halloween", (_day(10, 31) - 25, _day(10, 31) + 10)),
    ("christmas", (_day(12, 25) - 35, 364)),
    ("easter", (_day(3, 31) - 35, _day(3, 31) + 10)),  # Easter 2002: Mar 31
    ("thanksgiving", (_day(11, 28) - 20, _day(11, 28) + 7)),
    ("valentines day", (_day(2, 14) - 15, _day(2, 14) + 7)),
]


class TestObviousBursts:
    @pytest.mark.parametrize(
        "query, window", _EXEMPLARS, ids=[q for q, _ in _EXEMPLARS]
    )
    def test_every_model_finds_the_event(self, models, collection, query, window):
        lo, hi = window
        values = collection[query].values
        for name, model in models.items():
            regions = model.detect(values)
            assert regions, f"{name} found no bursts in {query!r}"
            heaviest = max(regions, key=lambda r: r.weight)
            assert heaviest.overlap_days(lo, hi) > 0, (
                f"{name}'s heaviest region {heaviest} misses the "
                f"{query!r} window [{lo}, {hi}]"
            )


class TestAgreementReport:
    @pytest.fixture(scope="class")
    def report(self, collection):
        return burst_model_experiment(collection, model="ma", top=10)

    def test_every_pair_is_compared_once(self, report):
        pairs = {(a.left, a.right) for a in report.agreements}
        assert len(pairs) == 6  # C(4, 2)
        assert all(left != right for left, right in pairs)

    def test_jaccard_scores_are_in_range(self, report):
        for agreement in report.agreements:
            assert 0.0 <= agreement.mean_jaccard <= 1.0
            assert 0.0 <= agreement.worst_jaccard <= 1.0
            assert agreement.worst_jaccard <= agreement.mean_jaccard + 1e-12

    def test_disagreements_are_documented_not_hidden(self, report):
        for agreement in report.agreements:
            assert 0 < agreement.compared <= report.queries
            assert agreement.worst_query  # the offender is named

    def test_leaderboard_is_ranked_and_bounded(self, report):
        board = report.leaderboard
        assert 0 < len(board) <= 10
        keys = [(-e.score, e.name) for e in board]
        assert keys == sorted(keys)
        assert all(e.score > 0.0 for e in board)

    def test_report_is_deterministic(self, collection, report):
        again = burst_model_experiment(collection, model="ma", top=10)
        assert again == report

    def test_unknown_headline_model_is_rejected(self, collection):
        with pytest.raises(ValueError, match="unknown model"):
            burst_model_experiment(collection, model="wavelets")

    def test_as_table_mentions_every_model(self, report):
        table = report.as_table()
        for name in ("ma", "kleinberg", "elastic", "macd"):
            assert name in table
