"""Scatter-gather candidate generation over N shards, one engine index.

:class:`ShardRouter` implements the engine's
:class:`~repro.engine.core.EngineIndex` protocol, so everything built on
that seam — the shared verifier, the blocked batched verifier, the obs
accounting, the resilience guards, :class:`~repro.resilience.FaultyIndex`
— works against a sharded population unchanged.  The router owns only
*routing*:

* **scatter** — each shard's own generator runs over the query (serially,
  on a fork pool, or on the persistent
  :class:`~repro.cluster.ShardWorkerPool`), producing a per-shard
  :class:`~repro.engine.core.CandidateSet`;
* **gather** — per-shard candidates are translated to global ids and
  merged under one *global* :math:`\\sigma_{UB}`, rebuilt from the
  shards' ``top_ubs``: each of the global k smallest upper bounds lies
  inside its own shard's top-k, so the merged k-th smallest equals the
  exact global value and cross-shard pruning is no weaker than a
  monolithic traversal;
* **degradation** — a shard whose generator fails is served by an
  exhaustive scan of *that shard only* (mirroring the engine's global
  fallback), so one poisoned shard cannot take down the others'
  answers; member-level faults flow through the engine's usual
  quarantine path with global ids.

The extended accounting invariant ``pruned + retrievals + quarantined ==
database_size`` holds globally because every shard's generator accounts
for exactly its own members and shards partition the population.
"""

from __future__ import annotations

import heapq
from dataclasses import fields as dataclass_fields
from typing import Iterator, Sequence

import numpy as np

from repro import obs
from repro.engine.core import (
    CandidateSet,
    SigmaTracker,
    execute_knn,
    execute_range,
)
from repro.engine.executor import fork_map
from repro.exceptions import KeyNotFoundError, ReproError
from repro.index.results import Neighbor, SearchStats
from repro.resilience.quarantine import quarantine_of
from repro.resilience.retry import active_policy

__all__ = ["ShardRouter"]


def _shard_fallback(size: int) -> CandidateSet:
    """Exhaustive shard-local candidates (shard-scoped linear scan)."""
    return CandidateSet(
        entries=[(0.0, seq_id) for seq_id in range(size)], generated=size
    )


def _snapshot(stats: SearchStats) -> dict:
    return {
        spec.name: getattr(stats, spec.name)
        for spec in dataclass_fields(stats)
    }


def _restore(stats: SearchStats, snapshot: dict) -> None:
    for name, value in snapshot.items():
        setattr(stats, name, value)


class _RouterStore:
    """Batched reads over the per-shard stores, keyed by global id.

    Exists so the engine's block fetcher (``fetch_block``) can keep
    using one ``read_many`` call per verification block; reads are
    grouped by shard and reassembled in request order.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def __len__(self) -> int:
        return len(self._router)

    def read(self, seq_id: int) -> np.ndarray:
        return self._router.fetch(int(seq_id))

    def read_many(self, seq_ids) -> np.ndarray:
        router = self._router
        ids = [int(seq_id) for seq_id in seq_ids]
        rows: list[np.ndarray | None] = [None] * len(ids)
        by_shard: dict[int, list[tuple[int, int]]] = {}
        for position, gid in enumerate(ids):
            shard, local = router._locate(gid)
            by_shard.setdefault(shard, []).append((position, local))
        for shard, pairs in by_shard.items():
            sub = router._shards[shard]
            store = getattr(sub, "store", None)
            locals_ = [local for _, local in pairs]
            if store is not None and hasattr(store, "read_many"):
                block = store.read_many(locals_)
            else:
                block = [sub.fetch(local) for local in locals_]
            for (position, _), row in zip(pairs, block):
                rows[position] = row
        return np.stack(rows)


class ShardRouter:
    """One :class:`EngineIndex` over N shard sub-indexes.

    Parameters
    ----------
    shards:
        ``(index, global_ids)`` pairs — a sub-index plus the ascending
        global sequence ids its local slots map to.  An empty shard may
        be represented as ``(None, empty_array)``.
    partitioner:
        The :class:`~repro.cluster.Partitioner` that produced the split;
        required for routing dynamic inserts.
    workers:
        ``None``/1 scatters serially; ``N > 1`` runs the per-shard
        generators on a fork pool (streaming generators are materialised
        in the workers, since lazy iterators cannot cross processes).
        Ignored when ``pool`` is given.
    pool:
        A started :class:`~repro.cluster.ShardWorkerPool`.  When given,
        candidate generation is delegated to the persistent workers
        (one warm process per populated shard) instead of forking per
        call; the router owns the pool and shuts it down in
        :meth:`close`.  Gather, verification and accounting are
        unchanged, so answers are bit-identical to the serial scatter
        (see ``docs/CONCURRENCY.md``).
    """

    obs_name = "index.sharded"

    def __init__(
        self,
        shards: Sequence[tuple[object, np.ndarray]],
        partitioner=None,
        workers: int | None = None,
        sequence_length: int | None = None,
        pool=None,
    ) -> None:
        if not shards:
            raise ReproError("a ShardRouter needs at least one shard")
        self._shards = [sub for sub, _ in shards]
        self._global_ids = [
            np.asarray(ids, dtype=np.intp) for _, ids in shards
        ]
        self._partitioner = partitioner
        self._workers = workers
        for sub, ids in zip(self._shards, self._global_ids):
            if sub is None and ids.size:
                raise ReproError("a populated shard needs an index")
            if sub is not None and len(sub) != ids.size:
                raise ReproError(
                    f"shard index holds {len(sub)} members but "
                    f"{ids.size} global ids were supplied"
                )
        total = int(sum(ids.size for ids in self._global_ids))
        if total:
            all_ids = np.concatenate(self._global_ids)
            if not np.array_equal(np.sort(all_ids), np.arange(total)):
                raise ReproError(
                    "shard global ids must partition range(total) — "
                    "every id on exactly one shard"
                )
        self._shard_of = np.empty(total, dtype=np.intp)
        self._local_of = np.empty(total, dtype=np.intp)
        for shard, ids in enumerate(self._global_ids):
            self._shard_of[ids] = shard
            self._local_of[ids] = np.arange(ids.size)
        if sequence_length is None:
            populated = next(
                (sub for sub in self._shards if sub is not None), None
            )
            if populated is None:
                raise ReproError(
                    "sequence_length is required for an all-empty router"
                )
            sequence_length = populated.sequence_length
        self._n = int(sequence_length)
        self._store = _RouterStore(self)
        self._pool = pool

    # ------------------------------------------------------------------
    # EngineIndex surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(
            sum(len(sub) for sub in self._shards if sub is not None)
        )

    @property
    def sequence_length(self) -> int:
        return self._n

    @property
    def store(self) -> _RouterStore:
        return self._store

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def scatter_workers(self) -> int | None:
        """The router's configured scatter parallelism (may be ``None``)."""
        return self._workers

    @property
    def worker_pool(self):
        """The persistent shard worker pool, or ``None`` (fork/serial)."""
        return self._pool

    def populated_shards(self) -> list[int]:
        """Indexes of shards that hold at least one member."""
        return [
            shard
            for shard, ids in enumerate(self._global_ids)
            if ids.size > 0
        ]

    def shard_views(self) -> list[tuple[object, np.ndarray]]:
        """The populated shards as ``(index, global_ids)`` pairs.

        The batched fan-out in :func:`repro.engine.batch.search_many`
        uses this to run one full sub-search per shard and merge.
        """
        return [
            (sub, ids)
            for sub, ids in zip(self._shards, self._global_ids)
            if sub is not None and len(sub) > 0
        ]

    def _locate(self, seq_id: int) -> tuple[int, int]:
        if not 0 <= seq_id < self._shard_of.size:
            raise KeyNotFoundError(
                f"sequence id {seq_id} out of range for "
                f"{self._shard_of.size} sharded members"
            )
        return int(self._shard_of[seq_id]), int(self._local_of[seq_id])

    def shard_of(self, seq_id: int) -> int:
        """Which shard a global sequence id lives on."""
        return self._locate(seq_id)[0]

    def fetch(self, seq_id: int) -> np.ndarray:
        shard, local = self._locate(int(seq_id))
        return self._shards[shard].fetch(local)

    def result_name(self, seq_id: int) -> str | None:
        shard, local = self._locate(int(seq_id))
        return self._shards[shard].result_name(local)

    # ------------------------------------------------------------------
    # Scatter
    # ------------------------------------------------------------------
    def _scatter(self, generate, stats: SearchStats, knn: bool):
        """One candidate set per shard (``None`` subs yield empty sets).

        Serial scatter passes the caller's ``stats`` straight through to
        the shard generators (streaming generators keep mutating it
        lazily, exactly as monolithically); a generator failure restores
        the pre-shard snapshot and swaps in that shard's exhaustive
        fallback, so one poisoned shard degrades only itself.
        """
        pooled = None
        if self._workers is not None and self._workers > 1:
            pooled = self._scatter_pooled(generate, knn)
        if pooled is not None:
            return self._absorb_triples(pooled, stats)

        shard_sets = []
        for sub in self._shards:
            if sub is None or len(sub) == 0:
                shard_sets.append(CandidateSet(entries=[], generated=0))
                continue
            snapshot = _snapshot(stats)
            try:
                with obs.span(f"{sub.obs_name}.generate"):
                    shard_sets.append(generate(sub, stats))
            except (ReproError, OSError) as exc:
                if not active_policy().degrade:
                    raise
                _restore(stats, snapshot)
                quarantine_of(self).note_generator_failure(exc)
                obs.add("resilience.fallback_scans")
                stats.degraded = True
                shard_sets.append(_shard_fallback(len(sub)))
        return shard_sets

    def _absorb_triples(self, triples, stats: SearchStats):
        """Fold out-of-process ``(candidates, stats, error)`` triples in.

        Shared by the fork-pool and persistent-pool transports: a
        shard's error (generator failure there, worker death here) is
        recorded on the router's quarantine and the shard's exhaustive
        fallback candidates stand in — unless degradation is disabled,
        in which case the error propagates.
        """
        shard_sets = []
        for cands, sub_stats, error in triples:
            if error is not None:
                if not active_policy().degrade:
                    raise error
                quarantine_of(self).note_generator_failure(error)
                obs.add("resilience.fallback_scans")
            stats.merge(sub_stats)
            shard_sets.append(cands)
        return shard_sets

    def _scatter_pooled(self, generate, knn: bool):
        """Fork-pool scatter; ``None`` when the pool cannot help.

        Each worker returns ``(candidates, stats, error)`` with streams
        materialised (iterators cannot cross processes) and the shard's
        generator accounting in its own :class:`SearchStats`, merged by
        the parent.
        """

        def shard_task(position: int):
            sub = self._shards[position]
            if sub is None or len(sub) == 0:
                return CandidateSet(entries=[], generated=0), SearchStats(), None
            sub_stats = SearchStats()
            try:
                cands = generate(sub, sub_stats)
                if cands.stream is not None:
                    entries = list(cands.stream)
                    cands = CandidateSet(
                        entries=entries,
                        # A k-NN stream enumerates (and bounds) members
                        # until consumed; materialised here, all of them.
                        generated=len(entries) if knn else cands.generated,
                        sigma_sq=cands.sigma_sq,
                        paid=cands.paid,
                        top_ubs=cands.top_ubs,
                    )
                return cands, sub_stats, None
            except (ReproError, OSError) as exc:
                fallback_stats = SearchStats()
                fallback_stats.degraded = True
                return _shard_fallback(len(sub)), fallback_stats, exc

        return fork_map(shard_task, range(len(self._shards)), self._workers)

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def _translate_stream(
        self, shard: int, stream: Iterator[tuple[float, int]]
    ) -> Iterator[tuple[float, int]]:
        global_ids = self._global_ids[shard]
        for lb_sq, local in stream:
            yield lb_sq, int(global_ids[local])

    def _merge_paid(self, shard_sets) -> dict[int, float]:
        paid: dict[int, float] = {}
        for shard, cands in enumerate(shard_sets):
            if cands.paid:
                global_ids = self._global_ids[shard]
                for local, d_sq in cands.paid.items():
                    paid[int(global_ids[local])] = d_sq
        return paid

    def _merge_knn(self, shard_sets, k: int) -> CandidateSet:
        tracker = SigmaTracker(k)
        for cands in shard_sets:
            for upper in cands.top_ubs:
                tracker.offer(upper)
        sigma_sq = tracker.sigma_sq()
        paid = self._merge_paid(shard_sets)

        streaming = [
            (shard, cands)
            for shard, cands in enumerate(shard_sets)
            if cands.stream is not None
        ]
        if streaming and all(
            cands.stream is not None or not cands.entries
            for cands in shard_sets
        ):
            # Pure streaming population (the GEMINI R-tree): every shard
            # stream is increasing in LB, so the heap-merge is too, and
            # the verifier keeps consuming lazily — unvisited members
            # are never bounded, exactly as in the monolithic index.
            merged = heapq.merge(
                *(
                    self._translate_stream(shard, cands.stream)
                    for shard, cands in streaming
                )
            )
            return CandidateSet(
                generated=None,
                stream=merged,
                paid=paid,
                top_ubs=tracker.values(),
            )

        entries: list[tuple[float, int]] = []
        generated = 0
        for shard, cands in enumerate(shard_sets):
            global_ids = self._global_ids[shard]
            if cands.stream is not None:
                # Mixed population (defensive): laziness is lost, so
                # materialise — every streamed member was bounded.
                materialised = [
                    (lb_sq, int(global_ids[local]))
                    for lb_sq, local in cands.stream
                ]
                generated += len(materialised)
                entries.extend(
                    entry
                    for entry in materialised
                    if entry[0] <= sigma_sq or entry[1] in paid
                )
                continue
            generated += (
                cands.generated
                if cands.generated is not None
                else len(cands.entries)
            )
            for lb_sq, local in cands.entries:
                gid = int(global_ids[local])
                # Re-filter under the *global* sigma: a shard's own
                # k-th-smallest UB can only be looser.  Paid candidates
                # always survive (their retrieval is already booked).
                if lb_sq <= sigma_sq or gid in paid:
                    entries.append((lb_sq, gid))
        entries.sort()
        obs.add("cluster.merged_candidates", len(entries))
        return CandidateSet(
            entries=entries,
            generated=generated,
            sigma_sq=sigma_sq,
            paid=paid,
            top_ubs=tracker.values(),
        )

    def _merge_range(self, shard_sets) -> CandidateSet:
        paid = self._merge_paid(shard_sets)
        entries: list[tuple[float, int]] = []
        generated = 0
        generated_known = True
        for shard, cands in enumerate(shard_sets):
            global_ids = self._global_ids[shard]
            if cands.stream is not None:
                # Range streams are already radius-bounded; materialise.
                entries.extend(
                    (lb_sq, int(global_ids[local]))
                    for lb_sq, local in cands.stream
                )
                generated_known = False
                continue
            if cands.generated is None:
                generated_known = False
            else:
                generated += cands.generated
            entries.extend(
                (lb_sq, int(global_ids[local]))
                for lb_sq, local in cands.entries
            )
        entries.sort()
        obs.add("cluster.merged_candidates", len(entries))
        return CandidateSet(
            entries=entries,
            generated=generated if generated_known else None,
            paid=paid,
        )

    # ------------------------------------------------------------------
    # Candidate generation (the engine owns verification)
    # ------------------------------------------------------------------
    def knn_candidates(
        self, query: np.ndarray, k: int, stats: SearchStats
    ) -> CandidateSet:
        # Each shard generator receives k *unchanged*: a per-shard cap
        # (say min(k, shard_size)) would tighten that shard's sigma
        # below what k global answers require and could prune true
        # neighbours.  Generators handle k > shard_size gracefully (the
        # tracker simply never fills and sigma stays infinite).
        with obs.span("cluster.scatter"):
            if self._pool is not None:
                shard_sets = self._absorb_triples(
                    self._pool.scatter_knn(query, int(k)), stats
                )
            else:
                shard_sets = self._scatter(
                    lambda sub, sub_stats: sub.knn_candidates(
                        query, k, sub_stats
                    ),
                    stats,
                    knn=True,
                )
        with obs.span("cluster.gather"):
            return self._merge_knn(shard_sets, k)

    def gather_knn(
        self, triples, k: int, stats: SearchStats
    ) -> CandidateSet:
        """Absorb pre-scattered per-shard triples into one candidate set.

        The gather half of :meth:`knn_candidates` for candidates the
        worker pool already produced in a batched ``cands`` request
        (see ``engine/batch.py``): ``triples`` is one
        ``(CandidateSet, SearchStats, error)`` per shard, aligned to
        the full shard range exactly as ``scatter_knn`` returns them,
        so the merged result — quarantine notes, fallback scans and
        the rebuilt global σ_UB included — is bit-identical to a
        per-query scatter.
        """
        with obs.span("cluster.gather"):
            return self._merge_knn(self._absorb_triples(triples, stats), k)

    def range_candidates(
        self, query: np.ndarray, radius: float, stats: SearchStats
    ) -> CandidateSet:
        with obs.span("cluster.scatter"):
            if self._pool is not None:
                shard_sets = self._absorb_triples(
                    self._pool.scatter_range(query, float(radius)), stats
                )
            else:
                shard_sets = self._scatter(
                    lambda sub, sub_stats: sub.range_candidates(
                        query, radius, sub_stats
                    ),
                    stats,
                    knn=False,
                )
        with obs.span("cluster.gather"):
            return self._merge_range(shard_sets)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, query, k: int = 1, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """The ``k`` nearest neighbours across all shards (exact)."""
        return execute_knn(self, query, k, policy)

    def range_search(
        self, query, radius: float, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """All sequences within ``radius``, across all shards."""
        return execute_range(self, query, radius, policy)

    # ------------------------------------------------------------------
    # Dynamic ingestion
    # ------------------------------------------------------------------
    @property
    def supports_insert(self) -> bool:
        """Whether every shard can accept routed dynamic inserts."""
        return self._partitioner is not None and all(
            sub is not None and hasattr(sub, "insert")
            for sub in self._shards
        )

    def insert(self, values, name: str | None = None) -> int:
        """Insert one sequence, routed to its shard; returns the global id."""
        if not self.supports_insert:
            raise ReproError(
                "this router cannot insert: it needs a partitioner and "
                "insert-capable, populated shard indexes"
            )
        gid = int(self._shard_of.size)
        shard = self._partitioner.shard_of(gid) % len(self._shards)
        local = int(self._global_ids[shard].size)
        self._shards[shard].insert(values, name)
        self._global_ids[shard] = np.append(self._global_ids[shard], gid)
        self._shard_of = np.append(self._shard_of, shard)
        self._local_of = np.append(self._local_of, local)
        return gid

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------
    def quarantined_by_shard(self) -> dict[int, tuple[int, ...]]:
        """Quarantined global ids grouped by the shard they live on."""
        grouped: dict[int, tuple[int, ...]] = {}
        quarantine = getattr(self, "_resilience_quarantine", None)
        if quarantine is None:
            return grouped
        for gid in quarantine.ids():
            shard = int(self._shard_of[gid])
            grouped[shard] = grouped.get(shard, ()) + (gid,)
        return grouped

    def close(self) -> None:
        """Close shard stores, then shut the worker pool down (if any).

        Store handles first (parent-side reads stop), pool last — its
        shutdown unlinks the shared-memory arena the stores may view.
        """
        for sub in self._shards:
            store = getattr(sub, "store", None)
            if store is not None and hasattr(store, "close"):
                store.close()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
