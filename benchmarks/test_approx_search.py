"""Approximate-tier payoff: recall@10 and wall-clock vs the exact engine.

ISSUE 10's acceptance bar in one measurement: at the documented default
:class:`~repro.engine.ApproxPolicy` knobs the approximate tier must
recover >= 0.95 of the exact top-10 on the synthetic query-log workload
*and* answer faster than the exact engine it relaxes.  The workload is
the flat sketch index — its LB-ordered candidate stream is where the
ε slack and the patience counter actually bite (the linear scan's
lower bounds are all zero, so the policy is inert there by
construction).

Recall here is deterministic: fixed seed, fixed workload, exact and
approximate runs on the identical built index.  Wall-clock is not, so
both sides take the best of three timed passes; the approximate tier
does strictly less work (a subset of the exact retrievals at the same
block size), which is also recorded as the deterministic
``work_ratio``.

The measured configuration appends to the ``BENCH_approx.json`` trend
at the repo root (one timestamped entry per run, with the regression
delta vs the previous comparable run printed).
``REPRO_APPROX_BENCH_SIZE`` (``"rows,length"``) selects a smoke-scale
workload for CI; the recall/speedup gates apply at the default scale
and skip with a reason elsewhere.
"""

import json
import os
import time

import pytest

from _bench_io import REPO_ROOT, append_trend, regression_delta
from repro.datagen import QueryLogGenerator
from repro.engine import ApproxPolicy, get_index
from repro.evaluation import format_table

BENCH_JSON = REPO_ROOT / "BENCH_approx.json"

#: Default workload: 2^11 sequences of length 256 (the gate scale).
DEFAULT_SIZE = (2048, 256)

#: Workload override for CI smoke runs, as ``"rows,length"``.
SIZE_ENV = "REPRO_APPROX_BENCH_SIZE"

#: The acceptance gate on the default knobs at the default scale.
RECALL_GATE = 0.95

QUERIES = 16
K = 10
REPEATS = 3


def _workload_size():
    raw = os.environ.get(SIZE_ENV, "").strip()
    if not raw:
        return DEFAULT_SIZE
    rows, length = (int(part) for part in raw.split(","))
    return rows, length


def test_approx_search_payoff(report):
    rows, length = _workload_size()
    cpus = os.cpu_count() or 1
    generator = QueryLogGenerator(seed=7, days=length)
    database = generator.synthetic_database(rows, include_catalog=True)
    matrix = database.standardize().as_matrix()
    queries = (
        generator.queries_outside_database(QUERIES).standardize().as_matrix()
    )
    k = min(K, rows)

    index = get_index("flat", matrix)
    exact_policy = ApproxPolicy()
    approx_policy = ApproxPolicy.default()

    def run(policy):
        wall = float("inf")
        results = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            results = [
                index.search(query, k=k, policy=policy) for query in queries
            ]
            wall = min(wall, time.perf_counter() - started)
        return wall, results

    run(exact_policy)  # warm caches and allocator before timing
    exact_wall, exact = run(exact_policy)
    approx_wall, approx = run(approx_policy)

    overlap = 0
    for (exact_hits, _), (approx_hits, _) in zip(exact, approx):
        overlap += len(
            {h.seq_id for h in exact_hits} & {h.seq_id for h in approx_hits}
        )
    recall = overlap / (k * len(queries))
    exact_retrievals = sum(s.full_retrievals for _, s in exact)
    approx_retrievals = sum(s.full_retrievals for _, s in approx)
    assert all(stats.approximate for _, stats in approx)
    assert not any(stats.approximate for _, stats in exact)

    record = {
        "bench": "approx_search",
        "database_size": rows,
        "sequence_length": length,
        "queries": len(queries),
        "k": k,
        "cpu_count": cpus,
        "epsilon": approx_policy.epsilon,
        "patience": approx_policy.patience,
        "recall_at_k": round(recall, 4),
        "exact_seconds": round(exact_wall, 4),
        "approx_seconds": round(approx_wall, 4),
        "speedup": round(exact_wall / approx_wall, 2),
        "exact_retrievals": exact_retrievals,
        "approx_retrievals": approx_retrievals,
        "work_ratio": round(approx_retrievals / exact_retrievals, 3),
        "skipped_approx": sum(s.skipped_approx for _, s in approx),
        "stopped_early_queries": sum(
            1 for _, s in approx if s.stopped_early
        ),
    }
    fingerprint = {
        "database_size": rows,
        "sequence_length": length,
        "cpu_count": cpus,
        "epsilon": approx_policy.epsilon,
        "patience": approx_policy.patience,
    }
    delta = regression_delta(BENCH_JSON, record, "speedup", match=fingerprint)
    append_trend(BENCH_JSON, record)
    trend_line = (
        "first recorded run at this configuration"
        if delta is None
        else f"speedup {delta:+.1%} vs previous comparable run"
    )

    report(
        format_table(
            ("tier", "wall s", "retrievals", f"recall@{k}"),
            [
                ("exact engine", exact_wall, exact_retrievals, 1.0),
                ("approx tier", approx_wall, approx_retrievals, recall),
            ],
            title=(
                f"approx search, flat index, {rows} seqs x {length} days, "
                f"{len(queries)} queries, k={k}, epsilon="
                f"{approx_policy.epsilon}, patience="
                f"{approx_policy.patience}, {cpus} cpus"
            ),
            digits=3,
        ),
        trend_line,
        f"BENCH {json.dumps(record)}",
    )

    if (rows, length) != DEFAULT_SIZE:
        pytest.skip(
            f"recall/speedup gates apply at the default {DEFAULT_SIZE} "
            f"workload; ran smoke scale {rows}x{length} (entry recorded)"
        )
    # The recall gate is deterministic at the default scale: same seed,
    # same index, same thresholds every run.
    assert recall >= RECALL_GATE
    # Strictly less work at the same block size; the wall-clock gate
    # just needs a host stable enough to observe it.
    assert record["work_ratio"] < 1.0
    if cpus < 2:
        pytest.skip(
            f"speedup gate needs >= 2 CPUs for stable timing; host has "
            f"{cpus} (entry recorded with honest cpu_count)"
        )
    assert record["speedup"] > 1.0
