"""Haar wavelets: an alternative orthonormal basis for the same machinery."""

from repro.wavelets.haar import (
    haar_spectrum,
    haar_transform,
    haar_transform_matrix,
    inverse_haar_transform,
)

__all__ = [
    "haar_transform",
    "haar_transform_matrix",
    "inverse_haar_transform",
    "haar_spectrum",
]
