"""Round-trip persistence tests for collections and sketch databases."""

import numpy as np
import pytest

from repro import QueryLogGenerator, SketchDatabase, StorageBudget
from repro.bounds import batch_bounds
from repro.spectral import Spectrum
from repro.timeseries import TimeSeriesCollection


@pytest.fixture(scope="module")
def collection():
    return QueryLogGenerator(seed=17, days=128).synthetic_database(24)


class TestCollectionPersistence:
    def test_roundtrip(self, collection, tmp_path):
        path = tmp_path / "collection.npz"
        collection.save(path)
        loaded = TimeSeriesCollection.load(path)
        assert loaded.names == collection.names
        assert loaded.start == collection.start
        np.testing.assert_array_equal(
            loaded.as_matrix(), collection.as_matrix()
        )

    def test_loaded_series_usable(self, collection, tmp_path):
        path = tmp_path / "collection.npz"
        collection.save(path)
        loaded = TimeSeriesCollection.load(path)
        series = loaded[collection.names[0]]
        assert series.standardize().is_standardized()


class TestSketchDatabasePersistence:
    @pytest.mark.parametrize("method", ["gemini", "wang", "best_min_error"])
    def test_roundtrip_preserves_bounds(self, collection, tmp_path, method):
        matrix = collection.standardize().as_matrix()
        db = SketchDatabase.from_matrix(
            matrix,
            StorageBudget(8).compressor(method),
            names=list(collection.names),
        )
        path = tmp_path / f"{method}.npz"
        db.save(path)
        loaded = SketchDatabase.load(path)

        assert loaded.n == db.n
        assert loaded.method == db.method
        assert loaded.names == db.names
        query = Spectrum.from_series(matrix[0])
        lb_a, ub_a = batch_bounds(query, db)
        lb_b, ub_b = batch_bounds(query, loaded)
        np.testing.assert_allclose(lb_a, lb_b)
        np.testing.assert_allclose(ub_a, ub_b)

    def test_sketches_roundtrip(self, collection, tmp_path):
        matrix = collection.standardize().as_matrix()
        db = SketchDatabase.from_matrix(
            matrix, StorageBudget(8).compressor("best_min_error")
        )
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = SketchDatabase.load(path)
        for row in (0, len(db) - 1):
            a, b = db.sketch(row), loaded.sketch(row)
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_allclose(a.coefficients, b.coefficients)
            assert a.error == pytest.approx(b.error)
            assert a.min_power == pytest.approx(b.min_power)
