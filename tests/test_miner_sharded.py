"""The miner's sharded index mode (``QueryLogMiner(shards=N)``).

Sharding is a routing concern, not a semantics concern: a sharded miner
must answer every question bit-identically to the monolithic miner over
the same ingested series.
"""

import datetime as dt

import numpy as np
import pytest

from repro.cluster import ShardRouter
from repro.exceptions import ReproError, SeriesMismatchError
from repro.miner import QueryLogMiner
from repro.timeseries import TimeSeries

START = dt.date(2002, 1, 1)
DAYS = 128

#: One fixed dataset for every miner — drawn once, so the monolithic and
#: sharded miners index the very same series.
_RNG = np.random.default_rng(11)
DATA = {
    f"query {i:02d}": np.abs(np.cumsum(_RNG.normal(size=DAYS))) + 1.0
    for i in range(18)
}


def make_miner(**kwargs):
    miner = QueryLogMiner(start=START, days=DAYS, seed=3, **kwargs)
    for name, values in DATA.items():
        miner.add_series(TimeSeries(values, name=name, start=START))
    return miner


def as_pairs(hits):
    return [(h.distance, h.seq_id, h.name) for h in hits]


class TestAgreement:
    def test_sharded_miner_matches_monolithic(self):
        mono = make_miner()
        for policy in ("hash", "round_robin"):
            sharded = make_miner(shards=3, shard_policy=policy)
            for name in ("query 00", "query 07", "query 17"):
                assert as_pairs(sharded.similar(name, k=4)) == as_pairs(
                    mono.similar(name, k=4)
                ), (policy, name)

    def test_sharded_index_is_a_router(self):
        sharded = make_miner(shards=4)
        assert isinstance(sharded._live_index(), ShardRouter)
        assert sharded._live_index().shard_count == 4

    def test_similar_many_matches_similar(self):
        sharded = make_miner(shards=3)
        names = ["query 02", "query 09", "query 15"]
        batched = sharded.similar_many(names, k=3)
        for name, hits in zip(names, batched):
            assert as_pairs(hits) == as_pairs(sharded.similar(name, k=3))


class TestIngestionKeepsRouting:
    def test_insert_keeps_the_router_live(self):
        mono = make_miner()
        sharded = make_miner(shards=3)
        router = sharded._live_index()
        late = np.abs(np.cumsum(np.random.default_rng(77).normal(size=DAYS))) + 1.0
        for miner in (mono, sharded):
            miner.add_series(
                TimeSeries(late, name="latecomer", start=START)
            )
        # The default vptree shards accept routed inserts in place.
        assert sharded._live_index() is router
        assert as_pairs(sharded.similar("latecomer", k=4)) == as_pairs(
            mono.similar("latecomer", k=4)
        )

    def test_static_backend_rebuilds_the_router(self):
        sharded = make_miner(shards=2, index_backend="flat")
        first = sharded._live_index()
        late = np.abs(np.cumsum(np.random.default_rng(78).normal(size=DAYS))) + 1.0
        sharded.add_series(TimeSeries(late, name="rebuilt", start=START))
        rebuilt = sharded._live_index()
        assert rebuilt is not first
        assert isinstance(rebuilt, ShardRouter)
        hits = sharded.similar("rebuilt", k=2)
        assert hits and all(h.name != "rebuilt" for h in hits)


class TestValidation:
    @pytest.mark.parametrize("backend", ["sharded", "shard", "cluster"])
    def test_router_backend_with_shards_is_rejected(self, backend):
        with pytest.raises(SeriesMismatchError, match="per-shard backend"):
            QueryLogMiner(start=START, days=DAYS, shards=2,
                          index_backend=backend)

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ReproError):
            QueryLogMiner(start=START, days=DAYS, shards=2,
                          shard_policy="alphabetical")

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ReproError):
            QueryLogMiner(start=START, days=DAYS, shards=0)
