"""An in-memory B+tree.

Section 6.3 of the paper stores the compacted burst triplets "as records in
a DBMS table" and notes that retrieving overlapping bursts "is extremely
efficient, if we create an index (basically a B-tree) on the startDate and
endDate attributes".  This module provides that index structure from
scratch: a classic B+tree with

* all values stored in leaves, which are chained for fast range scans,
* configurable fan-out (``order`` = maximum number of keys per node),
* logarithmic point lookups, inserts and deletes (with borrow/merge
  rebalancing), and
* inclusive/exclusive range queries — the access path behind the
  ``B.startDate < Q.endDate AND B.endDate > Q.startDate`` plan of fig. 18.

Keys may be any mutually comparable values.  Each key maps to exactly one
value; callers that need duplicate keys (the burst table does — many bursts
share a start date) store a list as the value or use a composite key.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro import obs
from repro.exceptions import KeyNotFoundError

__all__ = ["BPlusTree"]

_MIN_ORDER = 3


class _Node:
    """A B+tree node; ``children`` is empty exactly for leaves."""

    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list["_Node"] = []
        self.values: list[Any] = []
        self.next_leaf: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BPlusTree:
    """A B+tree mapping unique comparable keys to values.

    Parameters
    ----------
    order:
        Maximum number of keys a node may hold (>= 3).  A node splits when
        it would exceed ``order`` keys and borrows/merges when it falls
        below ``order // 2`` keys.
    """

    def __init__(self, order: int = 32) -> None:
        if order < _MIN_ORDER:
            raise ValueError(f"order must be >= {_MIN_ORDER}, got {order}")
        self._order = order
        self._root = _Node()
        self._size = 0

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key) -> bool:
        leaf, idx = self._find_leaf(key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def __getitem__(self, key):
        leaf, idx = self._find_leaf(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(key)

    def __setitem__(self, key, value) -> None:
        self.insert(key, value)

    def get(self, key, default=None):
        """Value for ``key``, or ``default`` when absent."""
        try:
            return self[key]
        except KeyNotFoundError:
            return default

    # ------------------------------------------------------------------
    # Search helpers
    # ------------------------------------------------------------------
    def _find_leaf(self, key) -> tuple[_Node, int]:
        """Leaf that should contain ``key`` and the key's insertion point."""
        node = self._root
        visits = 1
        while not node.is_leaf:
            # Child i holds keys < keys[i]; keys equal to a separator go right.
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            visits += 1
        obs.add("btree.node_visits", visits)
        return node, bisect.bisect_left(node.keys, key)

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key, value) -> None:
        """Insert ``key -> value``, replacing the value of an existing key."""
        path: list[tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]

        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return

        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1

        # Split upward while any node on the path overflows.
        while len(node.keys) > self._order:
            separator, sibling = self._split(node)
            if not path:
                root = _Node()
                root.keys = [separator]
                root.children = [node, sibling]
                self._root = root
                return
            parent, child_idx = path.pop()
            parent.keys.insert(child_idx, separator)
            parent.children.insert(child_idx + 1, sibling)
            node = parent

    def _split(self, node: _Node) -> tuple[Any, _Node]:
        """Split an overflowing node; return (separator key, new right node)."""
        sibling = _Node()
        mid = len(node.keys) // 2
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        return separator, sibling

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent."""
        path: list[tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]

        idx = bisect.bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            raise KeyNotFoundError(key)
        node.keys.pop(idx)
        node.values.pop(idx)
        self._size -= 1
        self._rebalance(node, path)

    def _min_keys(self) -> int:
        return self._order // 2

    def _rebalance(self, node: _Node, path: list[tuple[_Node, int]]) -> None:
        while len(node.keys) < self._min_keys():
            if not path:
                # The root may hold fewer keys; collapse it when it becomes
                # an empty internal node.
                if not node.is_leaf and not node.keys:
                    self._root = node.children[0]
                return
            parent, child_idx = path.pop()
            if self._borrow(parent, child_idx):
                return
            self._merge(parent, child_idx)
            node = parent

    def _borrow(self, parent: _Node, child_idx: int) -> bool:
        """Try to borrow one entry from an adjacent sibling; True on success."""
        node = parent.children[child_idx]
        min_keys = self._min_keys()

        if child_idx > 0:
            left = parent.children[child_idx - 1]
            if len(left.keys) > min_keys:
                if node.is_leaf:
                    node.keys.insert(0, left.keys.pop())
                    node.values.insert(0, left.values.pop())
                    parent.keys[child_idx - 1] = node.keys[0]
                else:
                    node.keys.insert(0, parent.keys[child_idx - 1])
                    parent.keys[child_idx - 1] = left.keys.pop()
                    node.children.insert(0, left.children.pop())
                return True

        if child_idx < len(parent.children) - 1:
            right = parent.children[child_idx + 1]
            if len(right.keys) > min_keys:
                if node.is_leaf:
                    node.keys.append(right.keys.pop(0))
                    node.values.append(right.values.pop(0))
                    parent.keys[child_idx] = right.keys[0]
                else:
                    node.keys.append(parent.keys[child_idx])
                    parent.keys[child_idx] = right.keys.pop(0)
                    node.children.append(right.children.pop(0))
                return True

        return False

    def _merge(self, parent: _Node, child_idx: int) -> None:
        """Merge the child at ``child_idx`` with a sibling (both at minimum)."""
        if child_idx == len(parent.children) - 1:
            child_idx -= 1  # merge the last child into its left sibling
        left = parent.children[child_idx]
        right = parent.children[child_idx + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[child_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(child_idx)
        parent.children.pop(child_idx + 1)

    # ------------------------------------------------------------------
    # Iteration and range queries
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in ascending key order."""
        leaf: _Node | None = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[Any]:
        return (key for key, _ in self.items())

    def values(self) -> Iterator[Any]:
        return (value for _, value in self.items())

    def range(
        self,
        low=None,
        high=None,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with ``low <= key <= high`` (bounds optional).

        ``inclusive`` controls whether each bound is closed; pass
        ``(True, False)`` for a half-open interval.  ``None`` bounds are
        unbounded.  The scan walks the leaf chain, touching only the leaves
        that can contain qualifying keys.
        """
        if low is None:
            leaf: _Node | None = self._leftmost_leaf()
            idx = 0
        else:
            leaf, idx = self._find_leaf(low)
            if not inclusive[0]:
                while (
                    leaf is not None
                    and idx < len(leaf.keys)
                    and leaf.keys[idx] == low
                ):
                    idx += 1
                    if idx >= len(leaf.keys):
                        leaf = leaf.next_leaf
                        idx = 0
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if key > high or (key == high and not inclusive[1]):
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels (a lone root leaf has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on breakage.

        Intended for tests: checks key ordering within and across nodes,
        fan-out limits, uniform leaf depth, leaf-chain completeness and the
        size counter.
        """
        leaves: list[_Node] = []
        depths: set[int] = set()

        def visit(node: _Node, depth: int, lo, hi) -> None:
            assert len(node.keys) <= self._order, "node overflow"
            if node is not self._root:
                assert len(node.keys) >= self._min_keys(), "node underflow"
            assert node.keys == sorted(node.keys), "keys out of order"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                leaves.append(node)
                depths.add(depth)
            else:
                assert len(node.children) == len(node.keys) + 1
                bounds = [lo, *node.keys, hi]
                for child, (child_lo, child_hi) in zip(
                    node.children, zip(bounds, bounds[1:])
                ):
                    visit(child, depth + 1, child_lo, child_hi)

        visit(self._root, 0, None, None)
        assert len(depths) <= 1, "leaves at different depths"
        chained = []
        leaf: _Node | None = self._leftmost_leaf()
        while leaf is not None:
            chained.append(leaf)
            leaf = leaf.next_leaf
        assert chained == leaves, "leaf chain does not match tree order"
        assert sum(len(leaf.keys) for leaf in leaves) == self._size
