"""Build/ingest throughput: the vectorised fast path vs the reference.

The fast-ingest acceptance bars, as a recorded benchmark:

* batch ingest (batched compression + bulk store write) is at least 5x
  the per-row reference on a 2^13 x 1024 matrix — the paper's database
  scale, where the Lernaean Hydra evaluations show build cost dominates;
* the parallel shard build (4 shards on the fork pool) is at least 2x
  the serial build where the host has at least 2 CPUs to spread over —
  like the shard-scaling gate, the assertion is honest about hardware
  and the JSON records ``cpu_count`` either way;
* batch and scalar paths are bit-identical (asserted inside the
  experiment: sketch databases array-for-array, store files byte-for-
  byte).

Each leg is timed as a minimum over repeats (see ``ingest_experiment``)
and the store files live on tmpfs when the host has one, so the numbers
measure the encode paths rather than device writeback or scheduler
interference.

Results append to the ``BENCH_build.json`` trend at the repo root.  Set
``REPRO_BUILD_BENCH_SIZE=count,n`` for a smaller smoke configuration
(CI uses one); the 5x gate applies only at full scale, the smoke gate is
"batch is no slower than scalar".
"""

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from _bench_io import REPO_ROOT, append_trend
from repro.evaluation import ingest_experiment

BENCH_JSON = REPO_ROOT / "BENCH_build.json"

FULL_COUNT, FULL_LENGTH = 2**13, 1024


def _configured_size() -> tuple[int, int]:
    raw = os.environ.get("REPRO_BUILD_BENCH_SIZE", "").strip()
    if not raw:
        return FULL_COUNT, FULL_LENGTH
    count, n = (int(part) for part in raw.split(","))
    return count, n


def _scratch_dir(tmp_path) -> str:
    """RAM-backed scratch when available, the pytest tmpdir otherwise.

    The store legs compare two *encode paths*; on a throughput-limited
    disk their wall time is dominated by device writeback instead, so
    the files go to tmpfs when the host has one.  The full matrix run
    needs about 1 GB of scratch.
    """
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return tempfile.mkdtemp(prefix="repro-bench-", dir=shm)
    return str(tmp_path)


def test_build_throughput(tmp_path, report):
    count, n = _configured_size()
    # Compression and page encoding are data-independent, so synthetic
    # gaussians measure the same work as catalog series at this shape.
    matrix = np.random.default_rng(0).normal(size=(count, n))
    shards, build_workers = 4, 4

    scratch = _scratch_dir(tmp_path)
    try:
        result = ingest_experiment(
            matrix,
            scratch,
            shards=shards,
            build_workers=build_workers,
            shard_backend="vptree",
            repeats=3,
        )
    finally:
        if scratch != str(tmp_path):
            shutil.rmtree(scratch, ignore_errors=True)
    assert result.equivalent  # bit-identity is part of the bar

    record = {
        "bench": "build_throughput",
        "database_size": count,
        "sequence_length": n,
        "cpu_count": os.cpu_count(),
        "timing": "min-of-3, cpu-time speedups",
        "compress_scalar_cpu_seconds": round(
            result.compress_scalar.cpu_seconds, 4
        ),
        "compress_batch_cpu_seconds": round(
            result.compress_batch.cpu_seconds, 4
        ),
        "store_scalar_cpu_seconds": round(result.store_scalar.cpu_seconds, 4),
        "store_bulk_cpu_seconds": round(result.store_bulk.cpu_seconds, 4),
        "compress_scalar_wall_seconds": round(
            result.compress_scalar.wall_seconds, 4
        ),
        "compress_batch_wall_seconds": round(
            result.compress_batch.wall_seconds, 4
        ),
        "store_scalar_wall_seconds": round(
            result.store_scalar.wall_seconds, 4
        ),
        "store_bulk_wall_seconds": round(result.store_bulk.wall_seconds, 4),
        "compress_speedup": round(result.compress_speedup, 2),
        "store_speedup": round(result.store_speedup, 2),
        "ingest_speedup": round(result.ingest_speedup, 2),
        "shards": shards,
        "build_workers": build_workers,
        "shard_serial_seconds": round(result.shard_serial_seconds, 4),
        "shard_parallel_seconds": round(result.shard_parallel_seconds, 4),
        "shard_build_speedup": round(result.shard_build_speedup, 2),
        "equivalent": result.equivalent,
    }
    append_trend(BENCH_JSON, record)
    report(result.as_table(), f"BENCH {json.dumps(record)}")

    if count >= FULL_COUNT and n >= FULL_LENGTH:
        # The full-scale acceptance bar.
        assert result.ingest_speedup >= 5.0
    else:
        # Smoke configurations only require "no slower than scalar".
        assert result.ingest_speedup >= 1.0
    if (os.cpu_count() or 1) >= 2:
        assert result.shard_build_speedup >= 2.0
