"""repro.stream — crash-safe streaming ingest (ROADMAP item 2).

The paper's MSN setting is a *stream* of (day, query) demand; this
package is the LSM-style write path that absorbs it durably:

* :class:`~repro.stream.wal.WriteAheadLog` — CRC'd, group-atomic log of
  every live-tier mutation; torn tails truncate, they never corrupt;
* :class:`~repro.stream.live.LiveTier` — mutable raw-count windows with
  day rollovers and query-time sliding-window re-normalisation;
* :class:`~repro.stream.manifest.ManifestLog` /
  :class:`~repro.stream.manifest.StreamManifest` — generational,
  atomically-renamed snapshots; readers adopt newest-valid, failures
  quarantine and fall back;
* :class:`~repro.stream.store.StreamStore` — the assembled store:
  WAL-backed appends, seal into checksummed immutable segments,
  recoverable compaction with tombstone/supersede semantics, and a
  recovery path proven by a seeded kill-point drill
  (``tests/stream/test_recovery.py``);
* :class:`~repro.stream.index.StreamIndex` — one engine-protocol index
  over sealed + live, so every backend (and the sharded router) queries
  the union with the pruning invariant intact;
* :class:`~repro.stream.alerts.LiveBurstMonitor` — real-time burst
  alerts through any registered burst model, bit-identical to the
  model's batch form on every prefix;
* :class:`~repro.stream.alerts.LivePeriodMonitor` — real-time
  period-*change* alerts over a sliding incremental periodogram.

Formats, the generation lifecycle, compaction invariants and the
failure matrix are specified in ``docs/STREAMING.md``.
"""

from repro.stream.alerts import (
    BurstAlert,
    LiveBurstMonitor,
    LivePeriodMonitor,
    PeriodAlert,
)
from repro.stream.index import StreamIndex
from repro.stream.live import LiveTier
from repro.stream.manifest import ManifestLog, SegmentInfo, StreamManifest
from repro.stream.store import RecoveryReport, StreamStore
from repro.stream.wal import WalRecord, WriteAheadLog

__all__ = [
    "BurstAlert",
    "LiveBurstMonitor",
    "LivePeriodMonitor",
    "PeriodAlert",
    "LiveTier",
    "ManifestLog",
    "RecoveryReport",
    "SegmentInfo",
    "StreamIndex",
    "StreamManifest",
    "StreamStore",
    "WalRecord",
    "WriteAheadLog",
]
