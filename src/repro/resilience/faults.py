"""Deterministic fault injection: seeded plans and faulty wrappers.

A production substrate is only as trustworthy as its behaviour under
dirty data and failing I/O — the Lernaean Hydra evaluations stress that
index comparisons must survive the storage layer misbehaving.  This
module makes misbehaviour *reproducible*: a :class:`FaultPlan` is a
seeded stream of fault decisions (bit flips, truncated reads, transient
``OSError`` streaks, injected latency, torn writes), and the
:class:`FaultyFile` / :class:`FaultyStore` / :class:`FaultyIndex`
wrappers apply those decisions at the three seams the system has — the
byte layer under the page store, the sequence-store interface, and the
engine's ``fetch`` path.

Determinism contract: two plans built with the same seed and spec,
driven through the same operation sequence, make bit-identical fault
decisions and keep bit-identical event logs (``plan.events``).  That is
what lets a failing fuzz run be replayed as a regression test.

The write path adds a fourth seam: *crash points*.  Durable code calls
:func:`crashpoint` at every fsync/rename/flush boundary; an armed
:class:`CrashPlan` kills the process-in-miniature by raising
:class:`InjectedCrashError` at a chosen seam, and a recording plan
enumerates the seams so a drill can kill at every single one.

Example
-------
>>> plan = FaultPlan(seed=7, transient_rate=1.0, max_transient_streak=2)
>>> plan.transient_failures("read")  # armed streak length, deterministic
1
>>> plan.events[0].kind
'transient'
>>> record = CrashPlan()  # recording mode: log the seams, never fire
>>> with crash_plan(record):
...     crashpoint("wal.write")
...     crashpoint("manifest.rename")
>>> record.log
['wal.write', 'manifest.rename']
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import TransientStorageError

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultyFile",
    "FaultyStore",
    "FaultyIndex",
    "InjectedCrashError",
    "CrashPlan",
    "crash_plan",
    "crashpoint",
]


class InjectedCrashError(BaseException):
    """A simulated process kill at a write-path seam.

    Deliberately derives from :class:`BaseException`, not
    :class:`~repro.exceptions.ReproError`: a real ``kill -9`` is not
    catchable, so no ``except Exception`` / ``except (ReproError,
    OSError)`` degradation guard in the write path may absorb it.  Only
    the drill harness, which armed the plan, catches it.
    """


class CrashPlan:
    """A deterministic schedule for killing the write path at one seam.

    Three modes, chosen by the constructor arguments:

    * **recording** (``step=None, point=None``) — never fires; every
      :func:`crashpoint` name passed is appended to :attr:`log`, so a
      drill can first enumerate a batch's seam sequence, then re-run the
      batch once per step index with an armed plan.
    * **step-armed** (``step=i``) — fires at the *i*-th crash point
      visited (0-based), whatever its name.
    * **point-armed** (``point=name, occurrence=n``) — fires the *n*-th
      time (1-based) the named seam is visited.

    After firing, :attr:`fired` holds the seam name and the plan is
    spent — subsequent visits only log.  :attr:`log` always records
    every seam visited, fired or not, so recovered-state assertions can
    be keyed to exactly where the "kill" landed.
    """

    def __init__(
        self,
        *,
        step: int | None = None,
        point: str | None = None,
        occurrence: int = 1,
    ) -> None:
        if step is not None and step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self.step = step
        self.point = point
        self.occurrence = int(occurrence)
        #: Every crash-point name visited, in order (the seam sequence).
        self.log: list[str] = []
        #: Name of the seam the plan fired at, or ``None``.
        self.fired: str | None = None
        self._seen: dict[str, int] = {}

    def visit(self, name: str) -> None:
        """Record a seam visit; raise if this is the armed kill site."""
        index = len(self.log)
        self.log.append(name)
        count = self._seen.get(name, 0) + 1
        self._seen[name] = count
        if self.fired is not None:
            return
        hit = (self.step is not None and index == self.step) or (
            self.point is not None and name == self.point and count == self.occurrence
        )
        if hit:
            self.fired = name
            obs.add("resilience.crashes_injected")
            raise InjectedCrashError(f"injected crash at {name!r} (step {index})")


#: Stack of active crash plans; innermost wins visits last so nesting
#: composes (all active plans observe every seam).
_ACTIVE_CRASH: list[CrashPlan] = []


@contextlib.contextmanager
def crash_plan(plan: CrashPlan):
    """Activate ``plan`` for every :func:`crashpoint` in the block."""
    _ACTIVE_CRASH.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_CRASH.remove(plan)


def crashpoint(name: str) -> None:
    """Declare a write-path seam; armed plans may kill the process here.

    A no-op when no :func:`crash_plan` is active, so production code
    pays one list check per durable-boundary crossing.
    """
    for plan in _ACTIVE_CRASH:
        plan.visit(name)


@dataclass(frozen=True)
class FaultEvent:
    """One recorded fault decision (for replay verification)."""

    kind: str  #: "transient" | "bitflip" | "truncate" | "latency" | "torn_write"
    op: str  #: the operation it hit, e.g. "read" or "write"
    detail: int  #: streak length, byte offset, cut point or microseconds


class FaultPlan:
    """A seeded, replayable schedule of storage faults.

    Parameters
    ----------
    seed:
        Seed of the internal PRNG; the entire fault schedule is a pure
        function of ``(seed, spec, operation sequence)``.
    bitflip_rate:
        Per-read probability of flipping one random bit of the returned
        bytes (:class:`FaultyFile`) — the classic silent-corruption
        fault the page store's CRCs must catch.
    transient_rate:
        Per-operation probability of arming a transient-failure streak:
        the next 1..``max_transient_streak`` invocations raise
        :class:`~repro.exceptions.TransientStorageError`, then the
        operation succeeds.  Bounded streaks model recoverable I/O
        hiccups that a retry policy with enough attempts always absorbs.
    truncate_rate:
        Per-read probability of returning a short read (models a torn
        page / EOF mid-sequence).
    torn_write_rate:
        Per-write probability of persisting only a prefix of the data
        (models a crash mid-write).
    latency_rate / latency_s:
        Probability and duration of injected latency per operation.
    max_transient_streak:
        Upper bound on consecutive transient failures (default 2), so a
        retry policy with ``max_attempts > max_transient_streak``
        deterministically succeeds.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        bitflip_rate: float = 0.0,
        transient_rate: float = 0.0,
        truncate_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        max_transient_streak: int = 2,
    ) -> None:
        for name, rate in (
            ("bitflip_rate", bitflip_rate),
            ("transient_rate", transient_rate),
            ("truncate_rate", truncate_rate),
            ("torn_write_rate", torn_write_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_transient_streak < 1:
            raise ValueError("max_transient_streak must be at least 1")
        self.seed = int(seed)
        self.bitflip_rate = float(bitflip_rate)
        self.transient_rate = float(transient_rate)
        self.truncate_rate = float(truncate_rate)
        self.torn_write_rate = float(torn_write_rate)
        self.latency_rate = float(latency_rate)
        self.latency_s = float(latency_s)
        self.max_transient_streak = int(max_transient_streak)
        self._rng = random.Random(self.seed)
        #: Every fault decision taken, in order — the replay log.
        self.events: list[FaultEvent] = []

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same seed and spec (clean event log)."""
        return FaultPlan(
            self.seed,
            bitflip_rate=self.bitflip_rate,
            transient_rate=self.transient_rate,
            truncate_rate=self.truncate_rate,
            torn_write_rate=self.torn_write_rate,
            latency_rate=self.latency_rate,
            latency_s=self.latency_s,
            max_transient_streak=self.max_transient_streak,
        )

    # ------------------------------------------------------------------
    # Decisions (each draws from the seeded stream and logs an event)
    # ------------------------------------------------------------------
    def _record(self, kind: str, op: str, detail: int) -> None:
        self.events.append(FaultEvent(kind, op, detail))
        obs.add("resilience.faults_injected")

    def transient_failures(self, op: str) -> int:
        """Length of the transient-failure streak to arm now (0 = none)."""
        if self.transient_rate and self._rng.random() < self.transient_rate:
            streak = self._rng.randint(1, self.max_transient_streak)
            self._record("transient", op, streak)
            return streak
        return 0

    def maybe_flip(self, data: bytes, op: str = "read") -> bytes:
        """Possibly flip one random bit of ``data``."""
        if not data or not self.bitflip_rate:
            return data
        if self._rng.random() >= self.bitflip_rate:
            return data
        position = self._rng.randrange(len(data) * 8)
        self._record("bitflip", op, position)
        corrupted = bytearray(data)
        corrupted[position // 8] ^= 1 << (position % 8)
        return bytes(corrupted)

    def maybe_truncate(self, data: bytes, op: str = "read") -> bytes:
        """Possibly cut ``data`` short at a random point."""
        if not data or not self.truncate_rate:
            return data
        if self._rng.random() >= self.truncate_rate:
            return data
        cut = self._rng.randrange(len(data))
        self._record("truncate", op, cut)
        return data[:cut]

    def torn_write_prefix(self, length: int, op: str = "write") -> int | None:
        """How many bytes of a write survive, or ``None`` for all."""
        if length <= 0 or not self.torn_write_rate:
            return None
        if self._rng.random() >= self.torn_write_rate:
            return None
        cut = self._rng.randrange(length)
        self._record("torn_write", op, cut)
        return cut

    def maybe_sleep(self, op: str) -> None:
        """Possibly inject latency (blocking sleep)."""
        if self.latency_rate and self._rng.random() < self.latency_rate:
            self._record("latency", op, int(self.latency_s * 1e6))
            if self.latency_s > 0:
                time.sleep(self.latency_s)


class _TransientArm:
    """Per-target bookkeeping for armed transient-failure streaks.

    A streak of length N means *exactly* N consecutive failures for the
    target, then a guaranteed success — the defining property of a
    transient fault, and what makes "a retry policy with more attempts
    than the streak bound always absorbs the fault" a theorem rather
    than a probability.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._pending: dict = {}

    def check(self, key, op: str) -> None:
        """Raise while a streak is armed for ``key``; else maybe arm one."""
        pending = self._pending.get(key)
        if pending is not None:
            if pending <= 0:
                # The streak's guaranteed success; later operations on
                # this target may arm a fresh streak.
                del self._pending[key]
                return
            self._pending[key] = pending - 1
            raise TransientStorageError(
                f"injected transient fault ({op}, {pending - 1} more)"
            )
        streak = self._plan.transient_failures(op)
        if streak:
            self._pending[key] = streak - 1
            raise TransientStorageError(
                f"injected transient fault ({op}, {streak - 1} more)"
            )


class FaultyFile:
    """A binary file wrapper that injects byte-level faults on I/O.

    Wraps any seekable binary file object (typically the page store's
    backing file) and applies the plan's decisions *below* the store's
    checksum layer — so injected bit flips and truncations must be
    caught by the CRC validation, not by luck.

    Use :meth:`FaultyFile.under` to splice one beneath an open
    :class:`~repro.storage.SequencePageStore`.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._transients = _TransientArm(plan)

    @classmethod
    def under(cls, store, plan: FaultPlan) -> "FaultyFile":
        """Splice a faulty layer beneath a page store's backing file.

        Forces the store back to buffered reads: memory-mapped gathers
        bypass the file object, so a mapped store would sail past the
        injected byte faults and the drill would assert nothing.
        """
        if getattr(store, "_use_mmap", False):
            store._release_mmap()
            store._use_mmap = False
        wrapped = cls(store._file, plan)
        store._file = wrapped
        return wrapped

    # -- faulted operations --------------------------------------------
    def read(self, size: int = -1) -> bytes:
        self._plan.maybe_sleep("read")
        self._transients.check(("read", self._inner.tell()), "read")
        data = self._inner.read(size)
        data = self._plan.maybe_truncate(data, "read")
        return self._plan.maybe_flip(data, "read")

    def write(self, data) -> int:
        self._plan.maybe_sleep("write")
        self._transients.check(("write", self._inner.tell()), "write")
        cut = self._plan.torn_write_prefix(len(data), "write")
        if cut is None:
            return self._inner.write(data)
        written = self._inner.write(data[:cut])
        # A torn write leaves the file pointer where the full write
        # would have ended, like a crash between page writes would.
        self._inner.seek(len(data) - cut, 1)
        return written

    # -- transparent passthrough ---------------------------------------
    def seek(self, offset: int, whence: int = 0) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def truncate(self, size=None) -> int:
        return self._inner.truncate(size)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultyStore:
    """A sequence-store wrapper injecting faults at the store interface.

    Conforms to the sequence-store protocol (``read`` / ``read_many`` /
    ``append`` / ``append_matrix`` / ``stats`` / ``close`` / context
    manager), so it drops in anywhere a
    :class:`~repro.storage.SequencePageStore` or
    :class:`~repro.storage.MemorySequenceStore` does.  Two fault kinds
    operate at this level:

    * transient streaks (:class:`~repro.exceptions.TransientStorageError`)
      per ``(op, seq_id)``, bounded by the plan so retries can win;
    * permanent corruption of chosen ids (``corrupt_ids``), surfaced as
      :class:`~repro.exceptions.CorruptionError` on every read — the
      simulation of a sequence whose pages are gone for good.
    """

    def __init__(self, inner, plan: FaultPlan, corrupt_ids=()) -> None:
        self._inner = inner
        self._plan = plan
        self._transients = _TransientArm(plan)
        self.corrupt_ids = frozenset(int(i) for i in corrupt_ids)

    # -- store protocol ------------------------------------------------
    @property
    def sequence_length(self) -> int:
        return self._inner.sequence_length

    @property
    def pages_per_sequence(self) -> int:
        return self._inner.pages_per_sequence

    @property
    def stats(self):
        return self._inner.stats

    def __len__(self) -> int:
        return len(self._inner)

    def append(self, values) -> int:
        self._plan.maybe_sleep("append")
        self._transients.check(("append", len(self._inner)), "append")
        return self._inner.append(values)

    def append_matrix(self, matrix):
        return [self.append(row) for row in np.asarray(matrix, dtype=np.float64)]

    def read(self, seq_id: int) -> np.ndarray:
        if int(seq_id) in self.corrupt_ids:
            from repro.exceptions import CorruptionError

            raise CorruptionError(
                f"injected permanent corruption of sequence {seq_id}"
            )
        self._plan.maybe_sleep("read")
        self._transients.check(("read", int(seq_id)), "read")
        return self._inner.read(seq_id)

    def read_many(self, seq_ids) -> np.ndarray:
        return np.stack([self.read(int(seq_id)) for seq_id in seq_ids])

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "FaultyStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FaultyIndex:
    """An engine-index wrapper that injects faults into ``fetch``.

    The M-tree, R-tree and linear-scan structures fetch straight from
    their in-memory matrices, so store-level wrappers cannot reach them;
    this wrapper conforms to the
    :class:`~repro.engine.core.EngineIndex` protocol and faults the one
    seam every backend shares — the verifier's ``fetch`` — which is how
    the acceptance suite drives all six backends through identical fault
    schedules.  It deliberately does *not* expose a ``store`` attribute,
    so the engine's batched path also funnels through the faulted
    ``fetch``.
    """

    def __init__(self, inner, plan: FaultPlan, corrupt_ids=()) -> None:
        self._inner = inner
        self._plan = plan
        self._transients = _TransientArm(plan)
        self.corrupt_ids = frozenset(int(i) for i in corrupt_ids)

    @property
    def obs_name(self) -> str:
        return self._inner.obs_name

    @property
    def sequence_length(self) -> int:
        return self._inner.sequence_length

    def __len__(self) -> int:
        return len(self._inner)

    def knn_candidates(self, query, k, stats):
        return self._inner.knn_candidates(query, k, stats)

    def range_candidates(self, query, radius, stats):
        return self._inner.range_candidates(query, radius, stats)

    def result_name(self, seq_id: int):
        return self._inner.result_name(seq_id)

    def fetch(self, seq_id: int) -> np.ndarray:
        if int(seq_id) in self.corrupt_ids:
            from repro.exceptions import CorruptionError

            raise CorruptionError(
                f"injected permanent corruption of sequence {seq_id}"
            )
        self._plan.maybe_sleep("fetch")
        self._transients.check(("fetch", int(seq_id)), "fetch")
        return self._inner.fetch(seq_id)

    def search(
        self, query, k: int = 1, policy=None
    ):
        """k-NN through the shared engine (same entry as any index)."""
        from repro.engine.core import execute_knn

        return execute_knn(self, query, k, policy)

    def range_search(self, query, radius: float, policy=None):
        """Range search through the shared engine."""
        from repro.engine.core import execute_range

        return execute_range(self, query, radius, policy)
