"""Tests for the QueryLogMiner application façade."""

import datetime as dt

import numpy as np
import pytest

from repro.datagen import (
    DayGrid,
    QueryLogGenerator,
    iter_log_records,
    profile,
    sample_daily_counts,
)
import repro.obs as obs
from repro.exceptions import (
    IngestionError,
    SeriesMismatchError,
    UnknownQueryError,
)
from repro.miner import QueryLogMiner
from repro.timeseries import TimeSeries


@pytest.fixture(scope="module")
def generator():
    return QueryLogGenerator(seed=0, start=dt.date(2002, 1, 1), days=365)


@pytest.fixture
def miner(generator):
    miner = QueryLogMiner(start=dt.date(2002, 1, 1), days=365, seed=1)
    for name in (
        "cinema",
        "movie listings",
        "restaurants",
        "full moon",
        "halloween",
        "christmas",
        "christmas gifts",
        "gingerbread men",
        "elvis",
        "dudley moore",
    ):
        miner.add_series(generator.series(name))
    return miner


class TestIngestion:
    def test_membership(self, miner):
        assert len(miner) == 10
        assert "cinema" in miner
        assert "bogus" not in miner
        assert miner.names[0] == "cinema"

    def test_series_roundtrip(self, miner, generator):
        np.testing.assert_array_equal(
            miner.series("elvis").values, generator.series("elvis").values
        )

    def test_duplicate_rejected(self, miner, generator):
        with pytest.raises(UnknownQueryError):
            miner.add_series(generator.series("cinema"))

    def test_unnamed_rejected(self, miner):
        with pytest.raises(UnknownQueryError):
            miner.add_series(TimeSeries(np.ones(365)))

    def test_window_mismatch_rejected(self, miner):
        wrong = TimeSeries(np.ones(100), name="short", start=dt.date(2002, 1, 1))
        with pytest.raises(SeriesMismatchError):
            miner.add_series(wrong)
        shifted = TimeSeries(
            np.ones(365), name="shifted", start=dt.date(2001, 1, 1)
        )
        with pytest.raises(SeriesMismatchError):
            miner.add_series(shifted)

    def test_unknown_lookup(self, miner):
        with pytest.raises(UnknownQueryError):
            miner.series("bogus")

    def test_add_records_pipeline(self):
        miner = QueryLogMiner(start=dt.date(2002, 1, 1), days=120)
        grid = DayGrid(dt.date(2002, 1, 1), 120)
        rng = np.random.default_rng(3)
        counts = sample_daily_counts(profile("gingerbread men"), grid, rng)
        added = miner.add_records(
            iter_log_records(counts, grid, "gingerbread men")
        )
        assert added == ("gingerbread men",)
        np.testing.assert_array_equal(
            miner.series("gingerbread men").values, counts
        )


class TestDeadLetters:
    def _fresh(self):
        return QueryLogMiner(start=dt.date(2002, 1, 1), days=365, seed=1)

    @staticmethod
    def _tampered(name, values):
        """A series whose counts were corrupted *after* construction.

        ``TimeSeries`` itself rejects non-finite values, so the miner's
        ingestion check is defence in depth: it must still catch a series
        whose buffer was swapped out by a buggy upstream component.
        """
        series = TimeSeries(
            np.ones(len(values)), name=name, start=dt.date(2002, 1, 1)
        )
        object.__setattr__(series, "values", np.asarray(values, dtype=float))
        return series

    def test_nan_counts_rejected_before_mutation(self):
        miner = self._fresh()
        dirty = np.ones(365)
        dirty[7] = np.nan
        with pytest.raises(IngestionError):
            miner.add_series(self._tampered("dirty", dirty))
        assert "dirty" not in miner
        assert len(miner) == 0
        (letter,) = miner.dead_letters
        assert letter.name == "dirty"
        assert letter.error == "IngestionError"
        assert "day 7" in letter.reason

    def test_negative_counts_rejected_on_raw_log_path(self):
        miner = self._fresh()
        dirty = np.ones(365)
        dirty[3] = -2.0
        with pytest.raises(IngestionError):
            miner.add_series(
                TimeSeries(dirty, name="negative", start=dt.date(2002, 1, 1)),
                counts=True,
            )
        assert "negative" not in miner
        assert miner.dead_letters[-1].name == "negative"
        assert "day 3" in miner.dead_letters[-1].reason

    def test_transformed_series_may_be_negative(self):
        # z-scored / detrended series are legitimately negative; only
        # the raw daily-count path treats negatives as corruption.
        miner = self._fresh()
        values = np.sin(np.linspace(0.0, 20.0, 365))
        miner.add_series(
            TimeSeries(values, name="standardized", start=dt.date(2002, 1, 1))
        )
        assert "standardized" in miner
        assert miner.dead_letters == ()

    def test_every_rejection_is_dead_lettered(self, generator):
        miner = self._fresh()
        miner.add_series(generator.series("cinema"))
        for bad, expected in (
            (TimeSeries(np.ones(365)), UnknownQueryError),
            (generator.series("cinema"), UnknownQueryError),
            (
                TimeSeries(
                    np.ones(100), name="short", start=dt.date(2002, 1, 1)
                ),
                SeriesMismatchError,
            ),
        ):
            with pytest.raises(expected):
                miner.add_series(bad)
        assert [letter.name for letter in miner.dead_letters] == [
            "<unnamed>",
            "cinema",
            "short",
        ]
        assert len(miner) == 1  # only the clean series landed

    def test_add_records_survives_bad_series(self):
        miner = self._fresh()
        grid = DayGrid(dt.date(2002, 1, 1), 365)
        rng = np.random.default_rng(4)
        counts = sample_daily_counts(profile("cinema"), grid, rng)
        miner.add_series(
            TimeSeries(
                sample_daily_counts(profile("elvis"), grid, rng),
                name="elvis",
                start=dt.date(2002, 1, 1),
            )
        )
        records = list(iter_log_records(counts, grid, "cinema")) + list(
            iter_log_records(
                sample_daily_counts(profile("elvis"), grid, rng), grid, "elvis"
            )
        )
        added = miner.add_records(records)  # duplicate 'elvis' dead-letters
        assert added == ("cinema",)
        assert "cinema" in miner
        assert [letter.name for letter in miner.dead_letters] == ["elvis"]

    def test_dead_letters_counter(self):
        miner = self._fresh()
        with obs.observed() as registry:
            with pytest.raises(UnknownQueryError):
                miner.add_series(TimeSeries(np.ones(365)))
        assert registry.counter("miner.dead_letters").value == 1


class TestSimilarity:
    def test_similar_excludes_self(self, miner):
        hits = miner.similar("cinema", k=3)
        names = [h.name for h in hits]
        assert "cinema" not in names
        assert names[0] in ("movie listings", "restaurants")

    def test_similar_accepts_raw_series(self, miner, generator):
        fresh = generator.series("nordstrom")
        hits = miner.similar(fresh, k=2)
        assert len(hits) == 2

    def test_dtw_similar(self, miner):
        hits = miner.dtw_similar("cinema", k=2)
        assert [h.name for h in hits][0] in ("movie listings", "restaurants")

    def test_incremental_insert_searchable(self, miner, generator):
        miner.similar("cinema")  # force the index to exist
        miner.add_series(generator.series("bank"))
        hits = miner.similar("bank", k=3)
        assert all(h.name != "bank" for h in hits)
        # And the new member is findable as a neighbour of itself.
        direct = miner.similar(generator.series("bank"), k=1)
        assert direct[0].name == "bank"

    def test_rebuild_after_heavy_growth(self, generator):
        miner = QueryLogMiner(start=dt.date(2002, 1, 1), days=365, seed=2)
        miner.add_series(generator.series("cinema"))
        miner.add_series(generator.series("elvis"))
        miner.similar("cinema", k=1)  # build over 2 members
        for name in (
            "movie listings",
            "restaurants",
            "bank",
            "weather",
            "full moon",
        ):
            miner.add_series(generator.series(name))
        hits = miner.similar("cinema", k=3)
        assert len(hits) == 3

    def test_empty_miner_raises(self):
        miner = QueryLogMiner(days=30)
        with pytest.raises(SeriesMismatchError):
            miner.similar(np.ones(30), k=1)


class TestKnowledge:
    def test_periods(self, miner):
        result = miner.periods("cinema")
        assert result.periods[0].period == pytest.approx(7.0, abs=0.1)
        assert len(miner.periods("dudley moore")) == 0

    def test_shared_periods(self, miner):
        shared = miner.shared_periods_of_similar("cinema", k=3)
        assert shared
        assert shared[0].period == pytest.approx(7.0, abs=0.1)
        assert shared[0].support >= 2

    def test_burst_spans(self, miner):
        spans = miner.burst_spans("halloween", window=30)
        assert spans
        start, end = spans[0]
        assert start.month in (9, 10)
        assert end.month in (10, 11, 12)

    def test_co_bursting(self, miner):
        matches = miner.co_bursting("christmas", top=3)
        names = {m.name for m in matches}
        assert names & {"christmas gifts", "gingerbread men"}

    def test_co_bursting_fresh_series(self, miner, generator):
        fresh = generator.series("rudolph the red nosed reindeer")
        matches = miner.co_bursting(fresh, top=3)
        assert any(
            m.name in ("christmas", "christmas gifts", "gingerbread men")
            for m in matches
        )

    def test_validation(self):
        with pytest.raises(SeriesMismatchError):
            QueryLogMiner(days=2)
