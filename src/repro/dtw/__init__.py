"""DTW extension (the paper's section 8 future-work pointer)."""

from repro.dtw.bounds import WarpingEnvelope, lb_keogh, lb_kim
from repro.dtw.distance import dtw_distance, resolve_band
from repro.dtw.search import DTWSearch, DTWSearchStats

__all__ = [
    "dtw_distance",
    "resolve_band",
    "WarpingEnvelope",
    "lb_kim",
    "lb_keogh",
    "DTWSearch",
    "DTWSearchStats",
]
