#!/usr/bin/env python
"""From raw log records to knowledge: the full substrate pipeline.

The paper starts from the MSN *query logs* and argues that retaining only
per-day aggregates "is storage efficient, can accurately capture
descriptive trends and finally it is privacy preserving".  This example
walks the entire pipeline the way a log-processing job would:

  raw (date, query) records  ->  LogAggregator  ->  daily-count series
  ->  standardisation  ->  spectral sketch  ->  periods + bursts

Run:  python examples/log_pipeline.py
"""

import datetime as dt
import itertools

from repro import BestMinErrorCompressor, detect_periods
from repro.bursts import BurstDetector, compact_bursts
from repro.datagen import (
    DayGrid,
    LogAggregator,
    iter_log_records,
    profile,
    sample_daily_counts,
)
from repro.spectral import Spectrum
from repro.tools import sparkline

import numpy as np


def main() -> None:
    grid = DayGrid(dt.date(2002, 1, 1), 365)
    rng = np.random.default_rng(42)

    # ------------------------------------------------------------------
    # 1. Synthesize raw log records for a few queries
    # ------------------------------------------------------------------
    print("=== synthesizing raw query-log records ===")
    aggregator = LogAggregator(grid)
    for name in ("cinema", "halloween", "full moon"):
        counts = sample_daily_counts(profile(name), grid, rng)
        records = iter_log_records(counts, grid, name)
        # Peek at a few records, then aggregate the rest lazily.
        head, records = itertools.tee(records)
        for record in itertools.islice(head, 3):
            print(f"  {record.date}  {record.query!r}")
        aggregator.consume(records)
        print(f"  ... ({int(counts.sum())} records for {name!r})")
    print(
        f"\n  aggregated {aggregator.records_seen} raw records into "
        f"{len(aggregator.queries)} daily-count series "
        f"(that is the entire retained state - privacy preserved)\n"
    )

    # ------------------------------------------------------------------
    # 2. Aggregate -> series -> compressed sketch
    # ------------------------------------------------------------------
    print("=== compressing the aggregated series (best coefficients) ===")
    compressor = BestMinErrorCompressor(12)
    for name in aggregator.queries:
        series = aggregator.series(name).standardize()
        sketch = compressor.compress(Spectrum.from_series(series.values))
        kept = 100 * sketch.stored_energy() / Spectrum.from_series(series.values).energy()
        print(f"  {name:<12s} {sparkline(series.values, 48)}")
        print(
            f"  {'':<12s} 12 best coefficients keep {kept:.1f}% of the "
            f"energy ({sketch.storage_doubles():.0f} doubles vs "
            f"{len(series)} raw)"
        )
    print()

    # ------------------------------------------------------------------
    # 3. Knowledge extraction on the aggregates
    # ------------------------------------------------------------------
    print("=== knowledge extraction ===")
    for name in aggregator.queries:
        series = aggregator.series(name).standardize()
        result = detect_periods(series)
        periods = (
            ", ".join(f"{p.period:.1f}d" for p in result.top(2))
            if result.periods
            else "none"
        )
        annotation = BurstDetector.long_term().detect(series)
        bursts = compact_bursts(series, annotation)
        spans = (
            "; ".join(
                f"{b.start_date(series.start)}..{b.end_date(series.start)}"
                for b in bursts
            )
            or "none"
        )
        print(f"  {name:<12s} periods: {periods:<18s} long-term bursts: {spans}")


if __name__ == "__main__":
    main()
