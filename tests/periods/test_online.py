"""The incremental period detector: change alerts, exactly confirmed."""

import numpy as np
import pytest

from repro.periods.detector import PeriodDetector
from repro.periods.online import OnlinePeriodDetector, PeriodChange


def _noise(days, seed):
    return np.random.default_rng(seed).normal(0.0, 0.4, size=days)


def _weekly(days, seed):
    t = np.arange(days)
    return np.sin(2 * np.pi * t / 7.0) + _noise(days, seed)


class TestSignificantIndexes:
    """The factored-out selection rule equals the full detection's."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_period", [None, 40.0])
    def test_matches_detect_on_exact_powers(self, seed, max_period):
        detector = PeriodDetector(interpolate=False, max_period=max_period)
        values = _weekly(128, seed)
        result = detector.detect(values)
        cheap = detector.significant_indexes(
            result.periodogram.power, result.periodogram.n
        )
        assert cheap == {p.index for p in result.periods}

    def test_empty_band_has_no_significant_bins(self):
        detector = PeriodDetector(min_index=10)
        assert detector.significant_indexes(np.ones(5), 5) == frozenset()


class TestOnlinePeriodDetector:
    def test_gains_then_loses_the_weekly_rhythm(self):
        window = 64
        monitor = OnlinePeriodDetector(window=window)
        rhythm_bin = window // 7  # ~7-day period in a 64-day window
        alerts = monitor.extend(_noise(100, seed=3))
        assert not any(
            rhythm_bin in {p.index for p in a.gained} for a in alerts
        )
        (gained_alerts, lost_alerts) = ([], [])
        for alert in monitor.extend(_weekly(150, seed=4)):
            gained_alerts.append(alert)
        assert any(
            abs(p.period - 7.0) < 1.5
            for a in gained_alerts
            for p in a.gained
        ), "acquiring a weekly rhythm must raise a gain alert"
        for alert in monitor.extend(_noise(150, seed=5)):
            lost_alerts.append(alert)
        assert any(
            abs(p.period - 7.0) < 1.5 for a in lost_alerts for p in a.lost
        ), "losing the rhythm must raise a loss alert"

    def test_confirmed_state_matches_batch_on_the_window(self):
        window = 64
        monitor = OnlinePeriodDetector(window=window)
        values = _weekly(300, seed=6)
        monitor.extend(values)
        batch = PeriodDetector(interpolate=False).detect(values[-window:])
        assert monitor.significant_indexes == {
            p.index for p in batch.periods
        }
        # The last confirmed result may predate the newest day, but its
        # period set is the live one by the two-tier invariant.
        assert {p.index for p in monitor.periods()} == {
            p.index for p in batch.periods
        }

    def test_alert_result_is_batch_identical_at_alert_time(self):
        window = 64
        monitor = OnlinePeriodDetector(window=window)
        values = np.concatenate(
            [_noise(80, seed=7), _weekly(120, seed=8)]
        )
        alerts = []
        for day, value in enumerate(values):
            raised = monitor.push(day, value)
            for alert in raised:
                lo = max(0, day + 1 - window)
                batch = PeriodDetector(interpolate=False).detect(
                    values[lo : day + 1]
                )
                assert alert.result.periods == batch.periods
                assert alert.result.threshold == batch.threshold
                alerts.append(alert)
        assert alerts

    def test_quiet_days_skip_the_exact_detection(self):
        monitor = OnlinePeriodDetector(window=64)
        exact_calls = 0
        inner = monitor._detector.detect

        def counting(values):
            nonlocal exact_calls
            exact_calls += 1
            return inner(values)

        monitor._detector.detect = counting
        monitor.extend(_weekly(600, seed=9))
        assert exact_calls < 600 // 2, (
            "the cheap recurrence tier should absorb most days"
        )

    def test_no_alerts_before_min_samples(self):
        monitor = OnlinePeriodDetector(window=32, min_samples=16)
        assert monitor.extend(_weekly(15, seed=10)) == []
        assert monitor.current is None
        assert monitor.periods() == ()

    def test_days_must_arrive_in_order(self):
        monitor = OnlinePeriodDetector(window=32)
        monitor.push(0, 1.0)
        with pytest.raises(ValueError):
            monitor.push(2, 1.0)
        with pytest.raises(ValueError):
            monitor.push(0, 1.0)

    def test_rejects_small_min_samples(self):
        with pytest.raises(ValueError):
            OnlinePeriodDetector(min_samples=3)

    def test_gained_periods_are_sorted_strongest_first(self):
        monitor = OnlinePeriodDetector(window=64)
        values = _weekly(200, seed=11) + 0.8 * np.sin(
            2 * np.pi * np.arange(200) / 16.0
        )
        for alert in monitor.extend(values):
            assert isinstance(alert, PeriodChange)
            powers = [p.power for p in alert.gained]
            assert powers == sorted(powers, reverse=True)

    def test_size_tracks_the_stream(self):
        monitor = OnlinePeriodDetector(window=32)
        monitor.extend(_weekly(50, seed=12))
        assert monitor.size == 50
        assert len(monitor) == 50
