"""Online burst detection: bit-identity to the batch detector, alerts."""

import numpy as np
import pytest

from repro.bursts.detection import BurstDetector
from repro.bursts.streaming import OnlineBurstDetector
from repro.bursts.models import MACDModel
from repro.stream import LiveBurstMonitor, LivePeriodMonitor, PeriodAlert


def _series(days: int = 60, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.poisson(20, size=days).astype(float)
    values[40:45] += 90.0  # an unmistakable burst
    return values


class TestOnlineBurstDetector:
    @pytest.mark.parametrize("window", [1, 7, 30])
    def test_bit_identical_to_batch_on_every_prefix(self, window):
        values = _series()
        batch = BurstDetector(window, 1.5, mode="trailing")
        online = OnlineBurstDetector(window, 1.5)
        for i in range(1, values.size + 1):
            online.push(values[i - 1])
            expected = batch.detect(values[:i])
            got = online.annotation()
            assert got.window == expected.window
            assert got.cutoff == expected.cutoff  # exact, not approx
            np.testing.assert_array_equal(got.smoothed, expected.smoothed)
            np.testing.assert_array_equal(got.mask, expected.mask)

    def test_push_return_matches_final_mask_entry(self):
        values = _series(days=50, seed=3)
        online = OnlineBurstDetector(7, 1.5)
        for value in values:
            bursting = online.push(value)
            assert bursting == bool(online.annotation().mask[-1])

    def test_growth_past_initial_capacity(self):
        # Initial buffers hold 15 smoothed values; push far beyond.
        online = OnlineBurstDetector(7, 1.5)
        values = _series(days=200, seed=5)
        for value in values:
            online.push(value)
        assert len(online) == 200
        expected = BurstDetector(7, 1.5, mode="trailing").detect(values)
        np.testing.assert_array_equal(
            online.annotation().smoothed, expected.smoothed
        )

    def test_rejects_bad_parameters_and_values(self):
        with pytest.raises(ValueError):
            OnlineBurstDetector(0)
        with pytest.raises(ValueError):
            OnlineBurstDetector(7, 0.0)
        with pytest.raises(ValueError):
            OnlineBurstDetector(7).annotation()
        detector = OnlineBurstDetector(7)
        with pytest.raises(Exception):
            detector.push(float("nan"))


class TestLiveBurstMonitor:
    def test_rising_edge_alerts_once_per_burst(self):
        monitor = LiveBurstMonitor(window=3, threshold_sigmas=1.5)
        quiet = [10.0] * 12
        burst = [200.0] * 4
        alerts = monitor.observe_series("q", quiet + burst + quiet + burst)
        # Two separate burst episodes, two alerts — not one per bursty day.
        assert len(alerts) == 2
        assert all(a.name == "q" for a in alerts)
        for alert in alerts:
            assert alert.smoothed > alert.cutoff
            assert alert.value == 200.0

    def test_alert_day_indexes_the_observed_stream(self):
        monitor = LiveBurstMonitor(window=3)
        values = [5.0] * 10 + [500.0]
        (alert,) = monitor.observe_series("q", values)
        assert alert.day == 10

    def test_drain_hands_over_and_clears(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("q", [5.0] * 10 + [500.0])
        drained = monitor.drain()
        assert len(drained) == 1
        assert monitor.drain() == []

    def test_forget_resets_a_series(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("q", [5.0] * 8)
        assert monitor.detector("q") is not None
        monitor.forget("q")
        assert monitor.detector("q") is None
        monitor.forget("never-seen")  # idempotent

    def test_independent_series_do_not_interact(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("loud", [5.0] * 10 + [500.0] * 3)
        alerts = monitor.observe_series("calm", [7.0] * 13)
        assert alerts == []
        assert len(monitor) == 2
        assert len(monitor.detector("calm")) == 13


class TestLiveBurstMonitorModels:
    """The monitor runs any registered backend, not just the MA default."""

    def test_default_is_the_paper_moving_average(self):
        monitor = LiveBurstMonitor(window=3, threshold_sigmas=2.0)
        assert monitor.model.name == "ma"
        assert monitor.model.window == 3
        assert monitor.model.threshold_sigmas == 2.0

    def test_model_by_registry_name(self):
        monitor = LiveBurstMonitor(model="macd")
        quiet = [10.0] * 30
        alerts = monitor.observe_series("q", quiet + [400.0] * 5)
        assert monitor.model.name == "macd"
        assert len(alerts) >= 1
        assert alerts[0].day >= 30

    def test_model_by_instance(self):
        model = MACDModel(fast=3.0, slow=12.0)
        monitor = LiveBurstMonitor(model=model)
        assert monitor.model is model

    def test_alias_spellings_resolve(self):
        assert LiveBurstMonitor(model="crossover").model.name == "macd"
        assert LiveBurstMonitor(model="automaton").model.name == "kleinberg"

    def test_alert_carries_the_scored_region(self):
        monitor = LiveBurstMonitor(window=3)
        (alert,) = monitor.observe_series("q", [5.0] * 10 + [500.0])
        assert alert.region is not None
        assert alert.region.start <= alert.day <= alert.region.end

    def test_alerts_match_the_batch_decision_per_prefix(self):
        values = _series()
        monitor = LiveBurstMonitor(model="macd")
        monitor.observe_series("q", values)
        model = monitor.model
        assert monitor.detector("q").regions() == model.detect(values)


class TestLivePeriodMonitor:
    @staticmethod
    def _weekly(days, seed=0):
        t = np.arange(days)
        rng = np.random.default_rng(seed)
        return np.sin(2 * np.pi * t / 8.0) + rng.normal(0.0, 0.3, size=days)

    def test_gaining_a_rhythm_raises_a_period_alert(self):
        monitor = LivePeriodMonitor(window=32)
        alerts = monitor.observe_series("q", self._weekly(100))
        assert alerts
        assert all(isinstance(a, PeriodAlert) for a in alerts)
        assert all(a.name == "q" for a in alerts)
        gained = [p for a in alerts for p in a.gained]
        assert any(abs(p.period - 8.0) < 1.5 for p in gained)

    def test_drain_hands_over_and_clears(self):
        monitor = LivePeriodMonitor(window=32)
        monitor.observe_series("q", self._weekly(100))
        assert monitor.drain()
        assert monitor.drain() == []

    def test_forget_resets_a_series(self):
        monitor = LivePeriodMonitor(window=32)
        monitor.observe_series("q", self._weekly(50))
        assert monitor.detector("q") is not None
        monitor.forget("q")
        assert monitor.detector("q") is None
        monitor.forget("never-seen")  # idempotent

    def test_independent_series_do_not_interact(self):
        monitor = LivePeriodMonitor(window=32)
        monitor.observe_series("rhythmic", self._weekly(100, seed=1))
        flat = np.random.default_rng(2).normal(0.0, 0.3, size=100)
        monitor.observe_series("flat", flat)
        assert len(monitor) == 2
        gained = [
            p
            for a in monitor.drain()
            if a.name == "flat"
            for p in a.gained
        ]
        assert not any(abs(p.period - 8.0) < 0.5 for p in gained)

    def test_alert_day_indexes_the_observed_stream(self):
        monitor = LivePeriodMonitor(window=32)
        alerts = monitor.observe_series("q", self._weekly(100))
        for alert in alerts:
            assert 0 <= alert.day < 100
            assert alert.result.periods is not None
