"""The application façade: a live query-log mining service.

The paper's introduction sketches how a search service would *use* all of
this: ingest the daily logs, keep compressed representations and burst
features up to date, and answer three kinds of questions — "what looks
like this query?", "when does it recur?", "what bursts with it?".
:class:`QueryLogMiner` packages the whole library behind that interface:

* **ingestion** — accept raw log records (via the
  :class:`~repro.datagen.LogAggregator` pipeline) or ready-made daily
  count series; new series are inserted into the live VP-tree (the
  dynamic-maintenance extension) and their burst features land in the
  relational burst table;
* **similarity** — exact k-NN over the compressed index, plus DTW search
  (built lazily, since its envelopes cost a pass over the data);
* **periods** — per-query significant periods and shared periods across
  a similarity result set;
* **bursts** — per-query burst spans and query-by-burst rankings.

Everything is deterministic given the inputs, and every answer comes
from the same code paths the benchmarks exercise.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.bursts.compaction import Burst
from repro.bursts.detection import BurstDetector
from repro.bursts.leaderboard import BurstinessLeaderboard, LeaderboardEntry
from repro.bursts.protocol import BurstModel, BurstRegion
from repro.bursts.query import BurstDatabase, BurstMatch, BurstRegionDatabase
from repro.bursts.registry import get_burst_model
from repro.compression.best_k import BestMinErrorCompressor
from repro.datagen.components import DayGrid
from repro.datagen.events import LogAggregator, LogRecord
from repro.cluster import Partitioner, build_sharded
from repro.dtw.search import DTWSearch
from repro.engine import (
    ApproxPolicy,
    available_indexes,
    get_index,
    search_many,
)
from repro.exceptions import (
    IngestionError,
    SeriesMismatchError,
    UnknownQueryError,
)
from repro.index.results import Neighbor
from repro.resilience import DeadLetter, validate_counts
from repro.periods.aggregate import SharedPeriod, shared_periods
from repro.periods.detector import PeriodDetector
from repro.timeseries.preprocessing import zscore
from repro.timeseries.series import TimeSeries

__all__ = ["QueryLogMiner"]

#: Rebuild the VP-tree from scratch once insertions outnumber the
#: originally indexed population by this factor (leaf rebuilds keep the
#: tree exact either way; a full rebuild restores balance).
_REBUILD_GROWTH = 2.0

#: Registry spellings of the shard router itself — ``shards=N`` selects
#: the per-shard backend, so these are not valid values for it.
_ROUTER_BACKENDS = frozenset({"sharded", "shard", "cluster"})


class QueryLogMiner:
    """A live mining service over daily query-count series.

    Parameters
    ----------
    start / days:
        The covered date window; every ingested series must match it.
    compressor_k:
        Best coefficients kept per sequence in the similarity index.
    detectors:
        Burst detectors for the burst table (defaults to the paper's
        long/short-term pair at 2 sigma).
    burst_model:
        The pluggable region backend behind the burstiness leaderboard
        and region-scored query-by-burst — a
        :func:`~repro.bursts.registry.get_burst_model` name
        (``"ma"``, ``"kleinberg"``, ``"elastic"``, ``"macd"``) or a
        built :class:`~repro.bursts.protocol.BurstModel`.  Region
        detection runs on the **raw counts** (Kleinberg's Poisson model
        needs them); the classic ``detectors`` table keeps the paper's
        z-scored pipeline.
    seed:
        Seed for the index-construction randomness.
    index_backend:
        Engine registry name of the similarity structure (see
        :func:`repro.engine.get_index`); defaults to the paper's
        ``"vptree"``.  Backends without dynamic insertion are rebuilt
        lazily after ingestion instead of updated in place.
    shards / shard_policy:
        ``shards=N`` partitions the live index into N shards behind a
        scatter-gather :class:`~repro.cluster.ShardRouter`
        (``index_backend`` then names the per-shard structure).  New
        series are routed to their shard by the deterministic
        :class:`~repro.cluster.Partitioner` (``shard_policy`` is
        ``"hash"`` or ``"round_robin"``); rebuilds re-partition and
        rebuild shard by shard.  ``shards=None`` (the default) keeps the
        monolithic index.
    dead_letter_capacity:
        Upper bound on the dead-letter buffer.  Sustained bad input must
        not grow memory without limit, so once the buffer is full the
        *oldest* rejection is dropped for each new one (newest
        rejections are the ones an operator re-ingests), counted on
        ``ingest.dead_letter.dropped``.
    approx_policy:
        An :class:`~repro.engine.ApproxPolicy` opting every
        :meth:`similar` / :meth:`similar_many` call into the
        approximate tier (``None``, the default, defers to the
        ``REPRO_APPROX_*`` environment knobs — unset means exact).
        Only the sketch-index similarity path is affected; DTW,
        periods and bursts always run exact (see ``docs/APPROX.md``).
    """

    #: Backends that take the miner's compressor (sketch-based ones).
    _SKETCH_BACKENDS = frozenset({"flat", "vptree", "mvptree"})
    #: Backends with seeded construction randomness.
    _SEEDED_BACKENDS = frozenset({"vptree", "mvptree"})

    def __init__(
        self,
        start: _dt.date = _dt.date(2002, 1, 1),
        days: int = 365,
        compressor_k: int = 14,
        detectors: Sequence[BurstDetector] | None = None,
        burst_model: BurstModel | str = "ma",
        seed: int = 0,
        index_backend: str = "vptree",
        shards: int | None = None,
        shard_policy: str = "hash",
        dead_letter_capacity: int = 1024,
        approx_policy: ApproxPolicy | None = None,
    ) -> None:
        if days < 4:
            raise SeriesMismatchError(f"need at least 4 days, got {days}")
        if dead_letter_capacity < 1:
            raise IngestionError(
                f"dead_letter_capacity must be >= 1, "
                f"got {dead_letter_capacity}"
            )
        # Router spellings first: aliases like "shard" are not canonical
        # registry names, but deserve the specific error under shards=N.
        if shards is not None and index_backend in _ROUTER_BACKENDS:
            raise SeriesMismatchError(
                "shards=N wraps a per-shard backend; pass that backend "
                "(e.g. index_backend='vptree'), not 'sharded'"
            )
        if index_backend not in available_indexes():
            raise SeriesMismatchError(
                f"unknown index backend {index_backend!r}; "
                f"available: {', '.join(available_indexes())}"
            )
        # Partitioner construction also validates shards/shard_policy.
        self._partitioner = (
            Partitioner(shards, policy=shard_policy, seed=seed)
            if shards is not None
            else None
        )
        self.grid = DayGrid(start, days)
        self._seed = seed
        self._backend = index_backend
        self._compressor = BestMinErrorCompressor(compressor_k)
        self._period_detector = PeriodDetector(interpolate=True)
        self._burst_db = BurstDatabase(detectors=detectors)
        # Resolved eagerly so a bad name fails at construction, not on
        # the first leaderboard call; the structures themselves build
        # lazily (one detect per series) and refresh after ingestion.
        self._burst_model = get_burst_model(burst_model)
        self._leaderboard: BurstinessLeaderboard | None = None
        self._region_db: BurstRegionDatabase | None = None
        self._series: dict[str, TimeSeries] = {}
        self._order: list[str] = []
        self._index = None
        self._indexed_count = 0
        self._dtw: DTWSearch | None = None
        if approx_policy is not None and not isinstance(
            approx_policy, ApproxPolicy
        ):
            raise SeriesMismatchError(
                f"approx_policy must be an ApproxPolicy or None, "
                f"got {approx_policy!r}"
            )
        self._approx_policy = approx_policy
        self._dead_letter_capacity = int(dead_letter_capacity)
        self._dead_letters: list[DeadLetter] = []
        self._dead_letters_dropped = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._order)

    def series(self, name: str) -> TimeSeries:
        """The raw ingested series for a query name."""
        try:
            return self._series[name]
        except KeyError:
            raise UnknownQueryError(name) from None

    @property
    def dead_letters(self) -> tuple[DeadLetter, ...]:
        """Rejected ingestion records, oldest first (audit/re-ingest)."""
        return tuple(self._dead_letters)

    @property
    def dead_letter_capacity(self) -> int:
        """Upper bound on retained rejections (oldest drop beyond it)."""
        return self._dead_letter_capacity

    @property
    def dead_letters_dropped(self) -> int:
        """Rejections evicted from the full buffer since construction."""
        return self._dead_letters_dropped

    def _reject(self, name: str, error: Exception):
        """Dead-letter a rejected series and re-raise the typed error."""
        self._dead_letters.append(
            DeadLetter(
                name=name or "<unnamed>",
                reason=str(error),
                error=type(error).__name__,
            )
        )
        if len(self._dead_letters) > self._dead_letter_capacity:
            overflow = len(self._dead_letters) - self._dead_letter_capacity
            del self._dead_letters[:overflow]
            self._dead_letters_dropped += overflow
            obs.add("ingest.dead_letter.dropped", overflow)
        obs.add("miner.dead_letters")
        raise error

    def add_series(self, series: TimeSeries, *, counts: bool = False) -> None:
        """Ingest one fully aggregated daily-count series.

        Validation happens *before* any state mutates: NaN/infinite
        values, a mismatched window, a missing or duplicate name are
        rejected with a typed error
        (:class:`~repro.exceptions.IngestionError`,
        :class:`~repro.exceptions.SeriesMismatchError`, ...) and
        recorded in :attr:`dead_letters` — the live VP-tree, the burst
        table and the ingestion order never see the bad record.
        ``counts=True`` additionally rejects negative values (always on
        for the raw-log :meth:`add_records` path, where a negative
        daily count is impossible; off here because callers also ingest
        already-transformed, legitimately negative series).
        """
        if not series.name:
            self._reject("", UnknownQueryError("ingested series must be named"))
        if series.name in self._series:
            self._reject(
                series.name,
                UnknownQueryError(
                    f"query {series.name!r} is already ingested; "
                    f"build a new miner for a new window"
                ),
            )
        if len(series) != len(self.grid) or series.start != self.grid.start:
            self._reject(
                series.name,
                SeriesMismatchError(
                    f"series {series.name!r} covers "
                    f"{series.start.isoformat()}+{len(series)}d, the miner "
                    f"covers {self.grid.start.isoformat()}+{len(self.grid)}d"
                ),
            )
        try:
            validate_counts(series.values, name=series.name, counts=counts)
        except IngestionError as exc:
            self._reject(series.name, exc)
        with obs.span("miner.add_series"):
            self._series[series.name] = series
            self._order.append(series.name)
            self._burst_db.add(series)
            self._dtw = None  # envelopes are stale
            if self._leaderboard is not None:
                self._leaderboard.add(series.name, series.values)
            if self._region_db is not None:
                self._region_db.add(series)
            if self._index is not None:
                can_insert = getattr(
                    self._index,
                    "supports_insert",
                    hasattr(self._index, "insert"),
                )
                if not can_insert:
                    # Static backend: rebuild lazily on next search.
                    self._index = None
                else:
                    self._index.insert(zscore(series.values), name=series.name)
                    if len(self._order) > _REBUILD_GROWTH * self._indexed_count:
                        self._index = None  # force a balanced rebuild on next use
        obs.add("miner.series_ingested")

    def add_records(self, records: Iterable[LogRecord]) -> tuple[str, ...]:
        """Ingest raw log records; returns the new query names seen.

        Aggregates the stream into daily counts over the miner's window
        (the storage-efficient, privacy-preserving reduction the paper
        advocates) and ingests each aggregated series.  Raw logs arrive
        dirty, so this batch path is resilient: a series that fails
        validation (or duplicates an ingested name) lands in
        :attr:`dead_letters` and the rest of the batch proceeds — one
        malformed query never sinks the ingest.
        """
        aggregator = LogAggregator(self.grid)
        aggregator.consume(records)
        added = []
        for name in aggregator.queries:
            try:
                self.add_series(aggregator.series(name), counts=True)
            except (IngestionError, SeriesMismatchError, UnknownQueryError):
                continue  # dead-lettered by add_series; keep the batch going
            added.append(name)
        return tuple(added)

    # ------------------------------------------------------------------
    # Search structures (built/refreshed lazily)
    # ------------------------------------------------------------------
    def _matrix(self) -> np.ndarray:
        if not self._order:
            raise SeriesMismatchError("no series ingested yet")
        return np.stack(
            [zscore(self._series[name].values) for name in self._order]
        )

    def _live_index(self):
        if self._index is None:
            kwargs: dict = {"names": list(self._order)}
            if self._backend in self._SKETCH_BACKENDS:
                kwargs["compressor"] = self._compressor
            if self._backend in self._SEEDED_BACKENDS:
                kwargs["seed"] = self._seed
            with obs.span("miner.index_build"):
                if self._partitioner is not None:
                    # The live index absorbs dynamic inserts between
                    # rebuilds; pooled routers are read-only, so the
                    # miner always builds in-process regardless of
                    # REPRO_SHARD_WORKERS.
                    self._index = build_sharded(
                        self._matrix(),
                        partitioner=self._partitioner,
                        backend=self._backend,
                        worker_pool=False,
                        **kwargs,
                    )
                else:
                    self._index = get_index(
                        self._backend, self._matrix(), **kwargs
                    )
            self._indexed_count = len(self._order)
        return self._index

    def _live_dtw(self) -> DTWSearch:
        if self._dtw is None:
            self._dtw = DTWSearch(
                self._matrix(), band=0.05, names=list(self._order)
            )
        return self._dtw

    def _live_leaderboard(self) -> BurstinessLeaderboard:
        if self._leaderboard is None:
            board = BurstinessLeaderboard(self._burst_model)
            for name in self._order:
                board.add(name, self._series[name].values)
            self._leaderboard = board
        return self._leaderboard

    def _live_region_db(self) -> BurstRegionDatabase:
        if self._region_db is None:
            db = BurstRegionDatabase(self._burst_model)
            for name in self._order:
                db.add(self._series[name])
            self._region_db = db
        return self._region_db

    def _standardized_query(self, query) -> np.ndarray:
        if isinstance(query, str):
            return zscore(self.series(query).values)
        if isinstance(query, TimeSeries):
            return zscore(query.values)
        return zscore(np.asarray(query, dtype=np.float64))

    # ------------------------------------------------------------------
    # Questions
    # ------------------------------------------------------------------
    @property
    def approx_policy(self) -> ApproxPolicy | None:
        """The configured similarity policy (``None``: environment)."""
        return self._approx_policy

    def similar(self, query, k: int = 5) -> list[Neighbor]:
        """Queries with the most similar demand shape (k-NN).

        Exact unless the miner was built with a non-exact
        ``approx_policy`` (or the ``REPRO_APPROX_*`` knobs are set).
        ``query`` may be an ingested name, a :class:`TimeSeries` or a raw
        sequence; an ingested name excludes itself from the results.
        """
        with obs.span("miner.similar"):
            exclude = query if isinstance(query, str) else None
            values = self._standardized_query(query)
            extra = 1 if exclude is not None else 0
            hits, _ = self._live_index().search(
                values,
                k=min(k + extra, len(self)),
                policy=self._approx_policy,
            )
            return [hit for hit in hits if hit.name != exclude][:k]

    def similar_many(
        self, queries: Sequence, k: int = 5, *, workers: int | None = None
    ) -> list[list[Neighbor]]:
        """:meth:`similar` for a whole batch of queries at once.

        Runs through the engine's batched
        :func:`~repro.engine.search_many` path (optionally over a worker
        pool), which amortises validation and verifies candidates in
        vectorised blocks; per-query results and exclusion semantics are
        identical to calling :meth:`similar` in a loop.
        """
        with obs.span("miner.similar_many"):
            excludes = [
                query if isinstance(query, str) else None for query in queries
            ]
            matrix = np.stack(
                [self._standardized_query(query) for query in queries]
            )
            depth = min(k + 1 if any(excludes) else k, len(self))
            batched = search_many(
                self._live_index(),
                matrix,
                k=depth,
                workers=workers,
                policy=self._approx_policy,
            )
            return [
                [hit for hit in hits if hit.name != exclude][:k]
                for (hits, _), exclude in zip(batched, excludes)
            ]

    def dtw_similar(self, query, k: int = 5) -> list[Neighbor]:
        """Like :meth:`similar`, under banded dynamic time warping."""
        with obs.span("miner.dtw_similar"):
            exclude = query if isinstance(query, str) else None
            values = self._standardized_query(query)
            extra = 1 if exclude is not None else 0
            hits, _ = self._live_dtw().search(
                values, k=min(k + extra, len(self))
            )
            return [hit for hit in hits if hit.name != exclude][:k]

    def periods(self, name: str):
        """Significant periods of an ingested query (interpolated)."""
        with obs.span("miner.periods"):
            return self._period_detector.detect(
                self.series(name).standardize()
            )

    def shared_periods_of_similar(
        self, name: str, k: int = 5
    ) -> list[SharedPeriod]:
        """Periods common to a query and its nearest neighbours."""
        members = [self.series(name)]
        members.extend(
            self.series(hit.name) for hit in self.similar(name, k=k)
        )
        return shared_periods(members, self._period_detector)

    def bursts(self, name: str, window: int | None = None) -> list[Burst]:
        """Compacted burst triplets of an ingested query."""
        return self._burst_db.bursts_of(name, window=window)

    def burst_spans(
        self, name: str, window: int | None = None
    ) -> list[tuple[_dt.date, _dt.date]]:
        """Burst spans as calendar dates, for human consumption."""
        series = self.series(name)
        return [
            (burst.start_date(series.start), burst.end_date(series.start))
            for burst in self.bursts(name, window=window)
        ]

    def co_bursting(self, query, top: int = 5) -> list[BurstMatch]:
        """Queries that burst together with ``query`` (query-by-burst)."""
        with obs.span("miner.co_bursting"):
            return self._burst_db.query(query, top=top)

    @property
    def burst_model(self) -> BurstModel:
        """The configured pluggable burst backend."""
        return self._burst_model

    def burst_regions(self, name: str) -> tuple[BurstRegion, ...]:
        """Scored burst regions of an ingested query, under the
        configured :attr:`burst_model`, detected on the raw counts."""
        if name not in self._series:
            raise UnknownQueryError(name)
        return self._live_leaderboard().regions_of(name)

    def burstiness_leaderboard(
        self,
        count: int = 10,
        lo: int | None = None,
        hi: int | None = None,
    ) -> list[LeaderboardEntry]:
        """The ``count`` burstiest ingested queries, optionally windowed.

        Scores are total region weight under :attr:`burst_model`
        (pro-rated to the inclusive day window ``[lo, hi]`` when
        given); ties break on query name, so the board is deterministic
        for a given log.
        """
        with obs.span("miner.leaderboard"):
            return self._live_leaderboard().top(count, lo=lo, hi=hi)

    def co_bursting_regions(self, query, top: int = 5) -> list[BurstMatch]:
        """Region-scored query-by-burst under :attr:`burst_model`.

        Like :meth:`co_bursting` but over the scored regions of the
        configured model — so "what bursts with this query" can be
        answered under Kleinberg or MACD semantics, weighted by how
        hard both sides burst where they overlap.
        """
        with obs.span("miner.co_bursting_regions"):
            if isinstance(query, str) and query not in self._series:
                raise UnknownQueryError(query)
            return self._live_region_db().query(query, top=top)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryLogMiner({len(self)} queries, "
            f"{self.grid.start.isoformat()}+{len(self.grid)}d)"
        )
