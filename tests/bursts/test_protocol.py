"""The batch/online protocol: regions, alerts, and the replay fallback."""

import numpy as np
import pytest

from repro.bursts.protocol import (
    BurstModel,
    BurstRegion,
    OnlineDetector,
    RegionAlert,
    ReplayDetector,
    mask_regions,
)


class TestBurstRegion:
    def test_length_is_inclusive(self):
        assert len(BurstRegion(3, 3, 1.0)) == 1
        assert len(BurstRegion(3, 7, 1.0)) == 5

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            BurstRegion(5, 4, 1.0)

    def test_canonical_ordering_is_by_start_then_end(self):
        regions = [
            BurstRegion(4, 6, 9.0),
            BurstRegion(1, 2, 0.5),
            BurstRegion(1, 5, 0.1),
        ]
        ordered = sorted(regions)
        assert [(r.start, r.end) for r in ordered] == [(1, 2), (1, 5), (4, 6)]

    def test_equality_is_field_exact(self):
        assert BurstRegion(1, 2, 3.0) == BurstRegion(1, 2, 3.0)
        assert BurstRegion(1, 2, 3.0) != BurstRegion(1, 2, 3.0000001)
        assert BurstRegion(1, 2, 3.0, level=1) != BurstRegion(1, 2, 3.0, level=2)

    def test_overlap_days(self):
        region = BurstRegion(10, 19, 5.0)
        assert region.overlap_days(0, 9) == 0
        assert region.overlap_days(15, 30) == 5
        assert region.overlap_days(10, 19) == 10
        assert region.overlap_days(0, 100) == 10

    def test_windowed_weight_prorates_by_overlap(self):
        region = BurstRegion(10, 19, 8.0)
        assert region.windowed_weight(0, 9) == 0.0
        assert region.windowed_weight(10, 19) == 8.0
        assert region.windowed_weight(15, 100) == 8.0 * 0.5


class TestMaskRegions:
    def test_empty_and_all_false(self):
        assert mask_regions(np.zeros(0, dtype=bool)) == []
        assert mask_regions(np.zeros(5, dtype=bool)) == []

    def test_single_runs_and_edges(self):
        assert mask_regions([True, True, False, True]) == [(0, 1), (3, 3)]
        assert mask_regions([False, True, True]) == [(1, 2)]
        assert mask_regions([True] * 4) == [(0, 3)]


class _StepModel(BurstModel):
    """Toy model: a day bursts when its value exceeds 5."""

    name = "step"

    def detect(self, values):
        mask = np.asarray(values, dtype=np.float64) > 5.0
        return [
            BurstRegion(s, e, float(e - s + 1)) for s, e in mask_regions(mask)
        ]


class TestOnlineDetectorBase:
    def test_days_must_arrive_in_order(self):
        detector = _StepModel().online()
        detector.push(0, 1.0)
        with pytest.raises(ValueError):
            detector.push(2, 1.0)
        with pytest.raises(ValueError):
            detector.push(0, 1.0)

    def test_rejects_nan(self):
        detector = _StepModel().online()
        with pytest.raises(Exception):
            detector.push(0, float("nan"))

    def test_rising_edge_alerts_once_per_episode(self):
        values = [0, 9, 9, 9, 0, 0, 9, 0]
        detector = _StepModel().online()
        alerts = detector.extend(values)
        assert [a.day for a in alerts] == [1, 6]
        assert all(isinstance(a, RegionAlert) for a in alerts)

    def test_alert_carries_the_covering_region(self):
        detector = _StepModel().online()
        (alert,) = detector.extend([0.0, 9.0])
        assert alert.region.start <= alert.day <= alert.region.end
        assert alert.value == 9.0

    def test_size_and_bursting_track_the_stream(self):
        detector = _StepModel().online()
        detector.extend([0.0, 9.0, 0.0])
        assert detector.size == 3
        assert len(detector) == 3
        assert not detector.bursting
        detector.push(3, 9.0)
        assert detector.bursting


class TestReplayDetector:
    def test_default_online_form_is_replay(self):
        assert isinstance(_StepModel().online(), ReplayDetector)

    def test_regions_match_batch_at_every_prefix(self):
        rng = np.random.default_rng(5)
        values = rng.normal(4.0, 3.0, size=40)
        model = _StepModel()
        online = model.online()
        for i, value in enumerate(values):
            online.push(i, value)
            assert online.regions() == model.detect(values[: i + 1])

    def test_regions_returns_a_copy(self):
        model = _StepModel()
        online = model.online()
        online.extend([9.0])
        online.regions().clear()
        assert online.regions() == model.detect([9.0])
