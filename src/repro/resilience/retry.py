"""Bounded exponential-backoff retry for transient storage faults.

The policy draws a hard line through the exception hierarchy:

* **transient** — :class:`OSError` (including the harness's
  :class:`~repro.exceptions.TransientStorageError`): retried up to
  ``max_attempts`` with exponentially growing, capped delays;
* **permanent** — :class:`~repro.exceptions.CorruptionError` and every
  other :class:`~repro.exceptions.StorageError`: never retried (the
  same bad bytes would come back), surfaced immediately so the engine
  can quarantine and degrade instead.

Every retry increments the ``resilience.retries`` obs counter; a retry
budget exhausted increments ``resilience.giveups`` and re-raises the
last error.  The active policy is process-global (like the obs
registry): :func:`active_policy` / :func:`set_policy` /
:func:`policy_context`.

>>> calls = []
>>> def flaky():
...     calls.append(1)
...     if len(calls) < 3:
...         raise OSError("hiccup")
...     return "ok"
>>> call_with_retry(flaky, RetryPolicy(max_attempts=4, sleep=lambda s: None))
'ok'
>>> len(calls)
3
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro import obs
from repro.exceptions import CorruptionError

__all__ = [
    "RetryPolicy",
    "call_with_retry",
    "active_policy",
    "set_policy",
    "policy_context",
    "RetryingStore",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the system responds to storage faults.

    Attributes
    ----------
    max_attempts:
        Total tries per operation (first call included).  The default 4
        out-waits the fault harness's default streak bound of 2.
    base_delay_s / multiplier / max_delay_s:
        Bounded exponential backoff: attempt ``i`` (0-based retry index)
        sleeps ``min(base * multiplier**i, max_delay_s)``.
    degrade:
        When a fault is permanent (corruption, retries exhausted), the
        engine quarantines the sequence and serves a degraded answer
        instead of raising.  ``False`` restores fail-stop behaviour —
        useful in tests that assert the raw error surfaces.
    sleep:
        Injection point for the delay (tests pass a recorder; the
        default blocks the calling thread).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    degrade: bool = True
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, retry_index: int) -> float:
        """The bounded backoff delay before retry ``retry_index`` (0-based)."""
        return min(
            self.base_delay_s * self.multiplier**retry_index, self.max_delay_s
        )

    def with_(self, **changes) -> "RetryPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The process-wide default: absorb short transient streaks, degrade on
#: permanent faults.  Swap it with :func:`set_policy`.
DEFAULT_POLICY = RetryPolicy()

_active: RetryPolicy = DEFAULT_POLICY


def active_policy() -> RetryPolicy:
    """The policy the engine and retrying wrappers currently consult."""
    return _active


def set_policy(policy: RetryPolicy) -> RetryPolicy:
    """Install ``policy`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = policy
    return previous


@contextmanager
def policy_context(policy: RetryPolicy):
    """Temporarily install ``policy`` (restores the previous on exit)."""
    previous = set_policy(policy)
    try:
        yield policy
    finally:
        set_policy(previous)


def call_with_retry(fn, policy: RetryPolicy | None = None, op: str = "storage"):
    """Run ``fn()``; retry transient :class:`OSError` faults per policy.

    Permanent faults (:class:`~repro.exceptions.CorruptionError`, or any
    non-``OSError``) propagate immediately.  When the retry budget runs
    out the last transient error is re-raised and
    ``resilience.giveups`` is incremented.
    """
    policy = policy if policy is not None else _active
    retry_index = 0
    while True:
        try:
            return fn()
        except CorruptionError:
            raise  # permanent: the same bytes would fail again
        except OSError:
            if retry_index + 1 >= policy.max_attempts:
                obs.add("resilience.giveups")
                raise
            obs.add("resilience.retries")
            policy.sleep(policy.delay_s(retry_index))
            retry_index += 1


class RetryingStore:
    """A sequence-store wrapper that retries transient faults.

    Composes with :class:`~repro.resilience.faults.FaultyStore` (or any
    store whose reads may raise :class:`OSError`) to absorb bounded
    transient streaks below the index traversals — tree vantage reads
    included — so callers above never see the hiccup.
    """

    def __init__(self, inner, policy: RetryPolicy | None = None) -> None:
        self._inner = inner
        self._policy = policy

    @property
    def sequence_length(self) -> int:
        return self._inner.sequence_length

    @property
    def pages_per_sequence(self) -> int:
        return self._inner.pages_per_sequence

    @property
    def stats(self):
        return self._inner.stats

    def __len__(self) -> int:
        return len(self._inner)

    def append(self, values) -> int:
        return call_with_retry(
            lambda: self._inner.append(values), self._policy, "store.append"
        )

    def append_matrix(self, matrix):
        return [self.append(row) for row in np.asarray(matrix, dtype=np.float64)]

    def read(self, seq_id: int) -> np.ndarray:
        return call_with_retry(
            lambda: self._inner.read(seq_id), self._policy, "store.read"
        )

    def read_many(self, seq_ids) -> np.ndarray:
        return np.stack([self.read(int(seq_id)) for seq_id in seq_ids])

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "RetryingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
