"""Linear-cost lower bounds for DTW (the paper's section 8 pointer).

Two classic bounds, both cheap enough to filter candidates before any
quadratic DTW computation:

* **LB_Kim** (simplified): DTW must align first with first and last with
  last points, so ``max(|a_0 - b_0|, |a_n - b_n|)`` lower-bounds the
  distance.  O(1) given the sequences.
* **LB_Keogh** (Keogh, VLDB 2002 — reference [9] of the paper): build the
  upper/lower *envelope* of a sequence under the warping band; any point
  of the query outside the envelope contributes its squared excursion.
  O(n) per comparison after an O(n) envelope precomputation.

Both are exact lower bounds of :func:`repro.dtw.distance.dtw_distance`
under the same band, which the property tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.ndimage import maximum_filter1d, minimum_filter1d

from repro.dtw.distance import resolve_band
from repro.exceptions import SeriesMismatchError
from repro.timeseries.preprocessing import as_float_array

__all__ = ["WarpingEnvelope", "lb_kim", "lb_keogh"]


@dataclass(frozen=True)
class WarpingEnvelope:
    """Upper/lower running extrema of a sequence under a warping band."""

    upper: np.ndarray
    lower: np.ndarray
    band: int

    def __post_init__(self) -> None:
        upper = np.ascontiguousarray(self.upper, dtype=np.float64)
        lower = np.ascontiguousarray(self.lower, dtype=np.float64)
        if upper.shape != lower.shape:
            raise SeriesMismatchError("envelope arrays must align")
        upper.setflags(write=False)
        lower.setflags(write=False)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "lower", lower)

    def __len__(self) -> int:
        return int(self.upper.size)

    @classmethod
    def of(cls, values, band: int | float | None) -> "WarpingEnvelope":
        """Envelope of ``values`` for a Sakoe-Chiba radius ``band``."""
        arr = as_float_array(values)
        radius = resolve_band(arr.size, band)
        width = 2 * radius + 1
        return cls(
            upper=maximum_filter1d(arr, size=width, mode="nearest"),
            lower=minimum_filter1d(arr, size=width, mode="nearest"),
            band=radius,
        )


def lb_kim(a, b) -> float:
    """The simplified first/last-point Kim bound (O(1) from endpoints)."""
    a = as_float_array(a)
    b = as_float_array(b)
    if a.size != b.size:
        raise SeriesMismatchError(
            f"cannot compare sequences of lengths {a.size} and {b.size}"
        )
    return float(max(abs(a[0] - b[0]), abs(a[-1] - b[-1])))


def lb_keogh(query, envelope: WarpingEnvelope) -> float:
    """Keogh's envelope bound: ``LB_Keogh(Q, C) <= DTW(Q, C)``.

    ``envelope`` is the candidate's precomputed :class:`WarpingEnvelope`;
    the query is used raw (no envelope needed on the query side).
    """
    q = as_float_array(query)
    if q.size != len(envelope):
        raise SeriesMismatchError(
            f"query of length {q.size} vs envelope of length {len(envelope)}"
        )
    above = np.maximum(q - envelope.upper, 0.0)
    below = np.maximum(envelope.lower - q, 0.0)
    return math.sqrt(float(np.dot(above, above) + np.dot(below, below)))
