"""Unit and property tests for the B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import KeyNotFoundError
from repro.storage import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert list(tree.items()) == []
        assert tree.get(5) is None
        assert tree.get(5, "d") == "d"

    def test_insert_and_lookup(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i * 10)
        assert len(tree) == 100
        for i in range(100):
            assert tree[i] == i * 10
        with pytest.raises(KeyNotFoundError):
            tree[100]

    def test_setitem_alias(self):
        tree = BPlusTree()
        tree[3] = "x"
        assert tree[3] == "x"

    def test_insert_replaces_existing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree[1] == "b"
        assert len(tree) == 1

    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_items_sorted_after_random_inserts(self):
        import random

        rng = random.Random(0)
        keys = rng.sample(range(10_000), 500)
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, -key)
        assert list(tree.keys()) == sorted(keys)
        assert list(tree.values()) == [-k for k in sorted(keys)]
        tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for i in range(1000):
            tree.insert(i, i)
        assert tree.height() <= 8


class TestDelete:
    def test_delete_missing_raises(self):
        tree = BPlusTree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(1)

    def test_delete_everything_both_directions(self):
        for order, direction in [(4, 1), (4, -1), (7, 1), (7, -1)]:
            tree = BPlusTree(order=order)
            keys = list(range(300))
            for key in keys:
                tree.insert(key, key)
            for key in keys[::direction]:
                tree.delete(key)
                tree.check_invariants()
            assert len(tree) == 0
            assert list(tree.items()) == []

    def test_delete_interleaved_with_inserts(self):
        tree = BPlusTree(order=4)
        alive = set()
        for i in range(400):
            tree.insert(i, i)
            alive.add(i)
            if i % 3 == 0 and i >= 30:
                victim = i - 30
                tree.delete(victim)
                alive.remove(victim)
        tree.check_invariants()
        assert sorted(alive) == list(tree.keys())


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, str(key))
        return tree

    def test_closed_range(self, tree):
        keys = [k for k, _ in tree.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_range(self, tree):
        keys = [k for k, _ in tree.range(10, 20, inclusive=(False, False))]
        assert keys == [12, 14, 16, 18]

    def test_bounds_not_present(self, tree):
        keys = [k for k, _ in tree.range(9, 15)]
        assert keys == [10, 12, 14]

    def test_unbounded_low(self, tree):
        keys = [k for k, _ in tree.range(high=6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self, tree):
        keys = [k for k, _ in tree.range(low=94)]
        assert keys == [94, 96, 98]

    def test_fully_unbounded(self, tree):
        assert len(list(tree.range())) == 50

    def test_empty_range(self, tree):
        assert list(tree.range(200, 300)) == []
        assert list(tree.range(11, 11)) == []

    def test_exclusive_low_at_leaf_boundary(self):
        tree = BPlusTree(order=3)
        for key in range(20):
            tree.insert(key, key)
        keys = [k for k, _ in tree.range(7, None, inclusive=(False, True))]
        assert keys == list(range(8, 20))


@st.composite
def operation_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=200,
        )
    )
    return ops


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        operation_sequences(),
        st.integers(min_value=3, max_value=9),
    )
    def test_matches_dict_reference(self, ops, order):
        tree = BPlusTree(order=order)
        reference = {}
        for op, key in ops:
            if op == "insert":
                tree.insert(key, key * 2)
                reference[key] = key * 2
            elif key in reference:
                tree.delete(key)
                del reference[key]
        tree.check_invariants()
        assert len(tree) == len(reference)
        assert list(tree.items()) == sorted(reference.items())
        for key in range(-50, 51):
            assert tree.get(key) == reference.get(key)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), unique=True, max_size=80),
        st.integers(-110, 110),
        st.integers(-110, 110),
        st.booleans(),
        st.booleans(),
    )
    def test_range_matches_filter(self, keys, low, high, inc_low, inc_high):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range(low, high, inclusive=(inc_low, inc_high))]
        want = sorted(
            k
            for k in keys
            if (k > low or (inc_low and k == low))
            and (k < high or (inc_high and k == high))
        )
        assert got == want

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        words = ["easter", "cinema", "elvis", "halloween", "flowers", "bank"]
        for word in words:
            tree.insert(word, word.upper())
        assert list(tree.keys()) == sorted(words)
        assert [k for k, _ in tree.range("c", "f")] == ["cinema", "easter", "elvis"]

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        for a in range(5):
            for b in range(5):
                tree.insert((a, b), a * b)
        assert tree[(3, 4)] == 12
        keys = [k for k, _ in tree.range((1, 0), (1, 99))]
        assert keys == [(1, b) for b in range(5)]
