"""Tests for coefficient-subset reconstruction (the Figure 5 machinery)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.spectral import (
    Spectrum,
    best_indexes,
    first_indexes,
    reconstruct,
    reconstruction_error,
)

signals = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=4, max_value=96),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)


def periodic_signal(n=256, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    x = (
        3.0 * np.sin(2 * np.pi * t / 7)
        + 1.5 * np.sin(2 * np.pi * t / 30)
        + rng.normal(scale=0.3, size=n)
    )
    return x - x.mean()


class TestIndexSelection:
    def test_first_indexes(self):
        spectrum = Spectrum.from_series(np.ones(16))
        np.testing.assert_array_equal(first_indexes(spectrum, 3), [1, 2, 3])
        np.testing.assert_array_equal(
            first_indexes(spectrum, 3, skip_dc=False), [0, 1, 2]
        )

    def test_first_indexes_clamped(self):
        spectrum = Spectrum.from_series(np.ones(8))
        assert first_indexes(spectrum, 100).tolist() == [1, 2, 3, 4]

    def test_best_indexes_finds_dominant_bins(self):
        x = periodic_signal()
        spectrum = Spectrum.from_series(x)
        best = best_indexes(spectrum, 2)
        # periods 7 and 30 on n=256 -> bins round(256/7)=37 (or 36) and
        # round(256/30)=9 (or 8): check the known strongest bins are found.
        assert len(best) == 2
        mags = spectrum.magnitudes
        weakest_best = mags[best].min()
        others = np.delete(mags[1:], best - 1)
        assert weakest_best >= others.max()

    def test_best_indexes_sorted_and_unique(self):
        x = periodic_signal(seed=3)
        spectrum = Spectrum.from_series(x)
        best = best_indexes(spectrum, 10)
        assert list(best) == sorted(set(best.tolist()))

    def test_best_indexes_tie_break_prefers_low_frequency(self):
        # Flat-magnitude spectrum: an impulse has equal energy everywhere.
        x = np.zeros(16)
        x[0] = 1.0
        spectrum = Spectrum.from_series(x)
        np.testing.assert_array_equal(best_indexes(spectrum, 3), [1, 2, 3])

    def test_zero_k(self):
        spectrum = Spectrum.from_series(np.ones(8))
        assert best_indexes(spectrum, 0).size == 0
        assert first_indexes(spectrum, 0).size == 0


class TestReconstruction:
    def test_all_indexes_reconstruct_exactly(self):
        x = periodic_signal()
        spectrum = Spectrum.from_series(x)
        full = np.arange(len(spectrum))
        np.testing.assert_allclose(reconstruct(x, full), x, atol=1e-9)
        assert reconstruction_error(x, full) == pytest.approx(0.0, abs=1e-9)

    def test_no_indexes_gives_zero_signal(self):
        x = periodic_signal()
        out = reconstruct(x, np.arange(0))
        np.testing.assert_allclose(out, np.zeros_like(x), atol=1e-12)

    def test_best_beats_first_on_periodic_data(self):
        """The core of Figure 5: 4 best coefficients beat 5 first ones."""
        x = periodic_signal()
        spectrum = Spectrum.from_series(x)
        err_first = reconstruction_error(x, first_indexes(spectrum, 5))
        err_best = reconstruction_error(x, best_indexes(spectrum, 4))
        assert err_best < err_first

    @given(signals, st.integers(min_value=0, max_value=8))
    def test_error_equals_omitted_energy(self, x, k):
        """Parseval: reconstruction error**2 == energy of omitted coefficients."""
        x = x - x.mean()
        spectrum = Spectrum.from_series(x)
        k = min(k, len(spectrum) - 1)
        kept = best_indexes(spectrum, k)
        omitted = np.setdiff1d(np.arange(len(spectrum)), kept)
        omitted_energy = float(spectrum.powers[omitted].sum())
        err = reconstruction_error(x, kept)
        np.testing.assert_allclose(err**2, omitted_energy, atol=1e-6)

    @given(signals)
    def test_error_decreases_with_more_best_coefficients(self, x):
        spectrum = Spectrum.from_series(x)
        errors = [
            reconstruction_error(x, best_indexes(spectrum, k))
            for k in range(0, len(spectrum) + 1, max(1, len(spectrum) // 4))
        ]
        for earlier, later in zip(errors, errors[1:]):
            assert later <= earlier + 1e-7
