"""Tests for demand components and the day grid."""

import datetime as dt

import numpy as np
import pytest

from repro.datagen import DayGrid
from repro.datagen import components as comp


@pytest.fixture
def grid():
    return DayGrid(dt.date(2002, 1, 1), 365)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDayGrid:
    def test_weekday_alignment(self, grid):
        # 2002-01-01 was a Tuesday (weekday 1).
        assert grid.weekday[0] == 1
        assert grid.weekday[4] == 5  # Saturday Jan 5
        assert grid.dates[0] == dt.date(2002, 1, 1)

    def test_years(self):
        grid = DayGrid(dt.date(2000, 1, 1), 1096)
        assert list(grid.years) == [2000, 2001, 2002]

    def test_offset_of(self, grid):
        assert grid.offset_of(dt.date(2002, 3, 1)) == 59
        assert grid.offset_of(dt.date(2001, 12, 31)) == -1  # may be outside

    def test_validation(self):
        with pytest.raises(ValueError):
            DayGrid(dt.date(2002, 1, 1), 0)


class TestPeriodicComponents:
    def test_weekly_hits_requested_days(self, grid, rng):
        out = comp.weekly(2.0, (5,))(grid, rng)
        saturdays = grid.weekday == 5
        assert np.all(out[saturdays] == 2.0)
        assert np.all(out[~saturdays] == 0.0)

    def test_weekly_has_7_day_period(self, grid, rng):
        out = comp.weekly(1.0, (4, 5))(grid, rng)
        np.testing.assert_array_equal(out[:358], out[7:])

    def test_monthly_peak_spacing(self, grid, rng):
        out = comp.monthly(1.0, phase=0.0)(grid, rng)
        peaks = [
            i
            for i in range(1, 364)
            if out[i] >= out[i - 1] and out[i] >= out[i + 1] and out[i] > 0.5
        ]
        gaps = np.diff(peaks)
        assert 28 <= gaps.mean() <= 31

    def test_seasonal_yearly_repetition(self, rng):
        grid = DayGrid(dt.date(2000, 1, 1), 1096)
        out = comp.seasonal(1.0, peak_day_of_year=150, width=20)(grid, rng)
        first_peak = np.argmax(out[:366])
        second_peak = 366 + np.argmax(out[366:731])
        assert abs((second_peak - first_peak) - 365) <= 1


class TestEventComponents:
    def test_annual_ramp_peaks_on_the_day(self, grid, rng):
        out = comp.annual_ramp((10, 31), 3.0, rise=20, fall=3)(grid, rng)
        halloween = grid.offset_of(dt.date(2002, 10, 31))
        assert np.argmax(out) == halloween

    def test_annual_ramp_is_asymmetric(self, grid, rng):
        out = comp.annual_ramp((10, 31), 3.0, rise=20, fall=3)(grid, rng)
        peak = int(np.argmax(out))
        assert out[peak - 10] > out[peak + 10]  # slow rise, fast fall

    def test_annual_ramp_moving_feast(self, rng):
        from repro.datagen import easter_date

        grid = DayGrid(dt.date(2000, 1, 1), 1096)
        out = comp.annual_ramp(easter_date, 3.0, rise=20, fall=3)(grid, rng)
        for year in (2000, 2001, 2002):
            peak_day = grid.offset_of(easter_date(year))
            window = out[max(peak_day - 3, 0) : peak_day + 4]
            assert window.max() > 2.5

    def test_annual_spike_width(self, grid, rng):
        out = comp.annual_spike((8, 16), 4.0, width=1.5)(grid, rng)
        anniversary = grid.offset_of(dt.date(2002, 8, 16))
        assert out[anniversary] == pytest.approx(4.0, rel=1e-6)
        assert out[anniversary - 10] < 0.01

    def test_one_off_decay(self, grid, rng):
        event = dt.date(2002, 6, 1)
        out = comp.one_off(event, 10.0, rise=1.0, fall=5.0)(grid, rng)
        peak = grid.offset_of(event)
        assert np.argmax(out) == peak
        assert out[peak - 3] < out[peak + 3]  # sharp onset, slower decay


class TestBackgroundComponents:
    def test_linear_trend_endpoints(self, grid, rng):
        out = comp.linear_trend(2.0)(grid, rng)
        assert out[0] == 0.0
        assert out[-1] == pytest.approx(2.0)

    def test_linear_trend_single_day(self, rng):
        out = comp.linear_trend(2.0)(DayGrid(dt.date(2002, 1, 1), 1), rng)
        assert out.tolist() == [0.0]

    def test_white_noise_statistics(self, grid):
        out = comp.white_noise(0.2)(grid, np.random.default_rng(1))
        assert abs(out.mean()) < 0.05
        assert 0.15 < out.std() < 0.25

    def test_random_walk_is_cumulative(self):
        rng_a = np.random.default_rng(2)
        rng_b = np.random.default_rng(2)
        grid = DayGrid(dt.date(2002, 1, 1), 100)
        walk = comp.random_walk(0.1)(grid, rng_a)
        steps = rng_b.normal(0.0, 0.1, size=100)
        np.testing.assert_allclose(walk, np.cumsum(steps))

    def test_stochastic_components_reproducible_with_seed(self, grid):
        a = comp.white_noise(0.1)(grid, np.random.default_rng(3))
        b = comp.white_noise(0.1)(grid, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
