"""Online burst detection: bit-identity to the batch detector, alerts."""

import numpy as np
import pytest

from repro.bursts.detection import BurstDetector
from repro.bursts.streaming import OnlineBurstDetector
from repro.stream import LiveBurstMonitor


def _series(days: int = 60, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = rng.poisson(20, size=days).astype(float)
    values[40:45] += 90.0  # an unmistakable burst
    return values


class TestOnlineBurstDetector:
    @pytest.mark.parametrize("window", [1, 7, 30])
    def test_bit_identical_to_batch_on_every_prefix(self, window):
        values = _series()
        batch = BurstDetector(window, 1.5, mode="trailing")
        online = OnlineBurstDetector(window, 1.5)
        for i in range(1, values.size + 1):
            online.push(values[i - 1])
            expected = batch.detect(values[:i])
            got = online.annotation()
            assert got.window == expected.window
            assert got.cutoff == expected.cutoff  # exact, not approx
            np.testing.assert_array_equal(got.smoothed, expected.smoothed)
            np.testing.assert_array_equal(got.mask, expected.mask)

    def test_push_return_matches_final_mask_entry(self):
        values = _series(days=50, seed=3)
        online = OnlineBurstDetector(7, 1.5)
        for value in values:
            bursting = online.push(value)
            assert bursting == bool(online.annotation().mask[-1])

    def test_growth_past_initial_capacity(self):
        # Initial buffers hold 15 smoothed values; push far beyond.
        online = OnlineBurstDetector(7, 1.5)
        values = _series(days=200, seed=5)
        for value in values:
            online.push(value)
        assert len(online) == 200
        expected = BurstDetector(7, 1.5, mode="trailing").detect(values)
        np.testing.assert_array_equal(
            online.annotation().smoothed, expected.smoothed
        )

    def test_rejects_bad_parameters_and_values(self):
        with pytest.raises(ValueError):
            OnlineBurstDetector(0)
        with pytest.raises(ValueError):
            OnlineBurstDetector(7, 0.0)
        with pytest.raises(ValueError):
            OnlineBurstDetector(7).annotation()
        detector = OnlineBurstDetector(7)
        with pytest.raises(Exception):
            detector.push(float("nan"))


class TestLiveBurstMonitor:
    def test_rising_edge_alerts_once_per_burst(self):
        monitor = LiveBurstMonitor(window=3, threshold_sigmas=1.5)
        quiet = [10.0] * 12
        burst = [200.0] * 4
        alerts = monitor.observe_series("q", quiet + burst + quiet + burst)
        # Two separate burst episodes, two alerts — not one per bursty day.
        assert len(alerts) == 2
        assert all(a.name == "q" for a in alerts)
        for alert in alerts:
            assert alert.smoothed > alert.cutoff
            assert alert.value == 200.0

    def test_alert_day_indexes_the_observed_stream(self):
        monitor = LiveBurstMonitor(window=3)
        values = [5.0] * 10 + [500.0]
        (alert,) = monitor.observe_series("q", values)
        assert alert.day == 10

    def test_drain_hands_over_and_clears(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("q", [5.0] * 10 + [500.0])
        drained = monitor.drain()
        assert len(drained) == 1
        assert monitor.drain() == []

    def test_forget_resets_a_series(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("q", [5.0] * 8)
        assert monitor.detector("q") is not None
        monitor.forget("q")
        assert monitor.detector("q") is None
        monitor.forget("never-seen")  # idempotent

    def test_independent_series_do_not_interact(self):
        monitor = LiveBurstMonitor(window=3)
        monitor.observe_series("loud", [5.0] * 10 + [500.0] * 3)
        alerts = monitor.observe_series("calm", [7.0] * 13)
        assert alerts == []
        assert len(monitor) == 2
        assert len(monitor.detector("calm")) == 13
