"""Shared-memory publication of numpy blocks (zero-copy worker views).

The persistent shard worker pool (:mod:`repro.cluster.pool`) keeps one
long-lived process per shard.  Re-pickling the shard's sequence matrix
and packed :class:`~repro.compression.SketchDatabase` field blocks into
every worker would double (or N-fold) the resident footprint and pay a
serialisation cost at every (re)spawn; instead the parent publishes the
blocks once into POSIX shared memory (``multiprocessing.shared_memory``)
and each worker *attaches* read-only numpy views onto the same physical
pages.

Three pieces:

* :class:`SharedArena` — one shared-memory segment holding many named,
  64-byte-aligned array blocks.  The owner stages arrays, ``seal()``\\ s
  the arena (allocate + copy once), and hands workers the picklable
  :class:`ArenaMeta`; ``SharedArena.attach(meta)`` maps the same segment
  in another process.  Attached views are marked read-only, so a worker
  cannot corrupt the database under its siblings.
* :func:`stage_sketch_database` / :func:`attach_sketch_database` — the
  :class:`~repro.compression.database.SketchDatabase` field blocks
  (positions, coefficients, weights, errors, min_powers, widths) as
  arena blocks, reassembled into a zero-copy database view on attach.
* :class:`MatrixSequenceStore` — the sequence-store protocol (``read`` /
  ``read_many`` / ``close``) over any 2-D array, which is how a worker's
  index (and the parent's verifier) serves fetches straight from the
  shared matrix when no on-disk page store exists.

Lifecycle discipline (asserted by ``tests/storage/test_shm.py`` and the
pool suite): exactly one owner per segment, ``close()`` on every
attacher, ``close()`` + ``unlink()`` on the owner — after the owner
closes, no ``repro_shm_*`` entry may remain under ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ReproError, StorageError

__all__ = [
    "ArenaMeta",
    "MatrixSequenceStore",
    "SEGMENT_PREFIX",
    "SharedArena",
    "SketchBlocksMeta",
    "attach_sketch_database",
    "stage_sketch_database",
]

#: Prefix of every shared-memory segment this module creates; leak
#: checks (tests and the CI ``pool`` job) glob ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro_shm_"

#: Block alignment inside an arena, in bytes — cache-line friendly and a
#: multiple of every numpy itemsize we publish.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class _BlockMeta:
    """Where one array lives inside the segment (picklable)."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ArenaMeta:
    """Everything an attacher needs: segment name + block directory."""

    segment: str
    size: int
    blocks: Mapping[str, _BlockMeta]


def _attach_untracked(segment: str):
    """Open an existing segment without registering it for cleanup.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker, which would unlink it (with a loud warning) when *any*
    attacher exits — even though the owner is still serving from it;
    and unregister-after-attach corrupts a fork-shared tracker (two
    attachers unregistering the same name crashes its cache).  Python
    3.13 grew ``track=False`` for exactly this; on 3.11/3.12 the safe
    workaround is to suppress the registration call itself while
    attaching.  Only the owner's create-time registration remains, and
    only the owner unlinks.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=segment)
    finally:
        resource_tracker.register = original


class SharedArena:
    """Many named array blocks in one shared-memory segment.

    Owner side::

        arena = SharedArena()
        arena.stage("shard00.matrix", sub_matrix)
        arena.stage("shard00.norms", norms_sq)
        arena.seal()                       # allocate segment, copy blocks
        meta = arena.meta                  # picklable, send to workers
        ...
        arena.close()                      # also unlinks (owner)

    Worker side::

        arena = SharedArena.attach(meta)
        view = arena.array("shard00.matrix")   # zero-copy, read-only
        ...
        arena.close()                          # never unlinks
    """

    def __init__(self) -> None:
        self._staged: list[tuple[str, np.ndarray]] = []
        self._shm = None
        self._meta: ArenaMeta | None = None
        self._owner = True
        self._closed = False

    # ------------------------------------------------------------------
    # Owner: stage + seal
    # ------------------------------------------------------------------
    def stage(self, key: str, array: np.ndarray) -> None:
        """Queue one array for publication (before :meth:`seal`)."""
        if self._meta is not None:
            raise ReproError("cannot stage blocks into a sealed arena")
        array = np.ascontiguousarray(array)
        if any(key == staged for staged, _ in self._staged):
            raise ReproError(f"duplicate arena block {key!r}")
        self._staged.append((key, array))

    def seal(self) -> ArenaMeta:
        """Allocate the segment and copy every staged block in."""
        from multiprocessing import shared_memory

        if self._meta is not None:
            return self._meta
        blocks: dict[str, _BlockMeta] = {}
        offset = 0
        for key, array in self._staged:
            offset = _aligned(offset)
            blocks[key] = _BlockMeta(
                offset=offset,
                shape=tuple(array.shape),
                dtype=array.dtype.str,
            )
            offset += array.nbytes
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(offset, 1)
        )
        for key, array in self._staged:
            spec = blocks[key]
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view[...] = array
        self._staged = []
        self._meta = ArenaMeta(
            segment=name, size=max(offset, 1), blocks=blocks
        )
        return self._meta

    @property
    def meta(self) -> ArenaMeta:
        if self._meta is None:
            raise ReproError("arena is not sealed yet")
        return self._meta

    # ------------------------------------------------------------------
    # Attachers
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, meta: ArenaMeta) -> "SharedArena":
        """Map an existing arena (another process's segment)."""
        arena = cls.__new__(cls)
        arena._staged = []
        try:
            arena._shm = _attach_untracked(meta.segment)
        except FileNotFoundError as exc:
            raise StorageError(
                f"shared arena {meta.segment!r} is gone — the owner "
                "closed it (pool shut down?)"
            ) from exc
        arena._meta = meta
        arena._owner = False
        arena._closed = False
        return arena

    def array(self, key: str) -> np.ndarray:
        """A zero-copy, read-only view of one published block."""
        if self._shm is None or self._closed:
            raise StorageError("arena is closed")
        try:
            spec = self.meta.blocks[key]
        except KeyError:
            known = ", ".join(sorted(self.meta.blocks))
            raise ReproError(
                f"unknown arena block {key!r}; published: {known}"
            ) from None
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=self._shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        return view

    def keys(self) -> tuple[str, ...]:
        return tuple(self.meta.blocks)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unmap the segment; the owner also unlinks it. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._shm is None:
            return
        try:
            self._shm.close()
        finally:
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._shm = None

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# SketchDatabase field blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SketchBlocksMeta:
    """Directory of one sketch database's blocks inside an arena."""

    prefix: str
    n: int
    basis: str
    method: str
    names: tuple | None


def stage_sketch_database(
    arena: SharedArena, prefix: str, db
) -> SketchBlocksMeta:
    """Stage a :class:`SketchDatabase`'s canonical SoA blocks.

    Publishes exactly ``db.soa_blocks()`` — the per-field blocks named by
    :attr:`SketchDatabase.SOA_FIELDS` plus the precomputed ``norms`` —
    so shared memory is a view over the one canonical layout rather than
    a second ad-hoc packing.  The norms block is the attach-time
    integrity handshake.
    """
    for field, block in db.soa_blocks().items():
        arena.stage(f"{prefix}.{field}", block)
    return SketchBlocksMeta(
        prefix=prefix,
        n=int(db.n),
        basis=db.basis,
        method=db.method,
        names=db.names,
    )


def attach_sketch_database(arena: SharedArena, meta: SketchBlocksMeta):
    """Reassemble a zero-copy :class:`SketchDatabase` view from an arena.

    The returned database's field arrays are read-only views onto the
    shared segment; no sketch bytes are copied.  Attach recomputes the
    per-row sketch norms from the mapped blocks and compares them
    *bitwise* against the published ``norms`` block
    (:class:`~repro.exceptions.CorruptionError` on mismatch), so a torn
    or stale segment is caught before any query runs over it.
    """
    from repro.compression.database import SketchDatabase

    fields = {
        field: arena.array(f"{meta.prefix}.{field}")
        for field in SketchDatabase.SOA_FIELDS
    }
    return SketchDatabase.from_soa(
        fields,
        n=meta.n,
        basis=meta.basis,
        method=meta.method,
        names=meta.names,
        verify_norms=arena.array(f"{meta.prefix}.norms"),
    )


# ----------------------------------------------------------------------
# The store protocol over a (possibly shared) matrix
# ----------------------------------------------------------------------
class MatrixSequenceStore:
    """Read-only sequence store over a 2-D array (often a shared view).

    Speaks the same protocol as
    :class:`~repro.storage.pagestore.MemorySequenceStore` minus writes:
    the pool's workers and the router's parent-side verifier both fetch
    sequences through it when shards are served from shared memory
    rather than from per-shard page-store files.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise StorageError(
                f"expected a 2-D matrix, got shape {matrix.shape}"
            )
        self._matrix = matrix
        self._closed = False

    def __len__(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def sequence_length(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def pages_per_sequence(self) -> int:
        return 0  # nothing is paged; reads cost no I/O

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def read(self, seq_id: int) -> np.ndarray:
        self._check_open()
        seq_id = int(seq_id)
        if not 0 <= seq_id < len(self):
            from repro.exceptions import KeyNotFoundError

            raise KeyNotFoundError(
                f"sequence {seq_id} not in store of {len(self)}"
            )
        return self._matrix[seq_id].copy()

    def read_many(self, seq_ids: Sequence[int]) -> np.ndarray:
        self._check_open()
        ids = np.asarray(list(seq_ids), dtype=np.intp)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self)):
            from repro.exceptions import KeyNotFoundError

            raise KeyNotFoundError(
                f"sequence ids out of range for store of {len(self)}"
            )
        return self._matrix[ids]

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "MatrixSequenceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
