"""Tests for the linear-scan baseline."""

import numpy as np
import pytest

from repro.exceptions import SeriesMismatchError
from repro.index import LinearScanIndex, distances_to_query
from repro.storage import MemorySequenceStore, SequencePageStore
from repro.timeseries import zscore


def make_db(count=50, n=64, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    rows = []
    for i in range(count):
        period = [7, 12, 30][i % 3]
        rows.append(
            zscore(
                np.sin(2 * np.pi * t / period + rng.uniform(0, 6))
                + 0.4 * rng.normal(size=n)
            )
        )
    return np.array(rows)


@pytest.fixture(scope="module")
def matrix():
    return make_db()


class TestSearch:
    def test_1nn_matches_brute_force(self, matrix):
        index = LinearScanIndex(matrix)
        rng = np.random.default_rng(9)
        for _ in range(10):
            query = zscore(rng.normal(size=64))
            neighbors, stats = index.search(query, k=1)
            truth = distances_to_query(matrix, query)
            assert neighbors[0].distance == pytest.approx(truth.min())
            assert stats.full_retrievals == len(matrix)

    def test_knn_matches_brute_force(self, matrix):
        index = LinearScanIndex(matrix)
        rng = np.random.default_rng(10)
        query = zscore(rng.normal(size=64))
        neighbors, _ = index.search(query, k=5)
        truth = np.sort(distances_to_query(matrix, query))[:5]
        got = [n.distance for n in neighbors]
        np.testing.assert_allclose(got, truth, atol=1e-9)
        assert got == sorted(got)

    def test_query_in_database_found_at_zero(self, matrix):
        index = LinearScanIndex(matrix)
        neighbors, _ = index.search(matrix[7], k=1)
        assert neighbors[0].seq_id == 7
        assert neighbors[0].distance == pytest.approx(0.0, abs=1e-12)

    def test_names_attached(self, matrix):
        names = [f"query-{i}" for i in range(len(matrix))]
        index = LinearScanIndex(matrix, names=names)
        neighbors, _ = index.search(matrix[3], k=1)
        assert neighbors[0].name == "query-3"

    def test_k_validation(self, matrix):
        index = LinearScanIndex(matrix)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=0)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=len(matrix) + 1)

    def test_query_length_validation(self, matrix):
        index = LinearScanIndex(matrix)
        with pytest.raises(SeriesMismatchError):
            index.search(np.zeros(10), k=1)

    def test_names_validation(self, matrix):
        with pytest.raises(SeriesMismatchError):
            LinearScanIndex(matrix, names=["too", "few"])

    def test_matrix_shape_validation(self):
        with pytest.raises(SeriesMismatchError):
            LinearScanIndex(np.zeros(10))


class TestStoreIntegration:
    def test_scan_charges_io(self, matrix, tmp_path):
        store = SequencePageStore(tmp_path / "db.dat", matrix.shape[1])
        index = LinearScanIndex(matrix, store=store)
        assert len(store) == len(matrix)
        index.search(matrix[0], k=1)
        assert store.stats.read_calls == len(matrix)
        assert store.stats.pages_read >= len(matrix)

    def test_memory_store_results_identical(self, matrix):
        plain = LinearScanIndex(matrix)
        stored = LinearScanIndex(matrix, store=MemorySequenceStore(matrix.shape[1]))
        rng = np.random.default_rng(4)
        query = zscore(rng.normal(size=64))
        a, _ = plain.search(query, k=3)
        b, _ = stored.search(query, k=3)
        assert [n.seq_id for n in a] == [n.seq_id for n in b]

    def test_prefilled_store_reused(self, matrix):
        store = MemorySequenceStore(matrix.shape[1])
        store.append_matrix(matrix)
        index = LinearScanIndex(matrix, store=store)
        assert len(store) == len(matrix)  # not appended twice
