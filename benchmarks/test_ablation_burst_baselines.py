"""Ablation A8: the paper's burst detector vs its two cited baselines.

Section 6 claims the moving-average detector is (a) "simpler and less
computationally intensive" than Kleinberg's stream model [11] and (b)
needs "significantly less storage space" and "no custom index structure"
compared to Zhu & Shasha's elastic bursts [17].  This bench implements
both baselines and measures those claims on the synthetic query logs.
"""

import time

import numpy as np

from repro.bursts import (
    BurstDetector,
    ElasticBurstDetector,
    KleinbergDetector,
    compact_bursts,
)
from repro.evaluation import format_table


def _days(intervals):
    out = set()
    for start, end in intervals:
        out.update(range(start, end + 1))
    return out


def test_ablation_burst_baselines(catalog_2002, report, benchmark):
    names = ("halloween", "easter", "christmas", "thanksgiving")
    ma_detector = BurstDetector.long_term()
    kleinberg = KleinbergDetector(gamma=1.0)
    elastic = ElasticBurstDetector(
        lambda w: 0.0 + 3.0 * w, lengths=(4, 8, 16, 32)
    )

    agreement_rows = []
    ma_seconds = kb_seconds = eb_seconds = 0.0
    triplet_rows = swt_cells = 0
    for name in names:
        series = catalog_2002[name]
        standardized = series.standardize()
        counts = series.values

        started = time.perf_counter()
        annotation = ma_detector.detect(standardized)
        ma_bursts = compact_bursts(standardized, annotation)
        ma_seconds += time.perf_counter() - started
        ma_days = _days([(b.start, b.end) for b in ma_bursts])

        started = time.perf_counter()
        kb_bursts = kleinberg.detect(counts)
        kb_seconds += time.perf_counter() - started
        kb_days = _days([(b.start, b.end) for b in kb_bursts])

        # Elastic thresholds in standardised units, shifted non-negative.
        shifted = standardized.values - standardized.values.min()
        offset = float(standardized.values.min())
        threshold = lambda w, off=offset: (0.8 - off) * w  # noqa: E731
        eb = ElasticBurstDetector(threshold, lengths=(4, 8, 16, 32))
        started = time.perf_counter()
        eb_bursts = eb.detect(shifted)
        eb_seconds += time.perf_counter() - started
        eb_days = _days([(b.start, b.end) for b in eb_bursts])

        triplet_rows += len(ma_bursts)
        swt_cells += elastic.storage_cells(counts)

        def jaccard(a, b):
            if not a and not b:
                return 1.0
            return len(a & b) / max(len(a | b), 1)

        agreement_rows.append(
            (
                name,
                len(ma_bursts),
                jaccard(ma_days, kb_days),
                jaccard(ma_days, eb_days),
            )
        )

    report(
        format_table(
            ("query", "MA bursts", "Jaccard vs Kleinberg", "Jaccard vs elastic"),
            agreement_rows,
            title="ablation A8a: do the three detectors agree on holiday bursts?",
        ),
        format_table(
            ("cost", "moving average", "Kleinberg", "elastic (SWT)"),
            [
                ("seconds for 4 series", ma_seconds, kb_seconds, eb_seconds),
                (
                    "state kept per series",
                    f"{triplet_rows / len(names):.1f} triplet rows",
                    "k-state DP table",
                    f"{swt_cells / len(names):.0f} SWT cells",
                ),
            ],
            title="ablation A8b: the paper's cost claims",
            digits=4,
        ),
    )

    # Agreement: every method flags the same holiday windows (majority
    # overlap with at least one baseline per series).
    for name, ma_count, vs_kb, vs_eb in agreement_rows:
        assert ma_count >= 1, name
        assert max(vs_kb, vs_eb) > 0.3, (name, vs_kb, vs_eb)
    # The storage claim: compact triplets are orders of magnitude smaller
    # than the SWT monitoring state.
    assert swt_cells > 20 * triplet_rows

    standardized = catalog_2002["halloween"].standardize()
    benchmark(ma_detector.detect, standardized)
