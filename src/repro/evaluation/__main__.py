"""Entry point for ``python -m repro.evaluation``."""

from repro.evaluation.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
