"""The four registered models: registry behaviour and the equivalence law.

The load-bearing suite here is :class:`TestOnlineEquivalence` — for every
registered backend, the online detector's region list after pushing
``values[:i]`` one value at a time must equal ``detect(values[:i])``
**exactly** (``==`` over :class:`BurstRegion`, no tolerance) at every
prefix ``i``.  That is the protocol-wide law the refactor promotes from
the trailing-MA detector to all models.
"""

import numpy as np
import pytest

from repro.bursts.models import (
    ElasticModel,
    KleinbergModel,
    MACDModel,
    MovingAverageModel,
)
from repro.bursts.protocol import BurstModel, BurstRegion, ReplayDetector
from repro.bursts.registry import (
    MODEL_BUILDERS,
    available_burst_models,
    get_burst_model,
)
from repro.exceptions import ReproError, SeriesLengthError
from repro.timeseries.series import TimeSeries


def _bursty_counts(days=120, seed=3):
    """Raw daily counts: Poisson baseline with two injected bursts."""
    rng = np.random.default_rng(seed)
    values = rng.poisson(20.0, size=days).astype(np.float64)
    values[40:50] += rng.poisson(60.0, size=10)
    values[90:97] += rng.poisson(90.0, size=7)
    return values


def _zscored(values):
    return (values - values.mean()) / values.std()


#: One representative configuration per registry name, parameterised so
#: every backend runs through the same equivalence machinery.  Elastic
#: runs on raw counts with a count-scaled pure threshold; the others at
#: defaults apart from a short MA window so bursts actually register on
#: a 120-day series.
_CONFIGS = {
    "ma": lambda: MovingAverageModel(window=7),
    "kleinberg": lambda: KleinbergModel(),
    "elastic": lambda: ElasticModel(offset=0.0, rate=40.0),
    "macd": lambda: MACDModel(),
}


class TestRegistry:
    def test_every_builder_has_a_config_here(self):
        assert set(_CONFIGS) == set(MODEL_BUILDERS)

    def test_available_models(self):
        assert available_burst_models() == ("ma", "kleinberg", "elastic", "macd")

    @pytest.mark.parametrize("name", ["ma", "kleinberg", "elastic", "macd"])
    def test_get_returns_the_named_model(self, name):
        model = get_burst_model(name)
        assert isinstance(model, BurstModel)
        assert model.name == name

    @pytest.mark.parametrize(
        "alias, target",
        [
            ("moving_average", "ma"),
            ("moving-average", "ma"),
            ("trailing", "ma"),
            ("automaton", "kleinberg"),
            ("swt", "elastic"),
            ("shifted_wavelet_tree", "elastic"),
            ("crossover", "macd"),
        ],
    )
    def test_aliases(self, alias, target):
        assert get_burst_model(alias).name == target

    def test_kwargs_forward_to_the_constructor(self):
        model = get_burst_model("ma", window=14, threshold_sigmas=2.0)
        assert model.window == 14
        assert model.threshold_sigmas == 2.0
        assert get_burst_model("macd", fast=5.0, slow=20.0).fast == 5.0

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ReproError, match="elastic.*kleinberg.*ma.*macd"):
            get_burst_model("wavelets")

    def test_instance_passes_through(self):
        model = MACDModel()
        assert get_burst_model(model) is model

    def test_instance_with_kwargs_is_rejected(self):
        with pytest.raises(ReproError):
            get_burst_model(MACDModel(), fast=3.0)


class TestOnlineEquivalence:
    """The law: online regions == batch regions at *every* prefix."""

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_bit_identical_at_every_prefix(self, name):
        values = _bursty_counts()
        if name == "ma":
            values = _zscored(values)
        model = _CONFIGS[name]()
        online = model.online()
        fired_any = False
        for i, value in enumerate(values):
            online.push(i, value)
            batch = model.detect(values[: i + 1])
            assert online.regions() == batch, f"{name} diverged at prefix {i + 1}"
            fired_any = fired_any or bool(batch)
        assert fired_any, f"{name} never fired; the test data is too tame"

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_detect_is_canonically_sorted(self, name):
        values = _bursty_counts(seed=11)
        regions = _CONFIGS[name]().detect(values)
        assert regions == sorted(regions)

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_empty_input_is_rejected(self, name):
        with pytest.raises(SeriesLengthError):
            _CONFIGS[name]().detect(np.empty(0))

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_timeseries_input_equals_array_input(self, name):
        values = _bursty_counts(seed=7)
        model = _CONFIGS[name]()
        assert model.detect(TimeSeries(values)) == model.detect(values)


class TestMovingAverageModel:
    def test_weight_is_the_area_above_the_cutoff(self):
        values = _zscored(_bursty_counts())
        model = MovingAverageModel(window=7)
        annotation = model._detector.detect(values)
        for region in model.detect(values):
            expected = float(
                np.sum(
                    annotation.smoothed[region.start : region.end + 1]
                    - annotation.cutoff
                )
            )
            assert region.weight == expected
            assert region.weight > 0.0

    def test_online_decision_statistic_is_the_smoothed_value(self):
        values = _zscored(_bursty_counts())
        model = MovingAverageModel(window=7)
        online = model.online()
        online.extend(values)
        annotation = model._detector.detect(values)
        assert online.decision_statistic == annotation.smoothed[-1]
        assert online.decision_threshold == annotation.cutoff


class TestKleinbergModel:
    def test_online_form_is_honest_replay(self):
        assert isinstance(KleinbergModel().online(), ReplayDetector)

    def test_regions_match_the_state_sequence(self):
        values = _bursty_counts(seed=5)
        model = KleinbergModel()
        states = model._detector.state_sequence(values)
        flagged = {
            day
            for region in model.detect(values)
            for day in range(region.start, region.end + 1)
        }
        assert flagged == set(np.flatnonzero(states >= 1).tolist())

    def test_level_is_the_peak_state(self):
        values = _bursty_counts(seed=5)
        model = KleinbergModel(states=3)
        states = model._detector.state_sequence(values)
        for region in model.detect(values):
            assert region.level == int(
                states[region.start : region.end + 1].max()
            )

    def test_weight_sums_the_emission_savings(self):
        values = _bursty_counts(seed=5)
        model = KleinbergModel()
        _, savings = model._detector.weighted_states(values)
        for region in model.detect(values):
            assert region.weight == float(
                np.sum(savings[region.start : region.end + 1])
            )
            assert region.weight > 0.0


class TestElasticModel:
    def test_negative_values_are_clipped_pointwise(self):
        values = _bursty_counts(seed=2)
        model = ElasticModel(offset=0.0, rate=40.0)
        shifted = values.copy()
        shifted[shifted < 25.0] = -1000.0  # clipped to 0, not subtracted
        assert model.detect(shifted) == model.detect(np.maximum(shifted, 0.0))

    def test_default_threshold_is_affine_in_the_window(self):
        model = ElasticModel(offset=4.0, rate=1.5)
        assert model.threshold(7) == 4.0 + 1.5 * 7
        assert model.threshold(30) == 4.0 + 1.5 * 30

    def test_region_weight_is_the_window_sum(self):
        values = _bursty_counts(seed=2)
        model = ElasticModel(offset=0.0, rate=40.0)
        regions = model.detect(values)
        assert regions
        for region in regions:
            assert region.weight == float(
                np.sum(values[region.start : region.end + 1])
            )
            assert region.weight >= model.threshold(len(region))


class TestMACDModel:
    def test_rejects_bad_spans(self):
        with pytest.raises(ValueError):
            MACDModel(fast=30.0, slow=7.0)
        with pytest.raises(ValueError):
            MACDModel(fast=7.0, slow=7.0)
        with pytest.raises(ValueError):
            MACDModel(signal=0.0)

    def test_flat_series_never_bursts(self):
        assert MACDModel().detect(np.full(100, 13.0)) == []

    def test_step_up_fires_near_the_step(self):
        values = np.concatenate([np.full(60, 10.0), np.full(30, 80.0)])
        regions = MACDModel().detect(values)
        assert regions
        first = regions[0]
        assert 60 <= first.start <= 63  # momentum crosses just after the step
        assert first.weight > 0.0

    def test_weight_is_the_histogram_mass(self):
        values = _bursty_counts(seed=9)
        model = MACDModel()
        state = model._state()
        for value in values:
            state.push(value)
        histogram = np.asarray(state.histogram)
        for region in model.detect(values):
            assert region.weight == float(
                np.sum(histogram[region.start : region.end + 1])
            )
