"""Tests for the server-placement planner (the paper's use case #3)."""

import datetime as dt

import numpy as np
import pytest

from repro.exceptions import SeriesMismatchError, UnknownQueryError
from repro.datagen import QueryLogGenerator
from repro.placement import plan_placement
from repro.timeseries import TimeSeries, TimeSeriesCollection


@pytest.fixture(scope="module")
def collection():
    gen = QueryLogGenerator(seed=0, start=dt.date(2002, 1, 1), days=365)
    names = (
        "cinema", "movie listings", "restaurants",        # weekend family
        "bank", "weather",                                # weekday-ish
        "christmas", "christmas gifts", "gingerbread men",  # december family
        "full moon", "tides",                             # lunar family
        "elvis", "dudley moore",                          # spiky loners
    )
    return gen.collection(names)


@pytest.fixture(scope="module")
def plan(collection):
    return plan_placement(collection, servers=3, neighbors=3)


class TestPlanStructure:
    def test_everyone_placed(self, collection, plan):
        assert set(plan.assignments) == set(collection.names)
        assert all(0 <= s < 3 for s in plan.assignments.values())
        assert plan.servers == 3

    def test_members_partition(self, collection, plan):
        seen = []
        for server in range(plan.servers):
            seen.extend(plan.members(server))
        assert sorted(seen) == sorted(collection.names)

    def test_server_of_and_errors(self, plan):
        assert plan.server_of("cinema") == plan.assignments["cinema"]
        with pytest.raises(UnknownQueryError):
            plan.server_of("bogus")
        with pytest.raises(IndexError):
            plan.members(99)


class TestSimilarityPreservation:
    def test_families_colocated(self, plan):
        """Queries 'bound to be retrieved together' share a server."""
        assert plan.colocated("cinema", "movie listings")
        assert plan.colocated("christmas", "christmas gifts")
        assert plan.colocated("christmas", "gingerbread men")

    def test_communities_reflect_families(self, plan):
        by_member = {}
        for community in plan.communities:
            for member in community:
                by_member[member] = community
        assert "movie listings" in by_member["cinema"]
        assert "christmas gifts" in by_member["christmas"]


class TestLoadBalance:
    def test_loads_cover_total_demand(self, collection, plan):
        total = sum(collection[name].mean for name in collection.names)
        assert sum(plan.loads) == pytest.approx(total, rel=1e-9)

    def test_imbalance_bounded(self, plan):
        # LPT packing of communities: within 2x of perfectly even.
        assert plan.load_imbalance() < 2.0

    def test_single_server_takes_everything(self, collection):
        plan = plan_placement(collection, servers=1)
        assert plan.loads[0] > 0
        assert set(plan.assignments.values()) == {0}
        assert plan.load_imbalance() == pytest.approx(1.0)

    def test_giant_community_is_split(self):
        """A community above 1.5x the fair share must not sink one server."""
        rng = np.random.default_rng(1)
        t = np.arange(365)
        members = [
            TimeSeries(
                1000 + 200 * np.sin(2 * np.pi * t / 7 + 0.05 * i)
                + rng.normal(scale=5, size=365),
                name=f"clone-{i}",
                start=dt.date(2002, 1, 1),
            )
            for i in range(8)
        ]
        coll = TimeSeriesCollection(members)
        plan = plan_placement(coll, servers=4, neighbors=3)
        assert len(set(plan.assignments.values())) >= 3
        assert plan.load_imbalance() < 1.6


class TestValidation:
    def test_bad_parameters(self, collection):
        with pytest.raises(ValueError):
            plan_placement(collection, servers=0)
        with pytest.raises(ValueError):
            plan_placement(collection, servers=2, neighbors=0)
        with pytest.raises(SeriesMismatchError):
            plan_placement(TimeSeriesCollection(), servers=2)
