"""String-keyed registry of the pluggable burst models.

Mirrors :mod:`repro.engine.registry`: experiment configuration names a
burst backend the same way it names an index structure, so the stream
monitor, the miner, query-by-burst and the evaluation runner construct
detectors from strings instead of hard-coded classes::

    from repro.bursts import get_burst_model

    model = get_burst_model("kleinberg", gamma=2.0)
    regions = model.detect(values)          # batch
    detector = model.online()               # incremental counterpart

Every registered model implements the
:class:`~repro.bursts.protocol.BurstModel` protocol and honours the
online-equivalence contract (``online()`` bit-identical to ``detect`` at
every prefix — see ``tests/bursts/test_models.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.bursts.protocol import BurstModel
from repro.exceptions import ReproError

__all__ = ["MODEL_BUILDERS", "available_burst_models", "get_burst_model"]


def _build_ma(**kwargs) -> BurstModel:
    from repro.bursts.models import MovingAverageModel

    return MovingAverageModel(**kwargs)


def _build_kleinberg(**kwargs) -> BurstModel:
    from repro.bursts.models import KleinbergModel

    return KleinbergModel(**kwargs)


def _build_elastic(**kwargs) -> BurstModel:
    from repro.bursts.models import ElasticModel

    return ElasticModel(**kwargs)


def _build_macd(**kwargs) -> BurstModel:
    from repro.bursts.models import MACDModel

    return MACDModel(**kwargs)


#: Builders keyed by registry name; model classes import lazily so the
#: registry stays cycle-free with the modules that consume it.
MODEL_BUILDERS: dict[str, Callable[..., BurstModel]] = {
    "ma": _build_ma,
    "kleinberg": _build_kleinberg,
    "elastic": _build_elastic,
    "macd": _build_macd,
}

#: Alternate spellings accepted by :func:`get_burst_model`.
_ALIASES = {
    "moving_average": "ma",
    "moving-average": "ma",
    "trailing": "ma",
    "automaton": "kleinberg",
    "swt": "elastic",
    "shifted_wavelet_tree": "elastic",
    "crossover": "macd",
}


def available_burst_models() -> tuple[str, ...]:
    """The registered model names, in registration order."""
    return tuple(MODEL_BUILDERS)


def get_burst_model(name, **kwargs) -> BurstModel:
    """Build the burst model registered under ``name``.

    Keyword arguments are forwarded to the model's constructor (``ma``:
    ``window``/``threshold_sigmas``; ``kleinberg``: ``scaling``/
    ``gamma``/``states``; ``elastic``: ``threshold``/``lengths``/
    ``offset``/``rate``; ``macd``: ``fast``/``slow``/``signal``).  An
    already-constructed :class:`BurstModel` passes through untouched
    (keyword arguments are then rejected), so call sites accept either a
    string or an instance.  Raises
    :class:`~repro.exceptions.ReproError` for an unknown name, listing
    what is available.
    """
    if isinstance(name, BurstModel):
        if kwargs:
            raise ReproError(
                "cannot apply keyword arguments to an already-constructed "
                f"model instance ({name.name!r})"
            )
        return name
    key = _ALIASES.get(name, name)
    try:
        builder = MODEL_BUILDERS[key]
    except KeyError:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise ReproError(
            f"unknown burst model {name!r}; available: {known}"
        ) from None
    return builder(**kwargs)
