"""Persistent shard worker pool: bit-identity, worker death, hygiene.

The contract under test (see ``docs/CONCURRENCY.md``): a pooled router
is indistinguishable from the serial scatter-gather — same candidates,
same answers bit for bit, same accounting invariant — except that the
per-shard generators run in long-lived worker processes.  Worker death
never hangs a gather and never changes an answer's *exactness*: the
dead shard is served by the parent's exhaustive fallback (degraded but
correct), and the worker is respawned from its spec for later requests.
Every exit path — success, exception, kill — must leave zero worker
processes and zero ``/dev/shm`` segments behind.
"""

import filecmp
import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import ShardWorkerPool, build_sharded, open_sharded
from repro.engine import search_many
from repro.exceptions import ReproError, WorkerCrashError
from repro.resilience.quarantine import quarantine_of
from repro.resilience.retry import active_policy, policy_context
from repro.storage.shm import SEGMENT_PREFIX

BACKENDS = ("flat", "vptree", "mvptree", "mtree", "rtree", "scan")
SHARD_COUNTS = (1, 2, 4, 7)


def _segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def as_pairs(neighbors):
    return [(n.distance, n.seq_id, n.name) for n in neighbors]


def assert_invariant(stats, size):
    assert (
        stats.candidates_pruned + stats.full_retrievals + stats.quarantined
        == size
    )


@pytest.fixture(autouse=True)
def no_leaked_state():
    """Every test must clean up its workers and its shared memory.

    Measured as a delta: when the whole suite runs with
    ``REPRO_SHARD_WORKERS`` set, earlier tests' unclosed routers leave
    daemon workers behind (they die with the interpreter), and those
    must not be billed to this test.
    """
    segments_before = _segments()
    workers_before = {proc.pid for proc in _live_workers()}
    yield
    leaked = _segments() - segments_before
    assert not leaked, f"leaked shared-memory segment(s): {sorted(leaked)}"
    new_workers = [
        proc for proc in _live_workers() if proc.pid not in workers_before
    ]
    assert not new_workers, f"leaked worker process(es): {new_workers}"


def _kill_and_wait(pool, shard):
    os.kill(pool.pids()[shard], signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while pool.pids()[shard] is not None:
        assert time.monotonic() < deadline, "worker did not die"
        time.sleep(0.01)


# ----------------------------------------------------------------------
# Bit-identity: pooled == serial scatter, every backend x shard count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_pool_agrees_with_serial_scatter(matrix, queries, backend, shards):
    serial = build_sharded(
        matrix, shards=shards, backend=backend, worker_pool=False
    )
    expected_knn, expected_stats = [], []
    for query in queries:
        neighbors, stats = serial.search(query, k=5)
        expected_knn.append(as_pairs(neighbors))
        expected_stats.append(stats)
    radius = expected_knn[0][-1][0] * 1.1
    expected_range = as_pairs(serial.range_search(queries[0], radius)[0])
    expected_batch = [
        as_pairs(neighbors)
        for neighbors, _ in search_many(serial, queries, k=5)
    ]
    serial.close()

    with build_sharded(
        matrix, shards=shards, backend=backend, worker_pool=True
    ) as router:
        assert router.worker_pool is not None
        for query, expected, serial_stats in zip(
            queries, expected_knn, expected_stats
        ):
            neighbors, stats = router.search(query, k=5)
            assert as_pairs(neighbors) == expected
            assert_invariant(stats, len(router))
            assert stats.full_retrievals == serial_stats.full_retrievals
            assert stats.candidates_pruned == serial_stats.candidates_pruned
        assert (
            as_pairs(router.range_search(queries[0], radius)[0])
            == expected_range
        )
        batch = [
            as_pairs(neighbors)
            for neighbors, _ in search_many(router, queries, k=5)
        ]
        assert batch == expected_batch


def test_pooled_build_writes_byte_identical_shards(matrix, queries, tmp_path):
    serial_dir = tmp_path / "serial"
    pooled_dir = tmp_path / "pooled"
    serial = build_sharded(
        matrix, shards=4, backend="flat",
        directory=serial_dir, worker_pool=False,
    )
    expected = [as_pairs(serial.search(q, k=3)[0]) for q in queries]
    serial.close()
    with build_sharded(
        matrix, shards=4, backend="flat",
        directory=pooled_dir, worker_pool=True,
    ) as router:
        assert [
            as_pairs(router.search(q, k=3)[0]) for q in queries
        ] == expected
    for name in sorted(os.listdir(serial_dir)):
        assert filecmp.cmp(
            serial_dir / name, pooled_dir / name, shallow=False
        ), f"{name} differs between serial and pooled builds"

    # ... and a pooled reopen serves the same answers from those files.
    with open_sharded(pooled_dir, worker_pool=True) as router:
        assert router.worker_pool is not None
        assert [
            as_pairs(router.search(q, k=3)[0]) for q in queries
        ] == expected


def test_env_switch_enables_pool(matrix, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "4")
    with build_sharded(matrix, shards=2, backend="flat") as router:
        assert router.worker_pool is not None
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "0")
    router = build_sharded(matrix, shards=2, backend="flat")
    assert router.worker_pool is None
    router.close()


# ----------------------------------------------------------------------
# Worker-kill drills
# ----------------------------------------------------------------------
def test_sigkill_mid_flight_degrades_and_stays_exact(matrix, queries):
    """SIGKILL with no respawn budget: degraded answer, invariant holds.

    The oracle is a *serial* router whose same shard's generator fails:
    the pooled degraded answer (exhaustive fallback for the dead shard,
    its failure noted on the router's quarantine) must match it bit for
    bit.
    """
    query = queries[0]
    with build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    ) as router:
        pool = router.worker_pool
        victim = next(s for s, pid in pool.pids().items() if pid)
        pool._respawns[victim] = pool._max_respawns  # no resurrection
        _kill_and_wait(pool, victim)
        neighbors, stats = router.search(query, k=5)
        assert stats.degraded
        assert_invariant(stats, len(router))
        assert quarantine_of(router).generator_failures >= 1
        got = as_pairs(neighbors)

    serial = build_sharded(
        matrix, shards=4, backend="flat", worker_pool=False
    )
    def boom(*args, **kwargs):
        raise ReproError("injected generator failure")
    serial._shards[victim].knn_candidates = boom
    expected, expected_stats = serial.search(query, k=5)
    serial.close()
    assert expected_stats.degraded
    assert got == as_pairs(expected)


def test_sigkill_then_respawn_serves_clean(matrix, queries):
    query = queries[0]
    with build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    ) as router:
        pool = router.worker_pool
        clean = as_pairs(router.search(query, k=5)[0])
        victim = next(s for s, pid in pool.pids().items() if pid)
        old_pid = pool.pids()[victim]
        _kill_and_wait(pool, victim)
        neighbors, stats = router.search(query, k=5)
        # Death was noticed between requests: the worker is rebuilt
        # from its spec and the answer is clean, not degraded.
        assert not stats.degraded
        assert as_pairs(neighbors) == clean
        assert pool.respawn_count(victim) == 1
        assert pool.pids()[victim] not in (None, old_pid)
        assert all(pool.heartbeat().values())


def test_sigkill_during_batch_falls_back_and_stays_exact(matrix, queries):
    expected = None
    serial = build_sharded(
        matrix, shards=4, backend="flat", worker_pool=False
    )
    expected = [
        as_pairs(neighbors)
        for neighbors, _ in search_many(serial, queries, k=5)
    ]
    serial.close()
    with build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    ) as router:
        pool = router.worker_pool
        victim = next(s for s, pid in pool.pids().items() if pid)
        _kill_and_wait(pool, victim)
        results = search_many(router, queries, k=5)
        # Whether the batch hit the dead worker (per-query fallback) or
        # a respawned one, the answers are the serial answers.
        assert [as_pairs(neighbors) for neighbors, _ in results] == expected


def test_degrade_disabled_raises_worker_crash(matrix, queries):
    with build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    ) as router:
        pool = router.worker_pool
        victim = next(s for s, pid in pool.pids().items() if pid)
        pool._respawns[victim] = pool._max_respawns
        _kill_and_wait(pool, victim)
        with policy_context(active_policy().with_(degrade=False)):
            with pytest.raises(WorkerCrashError):
                router.search(queries[0], k=5)


def test_exhausted_budget_stays_degraded(matrix, queries):
    with build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    ) as router:
        pool = router.worker_pool
        victim = next(s for s, pid in pool.pids().items() if pid)
        pool._respawns[victim] = pool._max_respawns
        _kill_and_wait(pool, victim)
        for _ in range(2):
            _, stats = router.search(queries[0], k=5)
            assert stats.degraded
            assert_invariant(stats, len(router))
        assert pool.respawn_count(victim) == pool._max_respawns
        assert pool.heartbeat()[victim] is False


# ----------------------------------------------------------------------
# Lifecycle hygiene
# ----------------------------------------------------------------------
def test_close_reaps_workers_and_segments(matrix):
    router = build_sharded(
        matrix, shards=4, backend="flat", worker_pool=True
    )
    pool = router.worker_pool
    pids = [pid for pid in pool.pids().values() if pid]
    assert pids and _segments()
    router.close()
    assert pool.closed
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)  # ESRCH: process fully reaped
    router.close()  # idempotent
    with pytest.raises(ReproError):
        pool.scatter_knn(matrix[0], 1)


def test_failed_warmup_tears_everything_down(matrix, tmp_path):
    """A worker that cannot build must not orphan its siblings."""
    directory = tmp_path / "shards"
    build_sharded(
        matrix, shards=4, backend="flat",
        directory=directory, worker_pool=False,
    ).close()
    victims = sorted(directory.glob("shard-*.pages"))
    original = victims[1].read_bytes()
    victims[1].write_bytes(original[: len(original) // 2])  # torn file
    workers_before = {proc.pid for proc in _live_workers()}
    with pytest.raises(ReproError):
        open_sharded(directory, worker_pool=True)
    assert not [
        proc for proc in _live_workers() if proc.pid not in workers_before
    ]


def test_spec_size_mismatch_fails_warmup(matrix):
    from repro.cluster.pool import ShardSpec

    spec = ShardSpec(
        shard=0,
        backend="flat",
        size=len(matrix) + 7,  # lie about the population
        sequence_length=matrix.shape[1],
        obs_name="index.sharded.shard00",
        store_path="/nonexistent/path.pages",
    )
    pool = ShardWorkerPool([spec], None, shard_count=1)
    with pytest.raises(ReproError):
        pool.start()
    assert pool.closed


def _live_workers():
    import multiprocessing

    return [
        child
        for child in multiprocessing.active_children()
        if child.name.startswith("repro-shard-worker")
    ]
