"""Incremental period detection: period-*change* alerts for streams.

The batch :class:`~repro.periods.detector.PeriodDetector` answers "what
are the significant periods of this sequence?".  A stream wants the
derivative of that question: *when does the answer change?*  A query
acquiring a weekly rhythm (or losing one — the paper's 9/11 case study,
where air-travel queries' weekly periodicity collapses after the event)
is exactly as alert-worthy as a burst.

:class:`OnlinePeriodDetector` maintains a sliding
:class:`~repro.spectral.online.OnlinePeriodogram` and, per pushed day,
re-evaluates the detector's significance rule.  Cost is kept streaming-
grade by a two-tier scheme:

1. every push evaluates the rule against the periodogram's
   **recurrence-grade** powers (O(n), no FFT) — drift-bounded by the
   sliding periodogram's energy guard, and bit-exact during the growing
   phase and right after refreshes;
2. only when that cheap evaluation *disagrees with the currently
   confirmed period set* does the detector run the **authoritative**
   batch detection on the exact window spectrum (O(n log n)) — so quiet
   days never pay for an FFT, and every alert carries a full,
   batch-identical :class:`~repro.periods.detector
   .PeriodDetectionResult`.

A drift-induced false disagreement costs one exact recheck and raises
no alert; a real change is confirmed exactly before alerting.  Alerts
report both directions (periods gained and periods lost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.periods.detector import (
    DetectedPeriod,
    PeriodDetectionResult,
    PeriodDetector,
)
from repro.spectral.online import OnlinePeriodogram

__all__ = ["PeriodChange", "OnlinePeriodDetector"]

#: Below this many samples the spectrum is all edge effects; the batch
#: detector itself refuses fewer than 4.
_MIN_SAMPLES = 8


@dataclass(frozen=True)
class PeriodChange:
    """One confirmed change in a stream's significant period set.

    Attributes
    ----------
    day:
        0-based index of the day whose arrival changed the set.
    gained / lost:
        The periods that entered / left the significant set, as
        :class:`DetectedPeriod` records (``lost`` entries carry their
        last known power).
    result:
        The full batch-identical detection over the current window —
        the state of the stream's periodicity at alert time.
    """

    day: int
    gained: tuple[DetectedPeriod, ...]
    lost: tuple[DetectedPeriod, ...]
    result: PeriodDetectionResult


class OnlinePeriodDetector:
    """Sliding-window period monitor raising change alerts.

    Parameters
    ----------
    window:
        Spectral analysis window (days).  128 covers the paper's weekly
        and monthly rhythms with a quarter year of memory.
    confidence / min_index / max_period:
        Forwarded to the underlying :class:`PeriodDetector`
        (``interpolate`` stays off: the change test compares bin
        indexes, which interpolation does not move).
    min_samples:
        Days to observe before the first evaluation; damps the churn of
        near-empty spectra.
    """

    def __init__(
        self,
        window: int = 128,
        confidence: float = 0.9999,
        min_index: int = 1,
        max_period: float | None = None,
        min_samples: int = _MIN_SAMPLES,
    ) -> None:
        if min_samples < 4:
            raise ValueError(
                f"min_samples must be >= 4, got {min_samples}"
            )
        self._detector = PeriodDetector(
            confidence=confidence,
            min_index=min_index,
            max_period=max_period,
            interpolate=False,
        )
        self._pgram = OnlinePeriodogram(window)
        self.window = self._pgram.window
        self.min_samples = int(min_samples)
        self._indexes: frozenset[int] = frozenset()
        self._known: dict[int, DetectedPeriod] = {}
        self._result: PeriodDetectionResult | None = None

    def __len__(self) -> int:
        return self._pgram.size

    @property
    def size(self) -> int:
        """Number of days pushed so far."""
        return self._pgram.size

    @property
    def significant_indexes(self) -> frozenset[int]:
        """The currently confirmed significant half-spectrum bins."""
        return self._indexes

    @property
    def current(self) -> PeriodDetectionResult | None:
        """The last confirmed detection (None before ``min_samples``)."""
        return self._result

    def periods(self) -> tuple[DetectedPeriod, ...]:
        """The confirmed significant periods, strongest first."""
        if self._result is None:
            return ()
        return self._result.periods

    def push(self, day: int, value) -> list[PeriodChange]:
        """Absorb day ``day``; returns the change alerts it raised.

        Days must arrive densely in order (``day == size``), mirroring
        the burst protocol's contract.
        """
        day = int(day)
        if day != self._pgram.size:
            raise ValueError(
                f"days must arrive in order: expected day "
                f"{self._pgram.size}, got {day}"
            )
        self._pgram.push(value)
        if self._pgram.size < self.min_samples:
            return []
        cheap = self._detector.significant_indexes(
            self._pgram.power, self._pgram.n
        )
        if cheap == self._indexes and self._result is not None:
            return []  # quiet day: no FFT spent
        # Disagreement (or first evaluation): confirm on the exact
        # window spectrum before believing it.
        result = self._detector.detect(self._pgram.values())
        confirmed = frozenset(p.index for p in result.periods)
        by_index = {p.index: p for p in result.periods}
        previous, self._result = self._indexes, result
        if confirmed == previous:
            self._known.update(by_index)  # keep "last known" powers fresh
            obs.add("periods.online_false_changes")
            return []  # recurrence drift or already-confirmed state
        gained = tuple(
            sorted(
                (by_index[i] for i in confirmed - previous), reverse=True
            )
        )
        lost = tuple(
            sorted(
                (self._known[i] for i in previous - confirmed),
                reverse=True,
            )
        )
        self._indexes = confirmed
        self._known.update(by_index)
        for index in previous - confirmed:
            self._known.pop(index, None)
        obs.add("periods.online_changes")
        return [
            PeriodChange(day=day, gained=gained, lost=lost, result=result)
        ]

    def extend(self, values) -> list[PeriodChange]:
        """Push a whole block of days; returns every alert raised."""
        alerts: list[PeriodChange] = []
        for value in np.asarray(values, dtype=np.float64):
            alerts.extend(self.push(self._pgram.size, value))
        return alerts
