"""Euclidean distance kernels with early abandoning.

Both the linear-scan baseline and the index's verification phase compare a
query against uncompressed sequences and "perform an early termination of
the Euclidean distance, when the running sum exceeded the best-so-far
match" (section 7.4).  :func:`euclidean_early_abandon` implements that in
chunks, so the common case (abandon after the first chunk) costs a
fraction of a full comparison while staying vectorised.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SeriesMismatchError

__all__ = ["euclidean", "euclidean_early_abandon", "distances_to_query"]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise SeriesMismatchError(
            f"cannot compare vectors of shapes {a.shape} and {b.shape}"
        )
    return float(np.linalg.norm(a - b))


def euclidean_early_abandon(
    a: np.ndarray,
    b: np.ndarray,
    cutoff: float,
    chunk: int = 64,
) -> float:
    """Euclidean distance, abandoned once it provably exceeds ``cutoff``.

    Returns the exact distance when it is ``< cutoff`` and ``inf``
    otherwise.  ``chunk`` trades per-chunk numpy overhead against wasted
    arithmetic after the cutoff is crossed.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise SeriesMismatchError(
            f"cannot compare vectors of shapes {a.shape} and {b.shape}"
        )
    if not math.isfinite(cutoff):
        return euclidean(a, b)
    cutoff_sq = cutoff * cutoff
    total = 0.0
    for start in range(0, a.size, chunk):
        diff = a[start : start + chunk] - b[start : start + chunk]
        total += float(np.dot(diff, diff))
        if total >= cutoff_sq:
            return float("inf")
    return math.sqrt(total)


def distances_to_query(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Distances from every row of ``matrix`` to ``query``, vectorised."""
    matrix = np.asarray(matrix, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != query.size:
        raise SeriesMismatchError(
            f"matrix of shape {matrix.shape} does not match query of "
            f"length {query.size}"
        )
    diff = matrix - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
