"""Verify-kernel throughput: blocked vs scalar, mmap vs buffered reads.

The structure-of-arrays refactor (ISSUE 7) moved the exact-verification
hot path from a per-row Python loop to block-vectorised bulk fetches +
one chunk-accumulated einsum pass per block.  This benchmark measures
that path in isolation — the linear-scan backend turns every member
into a candidate, so refinement *is* the whole query — and the mmap
read path against the buffered one on the same page-store file.

Acceptance bar: blocked verification beats the scalar reference loop by
>= 2x at the default workload on hosts with >= 2 CPUs; on smaller hosts
or smoke workloads the measurement is still recorded (with the honest
``cpu_count``) and the gate skips with a reason.  Results must stay
bit-identical — ids, float distances, and every SearchStats counter.

The measured configuration appends to the ``BENCH_verify.json`` trend at
the repo root (one timestamped entry per run).  ``REPRO_VERIFY_BENCH_SIZE``
(``"rows,length"``) selects a smoke-scale workload for CI.
"""

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from _bench_io import REPO_ROOT, append_trend, regression_delta
from repro.engine import get_index
from repro.evaluation import format_table
from repro.storage.pagestore import SequencePageStore

BENCH_JSON = REPO_ROOT / "BENCH_verify.json"

#: Default workload: 2^12 sequences of length 512 (the gate scale).
DEFAULT_SIZE = (4096, 512)

#: Workload override for CI smoke runs, as ``"rows,length"``.
SIZE_ENV = "REPRO_VERIFY_BENCH_SIZE"


def _workload_size():
    raw = os.environ.get(SIZE_ENV, "").strip()
    if not raw:
        return DEFAULT_SIZE
    rows, length = (int(part) for part in raw.split(","))
    return rows, length


def _snap(results):
    return [
        (
            [(h.distance, h.seq_id) for h in hits],
            dataclasses.asdict(stats),
        )
        for hits, stats in results
    ]


def test_verify_kernel_throughput(report, monkeypatch, tmp_path):
    rows, length = _workload_size()
    rng = np.random.default_rng(23)
    matrix = rng.normal(size=(rows, length))
    queries = rng.normal(size=(8, length))
    k = 5
    cpus = os.cpu_count() or 1

    # The linear scan verifies every member: refinement dominates, so
    # the scalar/blocked ratio isolates the verify kernel itself.
    index = get_index("scan", matrix)

    def run(block):
        monkeypatch.setenv("REPRO_VERIFY_BLOCK", str(block))
        started = time.perf_counter()
        results = [index.search(query, k=k) for query in queries]
        return time.perf_counter() - started, _snap(results)

    run(0)  # warm caches and allocator before timing
    scalar_wall, scalar_snap = run(0)
    blocked_wall, blocked_snap = run(256)
    monkeypatch.delenv("REPRO_VERIFY_BLOCK", raising=False)

    # Bit-identity first: a fast wrong kernel is worthless.
    assert blocked_snap == scalar_snap

    # mmap vs buffered: one cold bulk read of every sequence through
    # each physical path, same file, cache disabled, CRC checks on.
    path = tmp_path / "verify_bench.dat"
    store = SequencePageStore(path, length, cache_bytes=0)
    store.append_matrix(matrix)
    store.close()
    ids = list(range(rows))

    def bulk_read(use_mmap):
        reopened = SequencePageStore.open(
            path, cache_bytes=0, use_mmap=use_mmap
        )
        started = time.perf_counter()
        block = reopened.read_many(ids)
        wall = time.perf_counter() - started
        reopened.close()
        return wall, block

    buffered_wall, buffered_rows = bulk_read(False)
    mmap_wall, mmap_rows = bulk_read(True)
    assert mmap_rows.tobytes() == buffered_rows.tobytes()

    record = {
        "bench": "verify_kernel",
        "database_size": rows,
        "sequence_length": length,
        "queries": len(queries),
        "k": k,
        "cpu_count": cpus,
        "scalar_verify_seconds": round(scalar_wall, 4),
        "blocked_verify_seconds": round(blocked_wall, 4),
        "verify_speedup": round(scalar_wall / blocked_wall, 2),
        "buffered_read_seconds": round(buffered_wall, 4),
        "mmap_read_seconds": round(mmap_wall, 4),
        "mmap_read_ratio": round(buffered_wall / mmap_wall, 2),
    }
    fingerprint = {
        "database_size": rows,
        "sequence_length": length,
        "cpu_count": cpus,
    }
    delta = regression_delta(
        BENCH_JSON, record, "verify_speedup", match=fingerprint
    )
    append_trend(BENCH_JSON, record)
    trend_line = (
        "first recorded run at this configuration"
        if delta is None
        else f"verify_speedup {delta:+.1%} vs previous comparable run"
    )

    report(
        format_table(
            ("path", "wall s", "speedup"),
            [
                ("scalar verify loop", scalar_wall, 1.0),
                ("blocked verify", blocked_wall, record["verify_speedup"]),
                ("buffered read_many", buffered_wall, 1.0),
                ("mmap read_many", mmap_wall, record["mmap_read_ratio"]),
            ],
            title=(
                f"verify kernel, {rows} seqs x {length} days, "
                f"{len(queries)} queries, k={k}, {cpus} cpus"
            ),
            digits=3,
        ),
        trend_line,
        f"BENCH {json.dumps(record)}",
    )

    if (rows, length) != DEFAULT_SIZE:
        pytest.skip(
            f"verify 2x gate applies at the default {DEFAULT_SIZE} workload; "
            f"ran smoke scale {rows}x{length} (entry recorded)"
        )
    if cpus < 2:
        pytest.skip(
            f"verify 2x gate needs >= 2 CPUs for stable timing; host has "
            f"{cpus} (entry recorded with honest cpu_count)"
        )
    assert record["verify_speedup"] >= 2.0
