"""Tests for the relational table substrate."""

import pytest

from repro.exceptions import KeyNotFoundError, SchemaError
from repro.storage import Table, eq, ge, gt, le, lt


@pytest.fixture
def bursts():
    """A small burst table shaped like the one in section 6.2."""
    table = Table("bursts", ["sequence_id", "start", "end", "avg"])
    rows = [
        (0, 10, 20, 1.5),
        (0, 40, 45, 2.0),
        (1, 15, 25, 3.0),
        (2, 100, 130, 0.8),
        (3, 18, 19, 5.0),
    ]
    for row in rows:
        table.insert(*row)
    return table


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", ["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_unknown_column_in_predicate(self, bursts):
        with pytest.raises(SchemaError):
            bursts.select([eq("bogus", 1)])

    def test_index_on_unknown_column(self, bursts):
        with pytest.raises(SchemaError):
            bursts.create_index("bogus")


class TestInsert:
    def test_positional_and_named_equivalent(self):
        table = Table("t", ["a", "b"])
        r1 = table.insert(1, 2)
        r2 = table.insert(b=4, a=3)
        assert table.row(r1).data == {"a": 1, "b": 2}
        assert table.row(r2).data == {"a": 3, "b": 4}

    def test_mixed_styles_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(SchemaError):
            table.insert(1, b=2)

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(SchemaError):
            table.insert(1)

    def test_missing_named_column_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(SchemaError):
            table.insert(a=1)
        with pytest.raises(SchemaError):
            table.insert(a=1, b=2, c=3)

    def test_row_ids_are_dense(self, bursts):
        assert [r.row_id for r in bursts.all_rows()] == [0, 1, 2, 3, 4]


class TestDelete:
    def test_delete_removes_row(self, bursts):
        bursts.delete(2)
        assert len(bursts) == 4
        with pytest.raises(KeyNotFoundError):
            bursts.row(2)

    def test_delete_missing_raises(self, bursts):
        with pytest.raises(KeyNotFoundError):
            bursts.delete(99)

    def test_delete_maintains_index(self, bursts):
        bursts.create_index("start")
        bursts.delete(0)
        hits = bursts.select([eq("start", 10)])
        assert hits == []


class TestUpdate:
    def test_update_changes_cells(self, bursts):
        bursts.update(0, avg=9.9)
        assert bursts.row(0)["avg"] == 9.9
        assert bursts.row(0)["start"] == 10  # untouched columns survive

    def test_update_maintains_indexes(self, bursts):
        bursts.create_index("start")
        bursts.update(0, start=77)
        assert [r.row_id for r in bursts.select([eq("start", 77)])] == [0]
        assert bursts.select([eq("start", 10)]) == []

    def test_update_unchanged_indexed_value_is_safe(self, bursts):
        bursts.create_index("start")
        bursts.update(0, start=10, avg=2.5)  # same start
        assert [r.row_id for r in bursts.select([eq("start", 10)])] == [0]

    def test_update_missing_row(self, bursts):
        with pytest.raises(KeyNotFoundError):
            bursts.update(99, avg=1.0)

    def test_update_unknown_column(self, bursts):
        with pytest.raises(SchemaError):
            bursts.update(0, bogus=1.0)


class TestSelect:
    def test_no_predicates_returns_all(self, bursts):
        assert len(bursts.select()) == 5

    def test_conjunction(self, bursts):
        # Fig. 18: bursts overlapping the query burst [start=17, end=22].
        hits = bursts.select([lt("start", 22), gt("end", 17)])
        assert sorted(r["sequence_id"] for r in hits) == [0, 1, 3]

    def test_each_operator(self, bursts):
        assert len(bursts.select([eq("sequence_id", 0)])) == 2
        assert len(bursts.select([le("start", 15)])) == 2
        assert len(bursts.select([ge("end", 45)])) == 2
        assert len(bursts.select([gt("avg", 2.0)])) == 2
        assert len(bursts.select([lt("avg", 1.0)])) == 1

    def test_index_and_scan_agree(self, bursts):
        predicates = [lt("start", 50), gt("end", 18)]
        scanned = {r.row_id for r in bursts.select(predicates)}
        bursts.create_index("start")
        bursts.create_index("end")
        probed = {r.row_id for r in bursts.select(predicates)}
        assert scanned == probed
        assert bursts.index_probe_count >= 1

    def test_index_backfill_covers_prior_rows(self, bursts):
        bursts.create_index("end")
        hits = bursts.select([ge("end", 100)])
        assert [r["sequence_id"] for r in hits] == [2]

    def test_planner_counts(self, bursts):
        bursts.select([eq("avg", 1.5)])
        assert bursts.scan_count == 1
        bursts.create_index("avg")
        bursts.select([eq("avg", 1.5)])
        assert bursts.index_probe_count == 1

    def test_duplicate_index_keys(self):
        table = Table("t", ["k", "v"])
        table.create_index("k")
        for i in range(10):
            table.insert(k=7, v=i)
        hits = table.select([eq("k", 7)])
        assert sorted(r["v"] for r in hits) == list(range(10))

    def test_create_index_twice_is_noop(self, bursts):
        bursts.create_index("start")
        bursts.create_index("start")
        assert bursts.indexed_columns == ("start",)


class TestRow:
    def test_getitem(self, bursts):
        row = bursts.row(0)
        assert row["start"] == 10
        with pytest.raises(SchemaError):
            row["nope"]
