"""Linear-scan nearest-neighbour search — the paper's baseline (fig. 23).

Scans every uncompressed sequence, with the early-abandoning optimisation
both contenders in the paper use.  When constructed over a sequence store,
every comparison first *reads* the sequence, charging the store's I/O
counters — which is how the fig. 23 experiment measures the scan's
dominant cost without 2004-era hardware.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro import obs
from repro.exceptions import SeriesMismatchError
from repro.index.distance import euclidean_early_abandon
from repro.index.results import Neighbor, SearchStats
from repro.timeseries.preprocessing import as_float_array

__all__ = ["LinearScanIndex"]


class LinearScanIndex:
    """Brute-force k-NN over uncompressed sequences.

    Parameters
    ----------
    matrix:
        The database as a ``(count, n)`` matrix.  Also used to size the
        result metadata when a store is supplied.
    names:
        Optional per-sequence names for the results.
    store:
        Optional sequence store (:class:`repro.storage.SequencePageStore`
        or :class:`repro.storage.MemorySequenceStore`).  When given, every
        comparison fetches the sequence through the store so its I/O is
        accounted; when omitted the matrix rows are used directly.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        names: Sequence[str] | None = None,
        store=None,
    ) -> None:
        self._matrix = np.asarray(matrix, dtype=np.float64)
        if self._matrix.ndim != 2:
            raise SeriesMismatchError(
                f"expected a 2-D database matrix, got shape {self._matrix.shape}"
            )
        if names is not None and len(names) != len(self._matrix):
            raise SeriesMismatchError("names must align with the matrix rows")
        self._names = tuple(names) if names is not None else None
        self._store = store
        if store is not None and len(store) == 0:
            store.append_matrix(self._matrix)

    def __len__(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def store(self):
        return self._store

    def _fetch(self, seq_id: int) -> np.ndarray:
        if self._store is not None:
            return self._store.read(seq_id)
        return self._matrix[seq_id]

    def _name(self, seq_id: int) -> str | None:
        return self._names[seq_id] if self._names is not None else None

    def search(
        self, query, k: int = 1
    ) -> tuple[list[Neighbor], SearchStats]:
        """The ``k`` nearest neighbours of ``query``, with cost statistics."""
        query = as_float_array(query)
        if query.size != self._matrix.shape[1]:
            raise SeriesMismatchError(
                f"query length {query.size} does not match database "
                f"sequences of length {self._matrix.shape[1]}"
            )
        if not 1 <= k <= len(self):
            raise ValueError(f"k must be in [1, {len(self)}], got {k}")

        stats = SearchStats()
        with obs.span("index.scan.search"):
            # Max-heap of the k best (negated) distances seen so far.
            best: list[tuple[float, int]] = []
            cutoff = float("inf")
            for seq_id in range(len(self)):
                candidate = self._fetch(seq_id)
                stats.full_retrievals += 1
                distance = euclidean_early_abandon(query, candidate, cutoff)
                if distance == float("inf"):
                    stats.early_abandons += 1
                    continue  # abandoned: provably not among the k best
                heapq.heappush(best, (-distance, seq_id))
                if len(best) > k:
                    heapq.heappop(best)
                if len(best) == k:
                    cutoff = -best[0][0]
        stats.publish("index.scan.search")
        neighbors = sorted(
            Neighbor(-neg, seq_id, self._name(seq_id)) for neg, seq_id in best
        )
        return neighbors, stats
