"""Ablation A5: full query vs a compressed query in the bounds.

A deliberate design decision of the paper: "in our algorithms we use all
the query coefficients in the new projected orthogonal space", which "
further improves the bounds".  The ablation zeroes every query
coefficient outside the query's own best k (what a compressed-query
scheme would know) and measures how much lower-bound tightness that
costs, at identical storage for the database objects.
"""

import numpy as np

from repro.bounds import bounds_for
from repro.compression import StorageBudget
from repro.evaluation import format_table
from repro.spectral import Spectrum, best_indexes


def compressed_query_lb(spectrum: Spectrum, sketch, k: int) -> float:
    """The LB a compressed-query scheme can certify.

    When both sides are compressed, only coefficients stored by *both*
    representations can contribute exactly-known distance (the classic
    two-sketch GEMINI-style bound): the scheme knows the query's k best
    coefficients and nothing else, so any sketch position outside that
    set contributes nothing certain.
    """
    query_kept = set(best_indexes(spectrum, k).tolist())
    mask = np.array([p in query_kept for p in sketch.positions], dtype=bool)
    if not mask.any():
        return 0.0
    diff = (
        np.abs(
            spectrum.coefficients[sketch.positions[mask]]
            - sketch.coefficients[mask]
        )
        ** 2
    )
    return float(np.sqrt(np.dot(sketch.weights[mask], diff)))


def test_ablation_full_query(database_matrix, report, benchmark):
    budget = StorageBudget(16)
    compressor = budget.compressor("best_min_error")
    rng = np.random.default_rng(5)
    pairs = [
        tuple(rng.choice(2048, size=2, replace=False)) for _ in range(80)
    ]

    sums = {"full": 0.0, "full_gemini": 0.0, "compressed": 0.0, "true": 0.0}
    for q_row, t_row in pairs:
        q = database_matrix[q_row]
        t = database_matrix[t_row]
        spectrum = Spectrum.from_series(q)
        sketch = compressor.compress(Spectrum.from_series(t))
        sums["full"] += bounds_for(spectrum, sketch).lower
        sums["full_gemini"] += bounds_for(spectrum, sketch, "gemini").lower
        sums["compressed"] += compressed_query_lb(
            spectrum, sketch, budget.best_k
        )
        sums["true"] += float(np.linalg.norm(q - t))

    gain = 100 * (sums["full"] - sums["compressed"]) / sums["compressed"]
    report(
        format_table(
            ("query representation / bound", "cumulative LB"),
            [
                ("true euclidean", sums["true"]),
                ("full query, BestMinError (paper)", sums["full"]),
                ("full query, stored positions only", sums["full_gemini"]),
                ("compressed query, common positions", sums["compressed"]),
            ],
            title="ablation A5: what the full query buys",
        ),
        f"keeping the full query tightens the cumulative LB by {gain:.1f}% "
        f"over a both-sides-compressed scheme",
    )
    # Full-query exact part dominates the common-position bound, and the
    # omitted-energy terms add more on top.
    assert sums["full_gemini"] >= sums["compressed"] - 1e-9
    assert sums["full"] > sums["compressed"]
    assert gain > 1.0

    q_spec = Spectrum.from_series(database_matrix[0])
    sketch = compressor.compress(Spectrum.from_series(database_matrix[1]))
    benchmark(bounds_for, q_spec, sketch)
