#!/usr/bin/env python
"""Quickstart: the whole paper in sixty lines.

Generates a year of synthetic MSN-style query logs, then runs each of the
paper's three capabilities on it:

1. **similarity search** — find queries whose demand curve looks like
   'cinema', through the compressed VP-tree index;
2. **period detection** — recover the weekly/monthly/none periodicities
   of fig. 13 automatically;
3. **burst discovery** — detect the Halloween burst of fig. 14 and run a
   query-by-burst for 'christmas' (fig. 19).

Run:  python examples/quickstart.py

Set ``REPRO_OBS_JSON=/path/to/run.jsonl`` to record every metric and
timing span of the run as JSON lines (see docs/OBSERVABILITY.md).
"""

import os

from repro import (
    BurstDatabase,
    BurstDetector,
    QueryLogGenerator,
    compact_bursts,
    detect_periods,
    get_index,
)
from repro.tools import burst_chart, line_chart


def main() -> None:
    print("=== generating one year of synthetic query logs (2002) ===")
    generator = QueryLogGenerator(seed=0)
    collection = generator.catalog_collection()
    standardized = collection.standardize()
    print(f"{len(collection)} queries x {collection.series_length} days\n")

    # ------------------------------------------------------------------
    # 1. Similarity search over compressed representations
    # ------------------------------------------------------------------
    print("=== similarity search: which queries look like 'cinema'? ===")
    index = get_index(
        "vptree",
        standardized.as_matrix(),
        names=list(standardized.names),
        seed=0,
    )
    neighbors, stats = index.search(standardized["cinema"].values, k=4)
    for neighbor in neighbors:
        if neighbor.name != "cinema":
            print(f"  {neighbor.name:<24s} distance {neighbor.distance:7.2f}")
    print(
        f"  (index examined {stats.full_retrievals} of {len(collection)} "
        f"uncompressed sequences)\n"
    )

    # ------------------------------------------------------------------
    # 2. Automatic period detection (fig. 13)
    # ------------------------------------------------------------------
    print("=== significant periods (fig. 13) ===")
    for name in ("cinema", "full moon", "nordstrom", "dudley moore"):
        result = detect_periods(standardized[name])
        if result.periods:
            periods = ", ".join(f"{p.period:.2f}d" for p in result.top(3))
        else:
            periods = "none (threshold avoided the false alarm)"
        print(f"  {name:<16s} -> {periods}")
    print()

    # ------------------------------------------------------------------
    # 3. Burst detection and query-by-burst (figs. 14, 19)
    # ------------------------------------------------------------------
    print("=== burst detection: 'halloween' (fig. 14) ===")
    halloween = collection["halloween"]
    annotation = BurstDetector.long_term().detect(halloween.standardize())
    print(burst_chart(halloween, annotation.mask))
    for burst in compact_bursts(halloween.standardize(), annotation):
        print(
            f"  burst {burst.start_date(halloween.start)} .. "
            f"{burst.end_date(halloween.start)} (avg {burst.average:+.2f})"
        )
    print()

    print("=== query-by-burst: what bursts together with 'christmas'? ===")
    burst_db = BurstDatabase()
    burst_db.add_collection(collection)
    for match in burst_db.query("christmas", top=4):
        print(f"  {match.name:<32s} BSim {match.similarity:6.2f}")
    print()

    print("=== demand curve of 'easter' (fig. 2) ===")
    print(line_chart(collection["easter"]))


def run() -> None:
    """Run ``main``, observed when ``REPRO_OBS_JSON`` is set."""
    obs_json = os.environ.get("REPRO_OBS_JSON")
    if not obs_json:
        main()
        return
    from repro import obs

    with obs.observed() as registry:
        main()
    obs.write_json_lines(registry, obs_json)
    print(f"observability records written to {obs_json}")


if __name__ == "__main__":
    run()
