"""Real-time burst alerting over the live tier.

The batch pipeline answers "which days of this series were bursty?"
after the fact; a streaming store can do better and say so *as the day
completes*.  :class:`LiveBurstMonitor` keeps one
:class:`~repro.bursts.streaming.OnlineBurstDetector` per live series,
feeds it every completed day (full-series adds feed their whole
history; each rollover feeds the day it just closed), and raises a
:class:`BurstAlert` on the *rising edge* — the first bursting day after
a quiet one — so a multi-day burst alerts once, not daily.

Alerts accumulate in a drain buffer (``stream.burst_alerts`` counts
them); :meth:`LiveBurstMonitor.drain` hands them over and clears it.
The detectors are exactly the batch detector run incrementally, so an
alert here is bit-for-bit the decision
:class:`~repro.bursts.detection.BurstDetector` would have made on the
same prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bursts.streaming import OnlineBurstDetector

__all__ = ["BurstAlert", "LiveBurstMonitor"]


@dataclass(frozen=True)
class BurstAlert:
    """One rising-edge burst notification."""

    name: str  #: the bursting series
    day: int  #: 0-based index of the day in the series' observed stream
    value: float  #: the raw count of the day that tripped the cutoff
    smoothed: float  #: its moving average, the value actually compared
    cutoff: float  #: the threshold at alert time


class LiveBurstMonitor:
    """Per-series online burst detection with edge-triggered alerts.

    Parameters
    ----------
    window / threshold_sigmas:
        Forwarded to every per-series
        :class:`~repro.bursts.streaming.OnlineBurstDetector`.
    """

    def __init__(self, window: int = 7, threshold_sigmas: float = 1.5) -> None:
        self.window = int(window)
        self.threshold_sigmas = float(threshold_sigmas)
        self._detectors: dict[str, OnlineBurstDetector] = {}
        self._bursting: dict[str, bool] = {}
        self._alerts: list[BurstAlert] = []

    def __len__(self) -> int:
        return len(self._detectors)

    def detector(self, name: str) -> OnlineBurstDetector | None:
        """The per-series detector, or ``None`` if never observed."""
        return self._detectors.get(name)

    def observe(self, name: str, value: float) -> BurstAlert | None:
        """Feed one completed day; returns the alert if one fired."""
        detector = self._detectors.get(name)
        if detector is None:
            detector = OnlineBurstDetector(self.window, self.threshold_sigmas)
            self._detectors[name] = detector
            self._bursting[name] = False
        bursting = detector.push(value)
        alert = None
        if bursting and not self._bursting[name]:
            alert = BurstAlert(
                name=name,
                day=len(detector) - 1,
                value=float(value),
                smoothed=float(detector.smoothed[-1]),
                cutoff=detector.cutoff,
            )
            self._alerts.append(alert)
            obs.add("stream.burst_alerts")
        self._bursting[name] = bursting
        return alert

    def observe_series(self, name: str, values) -> list[BurstAlert]:
        """Feed a whole history (e.g. a full-series add), day by day."""
        alerts = []
        for value in values:
            alert = self.observe(name, float(value))
            if alert is not None:
                alerts.append(alert)
        return alerts

    def forget(self, name: str) -> None:
        """Drop a series' detector (after a tombstone)."""
        self._detectors.pop(name, None)
        self._bursting.pop(name, None)

    def drain(self) -> list[BurstAlert]:
        """All alerts raised since the last drain; clears the buffer."""
        alerts, self._alerts = self._alerts, []
        return alerts
