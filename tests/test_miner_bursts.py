"""The miner's pluggable burst surface: leaderboard and region queries."""

import datetime as dt

import pytest

from repro.bursts.models import MACDModel
from repro.bursts.protocol import BurstRegion
from repro.datagen import QueryLogGenerator
from repro.exceptions import ReproError, UnknownQueryError
from repro.miner import QueryLogMiner

_NAMES = (
    "halloween",
    "christmas",
    "christmas gifts",
    "gingerbread men",
    "easter",
    "cinema",
    "dudley moore",
)


@pytest.fixture(scope="module")
def generator():
    return QueryLogGenerator(seed=0, start=dt.date(2002, 1, 1), days=365)


def _build(generator, names=_NAMES, **kwargs):
    miner = QueryLogMiner(start=dt.date(2002, 1, 1), days=365, **kwargs)
    for name in names:
        miner.add_series(generator.series(name))
    return miner


@pytest.fixture(scope="module")
def miner(generator):
    return _build(generator, burst_model="kleinberg")


class TestConfiguration:
    def test_default_model_is_the_papers_ma(self, generator):
        assert _build(generator, names=()).burst_model.name == "ma"

    def test_model_by_name_and_instance(self, generator):
        assert (
            _build(generator, names=(), burst_model="macd").burst_model.name
            == "macd"
        )
        model = MACDModel(fast=5.0, slow=20.0)
        assert _build(generator, names=(), burst_model=model).burst_model is model

    def test_bad_model_name_fails_at_construction(self):
        with pytest.raises(ReproError, match="unknown burst model"):
            QueryLogMiner(burst_model="wavelets")


class TestBurstRegions:
    def test_regions_come_from_the_configured_model(self, miner, generator):
        regions = miner.burst_regions("halloween")
        assert regions
        assert all(isinstance(r, BurstRegion) for r in regions)
        expected = tuple(
            miner.burst_model.detect(generator.series("halloween").values)
        )
        assert regions == expected

    def test_unknown_query_raises(self, miner):
        with pytest.raises(UnknownQueryError):
            miner.burst_regions("bogus")


class TestLeaderboard:
    def test_ranks_holiday_bursts_above_flat_queries(self, miner):
        board = miner.burstiness_leaderboard()
        names = [entry.name for entry in board]
        assert "christmas" in names
        assert "halloween" in names
        scores = [entry.score for entry in board]
        assert scores == sorted(scores, reverse=True)

    def test_windowing_isolates_the_season(self, miner):
        autumn = miner.burstiness_leaderboard(count=3, lo=270, hi=330)
        assert autumn[0].name == "halloween"
        december = miner.burstiness_leaderboard(count=3, lo=330, hi=364)
        assert december[0].name in ("christmas", "christmas gifts")

    def test_deterministic_across_rebuilds(self, generator):
        lhs = _build(generator, burst_model="kleinberg")
        rhs = _build(generator, burst_model="kleinberg")
        assert lhs.burstiness_leaderboard() == rhs.burstiness_leaderboard()

    def test_incremental_add_matches_fresh_build(self, generator):
        staged = _build(generator, names=_NAMES[:-1], burst_model="kleinberg")
        staged.burstiness_leaderboard()  # force the lazy build...
        staged.add_series(generator.series(_NAMES[-1]))  # ...then grow it
        fresh = _build(generator, burst_model="kleinberg")
        assert staged.burstiness_leaderboard() == fresh.burstiness_leaderboard()


class TestCoBurstingRegions:
    def test_christmas_cohort_overlaps(self, miner):
        matches = miner.co_bursting_regions("christmas", top=3)
        names = {m.name for m in matches}
        assert names & {"christmas gifts", "gingerbread men"}
        assert "christmas" not in names  # self-excluded

    def test_unknown_query_raises(self, miner):
        with pytest.raises(UnknownQueryError):
            miner.co_bursting_regions("bogus")

    def test_raw_values_are_queryable(self, miner, generator):
        values = generator.series("christmas gifts").values
        matches = miner.co_bursting_regions(values, top=3)
        assert any(m.name == "christmas" for m in matches)
