"""Bounded exponential backoff: policy maths, absorption, giveups."""

import pytest

import repro.obs as obs
from repro.exceptions import CorruptionError, TransientStorageError
from repro.resilience import (
    DEFAULT_POLICY,
    FaultPlan,
    FaultyStore,
    RetryingStore,
    RetryPolicy,
    active_policy,
    call_with_retry,
    policy_context,
    set_policy,
)

pytestmark = pytest.mark.faults


def recorder():
    delays = []
    return delays, RetryPolicy(max_attempts=4, sleep=delays.append)


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(
            base_delay_s=0.001, multiplier=2.0, max_delay_s=0.005
        )
        assert policy.delay_s(0) == 0.001
        assert policy.delay_s(1) == 0.002
        assert policy.delay_s(2) == 0.004
        assert policy.delay_s(3) == 0.005  # capped
        assert policy.delay_s(10) == 0.005

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_with_copies(self):
        policy = RetryPolicy()
        louder = policy.with_(max_attempts=9)
        assert louder.max_attempts == 9
        assert policy.max_attempts == DEFAULT_POLICY.max_attempts

    def test_default_outwaits_harness_streak_bound(self):
        # The theorem the drill relies on: default attempts > default
        # streak bound, so transient faults are always absorbed.
        assert DEFAULT_POLICY.max_attempts > FaultPlan().max_transient_streak


class TestActivePolicy:
    def test_set_and_restore(self):
        custom = RetryPolicy(max_attempts=2)
        previous = set_policy(custom)
        try:
            assert active_policy() is custom
        finally:
            set_policy(previous)
        assert active_policy() is previous

    def test_context_restores_on_exit(self):
        before = active_policy()
        with policy_context(RetryPolicy(max_attempts=7)) as inside:
            assert active_policy() is inside
        assert active_policy() is before


class TestCallWithRetry:
    def test_absorbs_transient_streak(self):
        delays, policy = recorder()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientStorageError("hiccup")
            return "served"

        assert call_with_retry(flaky, policy) == "served"
        assert len(calls) == 3
        assert delays == [policy.delay_s(0), policy.delay_s(1)]

    def test_gives_up_after_budget(self):
        delays, policy = recorder()

        def always_down():
            raise OSError("still down")

        with obs.observed() as registry:
            with pytest.raises(OSError):
                call_with_retry(always_down, policy)
        assert len(delays) == policy.max_attempts - 1
        assert registry.counter("resilience.giveups").value == 1
        assert (
            registry.counter("resilience.retries").value
            == policy.max_attempts - 1
        )

    def test_corruption_is_never_retried(self):
        delays, policy = recorder()
        calls = []

        def corrupt():
            calls.append(1)
            raise CorruptionError("bad page")

        with pytest.raises(CorruptionError):
            call_with_retry(corrupt, policy)
        assert len(calls) == 1  # permanent: one attempt, no sleeps
        assert delays == []

    def test_non_os_errors_propagate(self):
        def broken():
            raise ValueError("not a storage fault")

        with pytest.raises(ValueError):
            call_with_retry(broken, recorder()[1])

    def test_counts_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("once")
            return 1

        with obs.observed() as registry:
            call_with_retry(flaky, recorder()[1])
        assert registry.counter("resilience.retries").value == 1
        assert registry.counter("resilience.giveups").value == 0


class TestRetryingStore:
    def _stack(self, seed=0, transient_rate=0.5, **policy_kwargs):
        import numpy as np

        from repro.storage.pagestore import MemorySequenceStore

        inner = MemorySequenceStore(16)
        inner.append_matrix(
            np.arange(8 * 16, dtype=float).reshape(8, 16)
        )
        faulty = FaultyStore(
            inner, FaultPlan(seed=seed, transient_rate=transient_rate)
        )
        policy = RetryPolicy(sleep=lambda s: None, **policy_kwargs)
        return inner, RetryingStore(faulty, policy)

    def test_reads_survive_transient_streaks(self):
        import numpy as np

        inner, retrying = self._stack(seed=1, transient_rate=0.9)
        for seq_id in range(8):
            np.testing.assert_array_equal(
                retrying.read(seq_id), inner.read(seq_id)
            )
        np.testing.assert_array_equal(
            retrying.read_many(range(8)), inner.read_many(range(8))
        )

    def test_exhausted_budget_surfaces_error(self):
        _, retrying = self._stack(
            seed=2, transient_rate=1.0, max_attempts=1
        )
        with pytest.raises(TransientStorageError):
            retrying.read(0)

    def test_append_retries_too(self):
        import numpy as np

        inner, retrying = self._stack(seed=3, transient_rate=0.9)
        new_id = retrying.append(np.zeros(16))
        assert len(inner) == 9
        np.testing.assert_array_equal(inner.read(new_id), np.zeros(16))
