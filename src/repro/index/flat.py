"""A flat (tree-less) compressed index — section 7.3's protocol as an API.

The paper evaluates pruning power with an index-free protocol: bound the
query against *every* compressed object, discard those whose lower bound
exceeds the smallest upper bound, then verify the survivors in
increasing-lower-bound order with early termination.  On modern
vector-friendly hardware that flat protocol is itself an excellent index
— one fused kernel call bounds the whole database — so this module
promotes it to a first-class structure with the same API as the VP-tree.

When to choose which:

* :class:`FlatSketchIndex` — minimal memory, no build cost beyond
  compression, perfectly predictable performance; bounds are computed for
  every object (vectorised), so cost is Θ(D·k) per query plus
  verification.
* :class:`~repro.index.VPTreeIndex` — can skip bound computations for
  whole subtrees, which wins when queries are highly selective; costs a
  build pass and per-node Python overhead.

The ablation benchmark compares them head to head.

This module only *generates* candidates (the vectorised bound pass and
SUB filter); exact verification runs in the shared engine core
(:mod:`repro.engine.core`), like every other structure.

Example
-------
A database member is its own nearest neighbour, and every object is
either pruned by the bounds or verified against the full sequence:

>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> matrix = rng.normal(size=(32, 64))
>>> index = FlatSketchIndex(matrix, names=[f"q{i}" for i in range(32)])
>>> neighbors, stats = index.search(matrix[7], k=1)
>>> neighbors[0].name
'q7'
>>> stats.candidates_pruned + stats.full_retrievals == len(index)
True
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bounds.batch import BatchBounds, get_batch_kernel
from repro.compression.best_k import BestMinErrorCompressor
from repro.compression.database import SketchDatabase
from repro.engine.core import (
    RANGE_SLACK,
    CandidateSet,
    candidates_from_bound_arrays,
    execute_knn,
    execute_range,
)
from repro.exceptions import SeriesMismatchError
from repro.index.results import Neighbor, SearchStats
from repro.spectral.dft import Spectrum
from repro.storage.pagestore import MemorySequenceStore

__all__ = ["FlatSketchIndex"]


class FlatSketchIndex:
    """k-NN and range search over a packed sketch database, no tree.

    Parameters mirror :class:`~repro.index.VPTreeIndex` (minus the
    tree-construction knobs).
    """

    obs_name = "index.flat"

    def __init__(
        self,
        matrix: np.ndarray,
        compressor=None,
        names: Sequence[str] | None = None,
        store=None,
        bound_method: str | None = "best_min_error_safe",
        sketch_db: SketchDatabase | None = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SeriesMismatchError(
                f"expected a 2-D database matrix, got shape {matrix.shape}"
            )
        if names is not None and len(names) != len(matrix):
            raise SeriesMismatchError("names must align with the matrix rows")
        self._names = tuple(names) if names is not None else None
        self._compressor = compressor or BestMinErrorCompressor(14)
        self.bound_method = bound_method or self._compressor.method
        self._kernel = get_batch_kernel(self.bound_method)
        self._store = store if store is not None else MemorySequenceStore(
            matrix.shape[1]
        )
        if len(self._store) == 0:
            self._store.append_matrix(matrix)
        if sketch_db is not None:
            # A prebuilt (possibly row-subset view) sketch database — the
            # shard builder compresses the full population once and hands
            # each shard its `take()` view instead of recompressing.
            if len(sketch_db) != len(matrix):
                raise SeriesMismatchError(
                    "sketch_db rows must align with the matrix rows"
                )
            self._sketch_db = sketch_db
        else:
            self._sketch_db = SketchDatabase.from_matrix(
                matrix, self._compressor
            )
        self._count = int(matrix.shape[0])
        self._n = int(matrix.shape[1])

    def __len__(self) -> int:
        return self._count

    @property
    def sequence_length(self) -> int:
        return self._n

    @property
    def store(self):
        return self._store

    def result_name(self, seq_id: int) -> str | None:
        return self._names[seq_id] if self._names is not None else None

    def fetch(self, seq_id: int) -> np.ndarray:
        return self._store.read(seq_id)

    def _bounds(self, query: np.ndarray):
        spectrum = Spectrum.from_series(query)
        return self._kernel(BatchBounds(spectrum), self._sketch_db)

    # ------------------------------------------------------------------
    # Candidate generation (the engine owns verification)
    # ------------------------------------------------------------------
    def knn_candidates(
        self, query: np.ndarray, k: int, stats: SearchStats
    ) -> CandidateSet:
        lower, upper = self._bounds(query)
        stats.bound_computations = len(self)
        return candidates_from_bound_arrays(lower, upper, k)

    def range_candidates(
        self, query: np.ndarray, radius: float, stats: SearchStats
    ) -> CandidateSet:
        lower, _ = self._bounds(query)
        stats.bound_computations = len(self)
        survivor_ids = np.flatnonzero(lower <= radius + RANGE_SLACK)
        lb_sq = lower[survivor_ids] ** 2
        return CandidateSet(
            entries=list(zip(lb_sq.tolist(), survivor_ids.tolist())),
            generated=len(self),
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, query, k: int = 1, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """The ``k`` nearest neighbours (exact under sound bounds)."""
        return execute_knn(self, query, k, policy)

    def range_search(
        self, query, radius: float, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """All sequences within ``radius`` of the query."""
        return execute_range(self, query, radius, policy)
