"""Figure 13: automatically discovered periods for four queries.

The paper's results on 2002 data:

* cinema      -> P1 = 7, P2 = 3.5 (and a long quarterly component)
* full moon   -> P1 = 30.33, P2 = 7, P3 = 14.56
* nordstrom   -> P1 = 7, P2 = 3.5 (and a long seasonal component)
* dudley moore -> none (the threshold avoids the false alarm; the lone
  peak in the data is the actor's death, a burst, not a period)

The benchmark asserts the same leading periods (the synthetic profiles do
not model every secondary component, so only the headline periods are
pinned) and the empty result for 'dudley moore'.
"""

from repro.evaluation import format_table
from repro.periods import PeriodDetector


def test_fig13_discovered_periods(catalog_2002, report, benchmark):
    detector = PeriodDetector(confidence=0.9999)
    results = {
        name: detector.detect(catalog_2002[name].standardize())
        for name in ("cinema", "full moon", "nordstrom", "dudley moore")
    }

    rows = []
    for name, result in results.items():
        found = ", ".join(f"{p.period:.2f}" for p in result.top(3)) or "none"
        rows.append((name, found, result.threshold))
    report(
        format_table(
            ("query", "periods (days)", "power threshold"),
            rows,
            title="fig 13: significant periods at 99.99% confidence",
            digits=3,
        ),
        "paper: cinema {7, 3.5, 91}; full moon {30.33, 7, 14.56}; "
        "nordstrom {7, 3.5, 121.33}; dudley moore {}",
    )

    cinema = [p.period for p in results["cinema"].top(2)]
    assert abs(cinema[0] - 7.0) < 0.2
    assert len(cinema) > 1 and abs(cinema[1] - 3.5) < 0.2

    moon = [p.period for p in results["full moon"].top(3)]
    assert abs(moon[0] - 29.53) < 1.5  # the lunar month

    nordstrom = [p.period for p in results["nordstrom"].top(1)]
    assert abs(nordstrom[0] - 7.0) < 0.2

    assert len(results["dudley moore"]) == 0

    series = catalog_2002["cinema"].standardize()
    benchmark(detector.detect, series)


def test_fig13_confidence_sweep(catalog_2002, report, benchmark):
    """Lower confidence -> lower threshold -> more (weaker) periods."""
    series = catalog_2002["cinema"].standardize()
    counts = []
    rows = []
    for confidence in (0.99, 0.999, 0.9999, 0.99999):
        detector = PeriodDetector(confidence=confidence)
        result = detector.detect(series)
        counts.append(len(result))
        rows.append((confidence, result.threshold, len(result)))
    report(
        format_table(
            ("confidence", "threshold", "periods found"),
            rows,
            title="fig 13 follow-up: threshold vs confidence for 'cinema'",
            digits=4,
        )
    )
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] >= 1  # the weekly peak survives even at 99.999%

    benchmark(PeriodDetector(0.9999).detect, series)
