"""The pruning-power experiment (fig. 22).

Section 7.3's index-free protocol, "not effected by implementation details
or the use of an index structure": for each query,

1. compute every object's LB (and UB, when the method has one) from its
   compressed representation;
2. find the smallest upper bound SUB and discard objects with LB > SUB;
3. visit the survivors in increasing-LB order, computing true distances,
   and stop as soon as the next LB exceeds the best-so-far match.

The reported metric F is the average fraction of the database whose full
representation had to be examined in step 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bounds.batch import batch_bounds
from repro.compression.budget import StorageBudget
from repro.compression.database import SketchDatabase
from repro.evaluation.reporting import format_table
from repro.index.distance import distances_to_query
from repro.spectral.dft import Spectrum

__all__ = ["PruningResult", "pruning_power_experiment", "fraction_examined"]

#: Fig. 22 compares exactly these three methods.
DEFAULT_METHODS = ("gemini", "wang", "best_min_error")


def fraction_examined(
    query: np.ndarray,
    spectrum: Spectrum,
    sketch_db: SketchDatabase,
    matrix: np.ndarray,
    method: str | None = None,
) -> float:
    """Fraction of ``matrix`` rows examined for one 1-NN query."""
    lower, upper = batch_bounds(spectrum, sketch_db, method)
    finite_uppers = upper[np.isfinite(upper)]
    if finite_uppers.size:
        sub = float(finite_uppers.min())
        survivors = np.flatnonzero(lower <= sub)
    else:
        survivors = np.arange(len(lower))
    order = survivors[np.argsort(lower[survivors], kind="stable")]

    # Visiting in LB order lets one vectorised distance pass stand in for
    # the sequential loop: the stop rule "next LB > best-so-far" examines
    # exactly the prefix up to the first position where the running
    # minimum distance drops below the *next* lower bound.
    if order.size == 0:
        return 0.0
    true_distances = distances_to_query(matrix[order], query)
    best_so_far = np.minimum.accumulate(true_distances)
    examined = order.size
    for position in range(1, order.size):
        if lower[order[position]] > best_so_far[position - 1]:
            examined = position
            break
    return examined / len(matrix)


@dataclass(frozen=True)
class PruningResult:
    """Average fraction examined, per method, for one configuration."""

    budget: StorageBudget
    database_size: int
    queries: int
    fractions: Mapping[str, float]

    def reduction_vs_next_best(self, method: str = "best_min_error") -> float:
        """Percentage-point reduction of ``method`` vs the best other method."""
        others = [v for name, v in self.fractions.items() if name != method]
        return 100.0 * (min(others) - self.fractions[method])

    def as_table(self) -> str:
        rows = [(name, value) for name, value in self.fractions.items()]
        return format_table(
            ("method", "fraction examined"),
            rows,
            title=(
                f"DB = {self.database_size} sequences, "
                f"memory = {self.budget.label()}, {self.queries} queries"
            ),
            digits=4,
        )


def pruning_power_experiment(
    matrix: np.ndarray,
    queries: np.ndarray,
    budgets: Sequence[StorageBudget],
    methods: Sequence[str] = DEFAULT_METHODS,
) -> list[PruningResult]:
    """Run the fig. 22 protocol for every budget.

    ``matrix`` is the standardised database, ``queries`` the standardised
    out-of-database query workload.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    results = []
    query_spectra = [Spectrum.from_series(q) for q in queries]
    for budget in budgets:
        fractions = {}
        for method in methods:
            sketch_db = SketchDatabase.from_matrix(
                matrix, budget.compressor(method)
            )
            per_query = [
                fraction_examined(query, spectrum, sketch_db, matrix)
                for query, spectrum in zip(queries, query_spectra)
            ]
            fractions[method] = float(np.mean(per_query))
        results.append(
            PruningResult(
                budget=budget,
                database_size=len(matrix),
                queries=len(queries),
                fractions=fractions,
            )
        )
    return results
