"""The burstiness leaderboard: top-N bursting queries per window.

The paper's S2 demo surfaces "the most interesting queries" of a time
span; with scored :class:`~repro.bursts.protocol.BurstRegion` output
from every registered model this becomes a ranking primitive: score
each query by the total weight of its burst regions (optionally
pro-rated to a ``[lo, hi]`` day window via
:meth:`~repro.bursts.protocol.BurstRegion.windowed_weight`), and take
the top N.

Weights are model-specific currencies (MA: area over the cutoff;
Kleinberg: emission-cost savings; elastic: window sums; MACD: histogram
mass), so one leaderboard ranks under exactly one model — comparing
across models is the agreement report's job, not the leaderboard's.

Ranking is **deterministic**: entries order by ``(-score, name)``, so
equal scores resolve by query id and repeated runs over the same data
produce byte-identical boards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bursts.protocol import BurstModel, BurstRegion
from repro.bursts.registry import get_burst_model
from repro.exceptions import UnknownQueryError
from repro.timeseries.series import TimeSeries

__all__ = ["LeaderboardEntry", "BurstinessLeaderboard"]


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked query on the board."""

    name: str  #: the query
    score: float  #: total (or windowed) region weight under the model
    regions: tuple[BurstRegion, ...]  #: the regions behind the score

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeaderboardEntry({self.name!r}, score={self.score:.3f}, "
            f"regions={len(self.regions)})"
        )


class BurstinessLeaderboard:
    """Ranked burstiness over a population of queries, one model.

    Parameters
    ----------
    model:
        A registered burst-model name or a built
        :class:`~repro.bursts.protocol.BurstModel`; extra keyword
        arguments configure a model named by string.
    """

    def __init__(self, model: BurstModel | str = "ma", **model_kwargs) -> None:
        self.model = get_burst_model(model, **model_kwargs)
        self._regions: dict[str, tuple[BurstRegion, ...]] = {}

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._regions)

    def add(self, name: str, values) -> tuple[BurstRegion, ...]:
        """Detect and store one query's regions; returns them.

        Re-adding a name replaces its regions (e.g. after new log days).
        """
        if isinstance(values, TimeSeries):
            values = values.values
        if not name:
            raise UnknownQueryError("leaderboard members must be named")
        regions = tuple(self.model.detect(values))
        self._regions[name] = regions
        obs.add("bursts.leaderboard_adds")
        return regions

    def add_collection(self, collection) -> int:
        """Add every series of a :class:`TimeSeriesCollection`.

        Returns the total number of regions stored.
        """
        return sum(
            len(self.add(series.name, series.values))
            for series in collection
        )

    def remove(self, name: str) -> None:
        """Drop a query from the board."""
        if name not in self._regions:
            raise UnknownQueryError(name)
        del self._regions[name]

    def regions_of(self, name: str) -> tuple[BurstRegion, ...]:
        """The stored regions of one query."""
        try:
            return self._regions[name]
        except KeyError:
            raise UnknownQueryError(name) from None

    def score(
        self, name: str, lo: int | None = None, hi: int | None = None
    ) -> float:
        """One query's burstiness score, optionally windowed to [lo, hi]."""
        regions = self.regions_of(name)
        if lo is None and hi is None:
            return float(sum(r.weight for r in regions))
        lo = 0 if lo is None else int(lo)
        hi = 2**62 if hi is None else int(hi)
        return float(sum(r.windowed_weight(lo, hi) for r in regions))

    def top(
        self,
        count: int = 10,
        lo: int | None = None,
        hi: int | None = None,
        min_score: float = 0.0,
    ) -> list[LeaderboardEntry]:
        """The ``count`` burstiest queries, optionally within [lo, hi].

        Entries score at least ``min_score`` (strictly above 0 by
        default, dropping never-bursting queries) and order by
        ``(-score, name)`` — canonical and reproducible.
        """
        with obs.span("bursts.leaderboard"):
            scored = []
            for name in self._regions:
                value = self.score(name, lo, hi)
                if value > min_score:
                    scored.append(
                        LeaderboardEntry(
                            name=name,
                            score=value,
                            regions=self._regions[name],
                        )
                    )
            scored.sort(key=lambda e: (-e.score, e.name))
        obs.add("bursts.leaderboard_queries")
        return scored[:count]
