"""Shared-period detection over a *set* of sequences.

Section 5 motivates the detector with "an automatic method that will
return the important periods for a set of sequences (e.g., for the knn
results)".  :func:`shared_periods` does exactly that: run the
single-sequence detector on every member, pool the findings into period
bins (a 7.02-day and a 6.98-day detection are the same weekly behaviour),
and rank the bins by how many sequences exhibit them and with how much
power.

This is what the S2 tool uses to summarise a similarity-search result
("these 10 queries are all weekly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.periods.detector import PeriodDetector
from repro.timeseries.series import TimeSeries

__all__ = ["SharedPeriod", "shared_periods"]


@dataclass(frozen=True)
class SharedPeriod:
    """One period bin aggregated across a sequence set.

    Attributes
    ----------
    period:
        Power-weighted mean period of the bin, in samples.
    support:
        Number of sequences in which the bin's period was significant.
    total_power:
        Summed periodogram power of the contributing detections.
    members:
        Names (or indexes, for unnamed input) of the supporting sequences.
    """

    period: float
    support: int
    total_power: float
    members: tuple[str, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedPeriod({self.period:.2f}d, support={self.support}, "
            f"power={self.total_power:.1f})"
        )


def _bin_key(index: int) -> int:
    """Detections land in the same bin iff they hit the same spectrum bin."""
    return index


def shared_periods(
    series: Iterable[TimeSeries | Sequence[float]],
    detector: PeriodDetector | None = None,
    min_support: int = 1,
) -> list[SharedPeriod]:
    """Significant periods across a set of sequences, ranked by support.

    Parameters
    ----------
    series:
        The sequences (e.g. a k-NN result set).  :class:`TimeSeries`
        members contribute their names to the result; raw arrays
        contribute their position.
    detector:
        The per-sequence detector; defaults to the paper's 99.99%
        configuration.
    min_support:
        Only bins significant in at least this many sequences survive.

    Returns
    -------
    list[SharedPeriod]
        Sorted by (support, total power) descending.
    """
    detector = detector or PeriodDetector()
    bins: dict[int, dict] = {}
    for position, member in enumerate(series):
        if isinstance(member, TimeSeries):
            name = member.name or f"#{position}"
            values = member.standardize().values
        else:
            name = f"#{position}"
            values = member
        for found in detector.detect(values):
            entry = bins.setdefault(
                _bin_key(found.index),
                {"power": 0.0, "weighted": 0.0, "members": []},
            )
            entry["power"] += found.power
            entry["weighted"] += found.power * found.period
            entry["members"].append(name)

    results = [
        SharedPeriod(
            period=entry["weighted"] / entry["power"],
            support=len(entry["members"]),
            total_power=entry["power"],
            members=tuple(entry["members"]),
        )
        for entry in bins.values()
        if len(entry["members"]) >= min_support
    ]
    results.sort(key=lambda sp: (sp.support, sp.total_power), reverse=True)
    return results
