"""Tests for the Zhu & Shasha elastic burst detection baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bursts import ElasticBurst, ElasticBurstDetector, ShiftedWaveletTree


def linear_threshold(scale=10.0, per_unit=2.0):
    return lambda w: scale + per_unit * w


class TestShiftedWaveletTree:
    def test_window_sum(self):
        tree = ShiftedWaveletTree(np.arange(10.0))
        assert tree.window_sum(0, 3) == 3.0  # 0+1+2
        assert tree.window_sum(7, 3) == 24.0  # 7+8+9
        assert tree.window_sum(8, 5) == 17.0  # clipped at the end

    def test_levels_overlap_by_half(self):
        tree = ShiftedWaveletTree(np.ones(16))
        starts = tree.level_starts[2]  # window 4, step 2
        np.testing.assert_array_equal(np.diff(starts), 2)

    def test_top_level_covers_everything(self):
        tree = ShiftedWaveletTree(np.ones(100))
        top = tree.levels[tree.max_level]
        assert top[0] == pytest.approx(100.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=2, max_value=64),
    )
    def test_containment_guarantee(self, length, start, n):
        """Every window fits inside some cell of its guard level."""
        start = start % n
        length = min(length, n - start)
        if length < 1:
            length = 1
        tree = ShiftedWaveletTree(np.ones(n))
        level = tree.guard_level(length)
        window = 2**level
        starts = tree.level_starts[level]
        contained = any(
            cell_start <= start and start + length <= min(cell_start + window, n)
            for cell_start in starts
        )
        assert contained, (length, start, n, level)


class TestElasticBurstDetector:
    def test_matches_naive_on_counts(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(5.0, size=365).astype(float)
        counts[200:208] += 40.0
        detector = ElasticBurstDetector(linear_threshold(30.0, 8.0))
        fast = detector.detect(counts)
        naive = detector.detect_naive(counts)
        assert fast == naive
        assert fast, "the planted burst must qualify at some window length"

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_property_no_false_dismissals(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.poisson(3.0, size=128).astype(float)
        spikes = rng.integers(0, 120, size=2)
        counts[spikes] += rng.integers(10, 60, size=2)
        detector = ElasticBurstDetector(
            lambda w: 12.0 + 4.0 * w, lengths=(1, 2, 4, 8)
        )
        assert detector.detect(counts) == detector.detect_naive(counts)

    def test_elasticity_finds_slow_wide_bursts(self):
        """A burst too weak per-day still qualifies over a wide window."""
        counts = np.full(200, 1.0)
        counts[100:140] = 3.0  # mild, long elevation
        detector = ElasticBurstDetector(
            lambda w: 10.0 + 1.8 * w, lengths=(1, 4, 16, 32)
        )
        found = detector.detect(counts)
        assert found
        assert all(len(burst) >= 16 for burst in found)
        assert not [b for b in found if len(b) == 1]

    def test_negative_values_rejected(self):
        detector = ElasticBurstDetector(linear_threshold())
        with pytest.raises(ValueError):
            detector.detect(np.array([1.0, -1.0, 2.0]))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ElasticBurstDetector(linear_threshold(), lengths=())
        with pytest.raises(ValueError):
            ElasticBurstDetector(linear_threshold(), lengths=(0,))

    def test_storage_cells_exceed_triplets(self):
        """The paper's storage claim: SWT state vs compact triplets."""
        from repro.bursts import BurstDetector, compact_bursts
        from repro.datagen import QueryLogGenerator

        series = QueryLogGenerator(seed=0).series("halloween")
        detector = ElasticBurstDetector(linear_threshold())
        cells = detector.storage_cells(series.values)

        standardized = series.standardize()
        triplets = compact_bursts(
            standardized, BurstDetector.long_term().detect(standardized)
        )
        assert cells > 10 * max(len(triplets), 1) * 3

    def test_burst_ordering(self):
        a = ElasticBurst(1, 3, 10.0)
        b = ElasticBurst(2, 3, 5.0)
        assert a < b
        assert len(a) == 3
