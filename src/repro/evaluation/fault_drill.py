"""Operational fault drill: ``python -m repro.evaluation --faults [SEED]``.

The drill is the resilience layer's end-to-end acceptance run, scripted
so an operator (or CI) can replay it with one flag:

1. **baseline** — every registered index backend answers a kNN workload
   fault-free;
2. **transient faults** — the same workload through a seeded
   :class:`~repro.resilience.FaultPlan` of bounded transient streaks;
   the engine's retry path must absorb every hiccup and the answers
   must be *identical* to the baseline;
3. **permanent corruption** — one sequence is corrupted for good; every
   backend must keep answering (``degraded`` results, the victim
   quarantined and reported) instead of raising; the same corrupted
   workload rerun under a non-exact
   :class:`~repro.engine.ApproxPolicy` must keep the *extended*
   accounting invariant (``pruned + retrievals + quarantined +
   skipped_approx == db``) and never bill the victim as a policy skip;
4. **on-disk corruption** — a real :class:`~repro.storage.SequencePageStore`
   file gets a flipped byte; the page CRC must surface it as a typed
   :class:`~repro.exceptions.CorruptionError` and the store's
   :meth:`~repro.storage.SequencePageStore.scrub` must locate the victim;
5. **write-path crashes** — a :class:`~repro.stream.StreamStore` is
   killed at every seal seam, handed a torn WAL tail, and killed on
   both sides of a compaction commit; each reopened directory must
   answer the query workload *bit-identically* to the pre-kill store
   (a kill can cost an in-flight batch, never committed data).

Everything is deterministic in the seed; the printed obs counters
(retries, giveups, quarantines, faults injected) come from the same
``resilience.*`` instrumentation production would report.
"""

from __future__ import annotations

import contextlib
import os
import sys
import tempfile

import numpy as np

from repro import obs
from repro.datagen.generator import QueryLogGenerator
from repro.engine.approx import ApproxPolicy
from repro.engine.registry import available_indexes, get_index
from repro.exceptions import CorruptionError
from repro.resilience import (
    CrashPlan,
    FaultPlan,
    FaultyIndex,
    FaultyStore,
    InjectedCrashError,
    RetryingStore,
    crash_plan,
    quarantine_of,
)
from repro.storage.pagestore import SequencePageStore
from repro.stream import StreamStore

__all__ = ["fault_drill"]

_RESILIENCE_COUNTERS = (
    "resilience.faults_injected",
    "resilience.retries",
    "resilience.giveups",
    "resilience.quarantines",
    "resilience.degraded_fetches",
    "resilience.fallback_scans",
    "resilience.corrupt_pages",
    "resilience.scrub_failures",
    "resilience.crashes_injected",
    "stream.recoveries",
    "stream.wal_truncations",
    "stream.orphans_removed",
)

#: Every durable seam the seal path crosses, in visit order; the
#: write-path drill kills at each one.
_SEAL_SEAMS = (
    "seal.segment.write",
    "seal.segment.sync",
    "seal.wal.rotate",
    "manifest.tmp.write",
    "manifest.rename",
    "seal.gc",
)
_COMPACT_SEAMS = ("compact.segment.write", "manifest.rename", "compact.gc")


def _answers(index, queries, k):
    """The drill's comparable view of a workload: (id, distance) pairs."""
    out = []
    for query in queries:
        neighbors, stats = index.search(query, k)
        out.append(
            (
                tuple((n.seq_id, round(n.distance, 12)) for n in neighbors),
                stats.degraded,
                stats.quarantined_ids,
            )
        )
    return out


def _stream_answers(store: StreamStore, queries, k):
    """Order-independent answers of a stream store: (name, distance) sets.

    Keyed by name, not id: a recovered store may hold the same data as
    live rows where the pre-kill store held them sealed (or the other
    way around), which permutes ids but must not change answers.
    """
    out = []
    for query in queries:
        neighbors, _ = store.search(query, k)
        out.append(
            frozenset((n.name, round(n.distance, 12)) for n in neighbors)
        )
    return out


def fault_drill(
    db_size: int = 256,
    days: int = 128,
    queries: int = 5,
    seed: int = 11,
    k: int = 5,
    out=None,
) -> bool:
    """Run the resilience acceptance drill; ``True`` when all checks pass.

    Prints one section per backend plus the on-disk corruption round
    trip and the run's ``resilience.*`` counters.  Importable for tests
    and scripts; the CLI entry is ``python -m repro.evaluation --faults``.
    """
    out = out or sys.stdout
    failures: list[str] = []

    generator = QueryLogGenerator(seed=seed, days=days)
    matrix = generator.synthetic_database(db_size).standardize().as_matrix()
    query_matrix = (
        generator.queries_outside_database(queries).standardize().as_matrix()
    )
    victim = db_size // 2

    print(
        f"fault drill: {db_size} sequences x {days} days, "
        f"{queries} queries, k={k}, seed {seed}",
        file=out,
    )

    with obs.observed() as registry:
        for name in available_indexes():
            clean = get_index(name, matrix)
            baseline = _answers(clean, query_matrix, k)

            # Transient streaks: retries must make the faults invisible.
            noisy = FaultyIndex(
                get_index(name, matrix),
                FaultPlan(seed=seed, transient_rate=0.2),
            )
            transient = _answers(noisy, query_matrix, k)
            identical = [b[0] for b in baseline] == [t[0] for t in transient]
            absorbed = not any(t[1] for t in transient)

            # Permanent corruption: degraded answers, victim quarantined.
            # The victim's own sequence rides along as one extra probe —
            # it is always its own best candidate, so every backend is
            # guaranteed to attempt (and fail) the corrupted fetch.
            probes = np.vstack([query_matrix, matrix[victim : victim + 1]])
            broken = FaultyIndex(get_index(name, matrix), FaultPlan(), [victim])
            degraded = _answers(broken, probes, k)
            # Quarantining one id may cost each answer at most one slot:
            # the victim can already have crowded a candidate out of the
            # generator's shortlist, and degradation cannot resurrect it.
            served = all(len(d[0]) >= k - 1 for d in degraded)
            # A query that pruned the victim away is legitimately clean;
            # every query that *did* touch it must carry the degraded
            # flag and name the victim.  Matrix-backed traversals (the
            # M-tree) may instead pay the victim's exact distance from
            # their in-memory copy — the fetch seam the harness corrupts
            # is then never exercised, which the drill accepts as "fault
            # not reachable" rather than a degradation failure.
            hits = [d for d in degraded if d[1]]
            flagged = all(victim in d[2] for d in hits)
            quarantined = victim in quarantine_of(broken)
            paid_path = any(
                victim in {seq_id for seq_id, _ in d[0]} for d in degraded
            )
            contained = (bool(hits) and quarantined) or (
                not hits and paid_path
            )

            # Approximate tier composition: the corrupted workload rerun
            # under a non-exact policy must close the extended invariant
            # and keep the victim in its own bucket — a storage casualty
            # is ``quarantined``, never ``skipped_approx``.
            approx_broken = FaultyIndex(
                get_index(name, matrix), FaultPlan(), [victim]
            )
            approx_policy = ApproxPolicy(epsilon=0.5, patience=16)
            approx_ok = True
            for probe in probes:
                _, stats = approx_broken.search(probe, k, policy=approx_policy)
                closes = (
                    stats.candidates_pruned
                    + stats.full_retrievals
                    + stats.quarantined
                    + stats.skipped_approx
                    == db_size
                )
                victim_kept = (
                    stats.quarantined == 0
                    or victim in stats.quarantined_ids
                )
                if not (closes and victim_kept):
                    approx_ok = False

            verdicts = {
                "transient answers identical": identical,
                "transient faults absorbed": absorbed,
                "degraded queries served": served,
                "victim flagged": flagged,
                "victim contained": contained,
                "approx invariant closes": approx_ok,
            }
            for check, passed in verdicts.items():
                if not passed:
                    failures.append(f"{name}: {check}")
            status = "ok" if all(verdicts.values()) else "FAIL"
            print(f"  {name:<8s} {status:<4s} " + ", ".join(
                f"{check}={'yes' if passed else 'NO'}"
                for check, passed in verdicts.items()
            ), file=out)

        # On-disk corruption: CRC catches a flipped byte, scrub finds it.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "drill.pages")
            with SequencePageStore(path, matrix.shape[1]) as store:
                store.append_matrix(matrix)
                offset = store._offset_of(victim) + 11
            with open(path, "r+b") as raw:
                raw.seek(offset)
                byte = raw.read(1)
                raw.seek(offset)
                raw.write(bytes([byte[0] ^ 0x40]))
            with SequencePageStore.open(path) as store:
                try:
                    store.read(victim)
                    crc_caught = False
                except CorruptionError:
                    crc_caught = True
                scrub_found = store.scrub() == (victim,)
                others_fine = store.read(0) is not None
        if not (crc_caught and scrub_found and others_fine):
            failures.append("on-disk corruption round trip")
        print(
            f"  on-disk  {'ok' if crc_caught and scrub_found else 'FAIL':<4s} "
            f"crc_caught={'yes' if crc_caught else 'NO'}, "
            f"scrub_found={'yes' if scrub_found else 'NO'}, "
            f"healthy_reads_ok={'yes' if others_fine else 'NO'}",
            file=out,
        )

        # Store-level composition: RetryingStore over a FaultyStore must
        # read every sequence despite transient streaks.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "retry.pages")
            with SequencePageStore(path, matrix.shape[1]) as store:
                ids = store.append_matrix(matrix[:32])
                retrying = RetryingStore(
                    FaultyStore(store, FaultPlan(seed=seed, transient_rate=0.3))
                )
                reads_ok = all(
                    retrying.read(i).shape == (matrix.shape[1],) for i in ids
                )
        if not reads_ok:
            failures.append("retrying store reads")
        print(
            f"  retry    {'ok' if reads_ok else 'FAIL':<4s} "
            f"all_reads_served={'yes' if reads_ok else 'NO'}",
            file=out,
        )

        # Write-path crashes: the streaming store killed at every seal
        # seam, fed a torn WAL tail, and killed on both sides of a
        # compaction commit.  Every reopened directory must answer the
        # workload bit-identically — a kill can cost an in-flight
        # batch, never committed data.
        stream_db = generator.synthetic_database(24, name_prefix="streamdrill")
        raw = stream_db.as_matrix()
        stream_names = tuple(stream_db.names)

        seal_ok = []
        for seam in _SEAL_SEAMS:
            with tempfile.TemporaryDirectory() as tmp:
                directory = os.path.join(tmp, "stream")
                store = StreamStore(directory, days, fsync=False)
                for name, row in zip(stream_names[:12], raw[:12]):
                    store.append(name, row)
                store.seal()
                for name, row in zip(stream_names[12:], raw[12:]):
                    store.append(name, row)
                before = _stream_answers(store, query_matrix, k)
                try:
                    with crash_plan(CrashPlan(point=seam)):
                        store.seal()
                except InjectedCrashError:
                    pass
                with contextlib.suppress(Exception):
                    store.close()
                with StreamStore(directory, fsync=False) as reopened:
                    seal_ok.append(
                        _stream_answers(reopened, query_matrix, k) == before
                    )
        if not all(seal_ok):
            failures.append("stream seal-crash recovery")
        print(
            f"  seal     {'ok' if all(seal_ok) else 'FAIL':<4s} "
            + ", ".join(
                f"{seam}={'yes' if passed else 'NO'}"
                for seam, passed in zip(_SEAL_SEAMS, seal_ok)
            ),
            file=out,
        )

        # Torn WAL tail: the final record loses its last bytes, as a
        # kill mid-write(2) would leave it.  Recovery truncates the torn
        # record (a typed repair, not a crash) and keeps everything
        # before the tear.
        with tempfile.TemporaryDirectory() as tmp:
            directory = os.path.join(tmp, "stream")
            store = StreamStore(directory, days, fsync=False)
            for name, row in zip(stream_names[:6], raw[:6]):
                store.append(name, row)
            store.close()
            wal_path = next(
                os.path.join(directory, entry)
                for entry in sorted(os.listdir(directory))
                if entry.startswith("wal-") and entry.endswith(".log")
            )
            with open(wal_path, "r+b") as handle:
                handle.truncate(os.path.getsize(wal_path) - 5)
            with StreamStore(directory, fsync=False) as reopened:
                report = reopened.recovery
                torn_truncated = report.wal_truncated_bytes > 0
                survivors_kept = set(reopened.names()) == set(stream_names[:5])
                still_serving = bool(
                    reopened.search(query_matrix[0], 1)[0]
                )
        torn_ok = torn_truncated and survivors_kept and still_serving
        if not torn_ok:
            failures.append("torn WAL tail recovery")
        print(
            f"  torn-wal {'ok' if torn_ok else 'FAIL':<4s} "
            f"tail_truncated={'yes' if torn_truncated else 'NO'}, "
            f"records_before_tear_kept={'yes' if survivors_kept else 'NO'}, "
            f"queries_served={'yes' if still_serving else 'NO'}",
            file=out,
        )

        compact_ok = []
        for seam in _COMPACT_SEAMS:
            with tempfile.TemporaryDirectory() as tmp:
                directory = os.path.join(tmp, "stream")
                store = StreamStore(directory, days, fsync=False)
                for name, row in zip(stream_names[:8], raw[:8]):
                    store.append(name, row)
                store.seal()
                for name, row in zip(stream_names[8:16], raw[8:16]):
                    store.append(name, row)
                store.seal()
                store.delete(stream_names[3])
                before = _stream_answers(store, query_matrix, k)
                try:
                    with crash_plan(CrashPlan(point=seam)):
                        store.compact()
                except InjectedCrashError:
                    pass
                with contextlib.suppress(Exception):
                    store.close()
                with StreamStore(directory, fsync=False) as reopened:
                    compact_ok.append(
                        _stream_answers(reopened, query_matrix, k) == before
                    )
        if not all(compact_ok):
            failures.append("stream compaction-crash recovery")
        print(
            f"  compact  {'ok' if all(compact_ok) else 'FAIL':<4s} "
            + ", ".join(
                f"{seam}={'yes' if passed else 'NO'}"
                for seam, passed in zip(_COMPACT_SEAMS, compact_ok)
            ),
            file=out,
        )

    print("\n  resilience counters:", file=out)
    for counter in _RESILIENCE_COUNTERS:
        print(f"    {counter:<32s} {registry.counter(counter).value}", file=out)

    if failures:
        print("\nDRILL FAILED: " + "; ".join(failures), file=out)
        return False
    print(
        "\ndrill passed: all backends degrade gracefully and the "
        "write path recovers cleanly",
        file=out,
    )
    return True
