"""Figure 22: pruning power — fraction of the database examined for 1-NN.

The index-free protocol of section 7.3 over three database sizes and
three storage budgets, comparing GEMINI, Wang and BestMinError.  The
paper reports BestMinError examining 10-35 percentage points less of the
database than the next best method, with the advantage growing as fewer
coefficients are used.
"""

import pytest

from repro.compression import SketchDatabase, StorageBudget
from repro.evaluation import pruning_power_experiment
from repro.evaluation.pruning import fraction_examined
from repro.spectral import Spectrum

BUDGETS = (StorageBudget(8), StorageBudget(16), StorageBudget(32))


@pytest.fixture(scope="module")
def results(database_matrix, query_matrix, scale):
    by_size = {}
    for size in scale.database_sizes:
        by_size[size] = pruning_power_experiment(
            database_matrix[:size], query_matrix, BUDGETS
        )
    return by_size


def test_fig22_best_min_error_examines_least(results, report, benchmark,
                                             database_matrix, query_matrix):
    blocks = []
    for size, budget_results in results.items():
        for result in budget_results:
            blocks.append(result.as_table())
            blocks.append(
                f"reduction vs next best: "
                f"{result.reduction_vs_next_best():.2f} percentage points "
                f"(paper: 10-35)"
            )
    report(*blocks)

    for budget_results in results.values():
        for result in budget_results:
            fractions = result.fractions
            assert fractions["best_min_error"] <= fractions["wang"] + 1e-9
            assert fractions["best_min_error"] <= fractions["gemini"] + 1e-9
            assert result.reduction_vs_next_best() > 0

    budget = BUDGETS[1]
    sketch_db = SketchDatabase.from_matrix(
        database_matrix[:1024], budget.compressor("best_min_error")
    )
    query = query_matrix[0]
    spectrum = Spectrum.from_series(query)
    benchmark(
        fraction_examined, query, spectrum, sketch_db, database_matrix[:1024]
    )


def test_fig22_trends(results, scale, benchmark, database_matrix, query_matrix):
    """More coefficients help every method; the advantage of the best
    coefficients is largest at the smallest budget (the paper's -35.6pp
    cell sits at 2*(8)+1)."""
    for budget_results in results.values():
        fractions = [r.fractions["best_min_error"] for r in budget_results]
        # Allow small non-monotonic wiggles; the overall trend must hold.
        assert fractions[-1] <= fractions[0] + 0.02

    largest = results[scale.database_sizes[-1]]
    assert (
        largest[0].reduction_vs_next_best()
        >= largest[-1].reduction_vs_next_best() - 2.0
    )

    budget = BUDGETS[0]
    sketch_db = SketchDatabase.from_matrix(
        database_matrix[:1024], budget.compressor("gemini")
    )
    query = query_matrix[1]
    spectrum = Spectrum.from_series(query)
    benchmark(
        fraction_examined, query, spectrum, sketch_db, database_matrix[:1024]
    )
