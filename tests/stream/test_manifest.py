"""Generational manifest edge cases: CRC fallback, genesis, readers.

The satellite checklist pins three scenarios: a CRC-mismatched newest
generation must fall back (and quarantine), an empty / zero-generation
directory must open sanely, and a concurrent reader holding the old
generation must survive a compaction deleting its files.
"""

import json
import os

import numpy as np
import pytest

from repro.engine.registry import get_index
from repro.exceptions import CorruptionError, StorageError
from repro.timeseries.preprocessing import zscore
from repro.stream import (
    ManifestLog,
    SegmentInfo,
    StreamManifest,
    StreamStore,
)
from repro.stream.manifest import manifest_filename


def _manifest(generation: int = 1, **overrides) -> StreamManifest:
    fields = dict(
        generation=generation,
        sequence_length=16,
        wal=f"wal-{generation:06d}.log",
        next_segment=0,
        segments=(),
        tombstones=(),
        retired=(),
    )
    fields.update(overrides)
    return StreamManifest(**fields)


@pytest.fixture
def log(tmp_path):
    return ManifestLog(tmp_path, fsync=False)


class TestManifestLog:
    def test_commit_load_roundtrip(self, log):
        manifest = _manifest(
            segments=(
                SegmentInfo(
                    file="segment-000000.pages",
                    count=2,
                    names=("a", "b"),
                ),
            ),
            tombstones=("dead",),
        )
        path = log.commit(manifest)
        assert log.load(path) == manifest

    def test_commit_refuses_overwrite(self, log):
        log.commit(_manifest())
        with pytest.raises(CorruptionError):
            log.commit(_manifest())

    def test_candidates_newest_first(self, log):
        for generation in (1, 2, 3):
            log.commit(_manifest(generation))
        assert [gen for gen, _ in log.candidates()] == [3, 2, 1]

    def test_tampered_body_fails_crc(self, log, tmp_path):
        path = log.commit(_manifest())
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        document["next_segment"] = 99  # valid JSON, wrong checksum
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(CorruptionError, match="checksum"):
            log.load(path)

    def test_generation_must_match_filename(self, log, tmp_path):
        path = log.commit(_manifest(2))
        renamed = os.path.join(tmp_path, manifest_filename(7))
        os.rename(path, renamed)
        with pytest.raises(CorruptionError, match="generation"):
            log.load(renamed)

    def test_unparseable_file_is_corruption(self, log, tmp_path):
        path = tmp_path / manifest_filename(1)
        path.write_text("{ not json")
        with pytest.raises(CorruptionError):
            log.load(path)

    def test_missing_file_is_corruption(self, log, tmp_path):
        with pytest.raises(CorruptionError):
            log.load(os.path.join(tmp_path, manifest_filename(4)))

    def test_quarantine_moves_aside_without_clobbering(self, log):
        path_1 = log.commit(_manifest(1))
        first = log.quarantine(path_1)
        path_2 = log.commit(_manifest(1))  # slot free again
        second = log.quarantine(path_2)
        assert first.endswith(".quarantined")
        assert second != first and os.path.exists(second)

    def test_zero_padded_names_sort_numerically(self, log):
        # The reverse sort is on the parsed integer, not the string, so
        # generation 10 beats generation 9.
        for generation in (9, 10):
            log.commit(_manifest(generation))
        assert log.candidates()[0][0] == 10

    def test_segment_info_cross_checks_names(self):
        with pytest.raises(CorruptionError):
            SegmentInfo(file="s.pages", count=3, names=("only-one",))

    def test_generation_zero_rejected(self):
        with pytest.raises(CorruptionError):
            _manifest(0)


class TestStoreAdoption:
    """Store-level manifest scenarios from the satellite checklist."""

    def _seed(self, directory, rows: int = 6, days: int = 32):
        rng = np.random.default_rng(7)
        store = StreamStore(directory, days, fsync=False)
        series = {
            f"q{i}": rng.integers(0, 100, size=days).astype(float)
            for i in range(rows)
        }
        for name, values in series.items():
            store.append(name, values)
        return store, series

    def test_empty_directory_needs_sequence_length(self, tmp_path):
        with pytest.raises(CorruptionError):
            StreamStore(tmp_path / "empty")

    def test_empty_directory_creates_genesis(self, tmp_path):
        with StreamStore(tmp_path / "fresh", 16, fsync=False) as store:
            assert store.recovery.created
            assert store.generation == 1
            assert len(store) == 0 and store.names() == ()

    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        directory = tmp_path / "stream"
        store, _ = self._seed(directory)
        store.seal()
        newest = store.manifest_path()
        store.close()
        with open(newest, "r+b") as handle:
            handle.seek(200)
            handle.write(b"XX")
        with StreamStore(directory, fsync=False) as reopened:
            # Generation 2 is quarantined; generation 1 (empty, genesis)
            # is adopted, and the WAL it references was rotated away by
            # the seal — the sealed batch is the price of hand-corrupted
            # metadata, but the store opens and keeps working.
            assert reopened.recovery.manifests_quarantined == 1
            assert reopened.generation == 1
            reopened.append("after", np.arange(32, dtype=float) + 1)
            assert "after" in reopened.names()
        assert any(
            entry.endswith(".quarantined")
            for entry in os.listdir(directory)
        )

    def test_corrupt_newest_falls_back_to_data_bearing_generation(
        self, tmp_path
    ):
        directory = tmp_path / "stream"
        store, series = self._seed(directory)
        store.seal()  # generation 2: segment with all rows
        store.append("late", np.arange(32, dtype=float))
        store.seal()  # generation 3: second segment
        query = np.zeros(32)
        newest = store.manifest_path()
        store.close()
        with open(newest, "r+b") as handle:
            handle.seek(120)
            handle.write(b"??")
        with StreamStore(directory, fsync=False) as reopened:
            # Fallback lands on generation 2: every row it sealed, and
            # nothing of the generation whose metadata was destroyed.
            assert reopened.generation == 2
            assert set(reopened.names()) == set(series)
            got = {
                (n.name, round(n.distance, 12))
                for n in reopened.search(query, 3)[0]
            }
        # Bit-identical to an index built outside the stream stack over
        # the generation-2 population.
        reference = get_index(
            "scan",
            np.stack([zscore(row) for row in series.values()]),
            names=list(series),
        )
        expected = {
            (n.name, round(n.distance, 12))
            for n in reference.search(query, 3)[0]
        }
        assert got == expected

    def test_missing_segment_file_invalidates_generation(self, tmp_path):
        directory = tmp_path / "stream"
        store, _ = self._seed(directory)
        store.seal()
        segment = store.segment_files()[0]
        store.close()
        os.remove(os.path.join(directory, segment))
        with StreamStore(directory, fsync=False) as reopened:
            assert reopened.recovery.manifests_quarantined == 1
            assert reopened.generation == 1

    def test_sequence_length_mismatch_on_reopen(self, tmp_path):
        directory = tmp_path / "stream"
        store, _ = self._seed(directory)
        store.close()
        with pytest.raises(StorageError, match="32-day"):
            StreamStore(directory, 64)

    def test_concurrent_reader_survives_compaction(self, tmp_path):
        directory = tmp_path / "stream"
        writer, series = self._seed(directory)
        writer.seal()
        writer.append("extra", np.arange(32, dtype=float) + 3)
        writer.seal()
        writer.delete(next(iter(series)))
        query = np.arange(32, dtype=float) % 5

        reader = StreamStore(directory, fsync=False)
        try:
            # The reader adopted the pre-delete generation (tombstones
            # ride the WAL until a seal, so its WAL replay does see the
            # delete): both stores answer from the same logical state.
            before = {
                (n.name, round(n.distance, 12))
                for n in reader.search(query, 4)[0]
            }
            old_segments = [
                os.path.join(directory, f) for f in reader.segment_files()
            ]
            writer.compact()
            for path in old_segments:
                assert not os.path.exists(path)  # physically retired
            # The reader's generation is gone from disk, but its open
            # page-store handles keep serving (unlinked-but-open), and
            # a fresh index build over them still answers identically.
            after = {
                (n.name, round(n.distance, 12))
                for n in reader.search(query, 4, backend="scan")[0]
            }
            writer_view = {
                (n.name, round(n.distance, 12))
                for n in writer.search(query, 4)[0]
            }
            assert after == before == writer_view
        finally:
            reader.close()
            writer.close()
