"""Tests for the R-tree and the GEMINI feature-space baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SeriesMismatchError
from repro.index import SearchStats, distances_to_query
from repro.index.rtree import GeminiRTreeIndex, RTree, gemini_features
from repro.spectral import Spectrum
from repro.timeseries import zscore


def make_points(count=200, dims=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, dims))


class TestRTree:
    def test_insert_and_invariants(self):
        points = make_points()
        tree = RTree(dimensions=4, capacity=8)
        for i, point in enumerate(points):
            tree.insert(point, i)
        assert len(tree) == len(points)
        tree.check_invariants()

    @pytest.mark.parametrize("capacity", [4, 6, 16, 50])
    def test_invariants_across_capacities(self, capacity):
        points = make_points(count=120, seed=capacity)
        tree = RTree(dimensions=4, capacity=capacity)
        for i, point in enumerate(points):
            tree.insert(point, i)
        tree.check_invariants()

    def test_nearest_iter_is_sorted_and_complete(self):
        points = make_points(count=60)
        tree = RTree(dimensions=4, capacity=6)
        for i, point in enumerate(points):
            tree.insert(point, i)
        query = np.zeros(4)
        results = list(tree.nearest_iter(query))
        distances = [d for d, _ in results]
        assert distances == sorted(distances)
        assert sorted(row for _, row in results) == list(range(60))
        truth = np.sort(np.linalg.norm(points, axis=1))
        np.testing.assert_allclose(distances, truth, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2000))
    def test_property_first_neighbor_exact(self, seed):
        points = make_points(count=40, dims=3, seed=seed)
        tree = RTree(dimensions=3, capacity=5)
        for i, point in enumerate(points):
            tree.insert(point, i)
        rng = np.random.default_rng(seed + 1)
        query = rng.normal(size=3)
        distance, row = next(iter(tree.nearest_iter(query)))
        truth = np.linalg.norm(points - query, axis=1)
        assert distance == pytest.approx(truth.min(), abs=1e-9)
        assert truth[row] == pytest.approx(truth.min(), abs=1e-9)

    def test_empty_tree_yields_nothing(self):
        tree = RTree(dimensions=2)
        assert list(tree.nearest_iter(np.zeros(2))) == []

    def test_stats_counted(self):
        points = make_points(count=50)
        tree = RTree(dimensions=4, capacity=5)
        for i, point in enumerate(points):
            tree.insert(point, i)
        stats = SearchStats()
        next(iter(tree.nearest_iter(np.zeros(4), stats)))
        assert stats.nodes_visited >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RTree(dimensions=0)
        with pytest.raises(ValueError):
            RTree(dimensions=2, capacity=3)
        tree = RTree(dimensions=2)
        with pytest.raises(SeriesMismatchError):
            tree.insert(np.zeros(3), 0)
        with pytest.raises(SeriesMismatchError):
            list(tree.nearest_iter(np.zeros(3)))


class TestGeminiFeatures:
    def test_lower_bounding_property(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            x, y = zscore(rng.normal(size=64)), zscore(rng.normal(size=64))
            feature_distance = np.linalg.norm(
                gemini_features(x, 6) - gemini_features(y, 6)
            )
            assert feature_distance <= np.linalg.norm(x - y) + 1e-9

    def test_accepts_spectrum(self):
        x = zscore(np.sin(np.arange(32.0)))
        via_values = gemini_features(x, 4)
        via_spectrum = gemini_features(Spectrum.from_series(x), 4)
        np.testing.assert_allclose(via_values, via_spectrum)

    def test_dimensionality(self):
        x = np.sin(np.arange(64.0))
        assert gemini_features(x, 8).size == 16


class TestGeminiRTreeIndex:
    def make_db(self, count=120, n=64, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        return np.array(
            [
                zscore(
                    np.sin(2 * np.pi * t / [8, 16][i % 2] + rng.uniform(0, 6))
                    + 0.5 * rng.normal(size=n)
                )
                for i in range(count)
            ]
        )

    def test_exactness(self):
        matrix = self.make_db()
        index = GeminiRTreeIndex(matrix, k=8)
        rng = np.random.default_rng(5)
        for _ in range(8):
            query = zscore(rng.normal(size=64))
            hits, _ = index.search(query, k=3)
            truth = np.sort(distances_to_query(matrix, query))[:3]
            np.testing.assert_allclose(
                [h.distance for h in hits], truth, atol=1e-9
            )

    def test_verification_is_partial(self):
        matrix = self.make_db()
        index = GeminiRTreeIndex(matrix, k=8)
        _, stats = index.search(matrix[0], k=1)
        assert stats.full_retrievals < len(matrix)
        assert stats.bound_computations >= stats.full_retrievals

    def test_names_and_validation(self):
        matrix = self.make_db(count=30)
        names = [f"q{i}" for i in range(30)]
        index = GeminiRTreeIndex(matrix, names=names)
        hits, _ = index.search(matrix[4], k=1)
        assert hits[0].name == "q4"
        with pytest.raises(SeriesMismatchError):
            index.search(np.zeros(5), k=1)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=0)
        with pytest.raises(SeriesMismatchError):
            GeminiRTreeIndex(np.zeros(5))
        with pytest.raises(SeriesMismatchError):
            GeminiRTreeIndex(matrix, names=["x"])


class TestBatchedFeatures:
    """The batched featuriser behind the R-tree's fast build."""

    def test_matches_scalar_features_exactly(self):
        from repro.index.rtree import gemini_features_matrix

        rng = np.random.default_rng(5)
        for n in (32, 33, 64):
            matrix = rng.normal(size=(21, n))
            stacked = np.stack([gemini_features(row, 8) for row in matrix])
            assert np.array_equal(gemini_features_matrix(matrix, 8), stacked)

    def test_index_build_unchanged_by_batching(self):
        """End to end: the tree built from batched features answers
        identically to per-row feature queries."""
        rng = np.random.default_rng(6)
        matrix = np.stack([zscore(rng.normal(size=64)) for _ in range(50)])
        index = GeminiRTreeIndex(matrix, k=6)
        query = zscore(rng.normal(size=64))
        hits, _ = index.search(query, k=5)
        brute = np.linalg.norm(matrix - query, axis=1)
        expected = sorted(
            range(len(matrix)), key=lambda i: (brute[i], i)
        )[:5]
        assert [h.seq_id for h in hits] == expected
