"""Tests for the Table-1 storage budgeting."""

import pytest

from repro.compression import StorageBudget
from repro.exceptions import CompressionError


class TestAccounting:
    def test_paper_configurations(self):
        # The paper's three figure configurations: c = 8, 16, 32.
        for c, best in [(8, 7), (16, 14), (32, 28)]:
            budget = StorageBudget(c)
            assert budget.first_k == c
            assert budget.best_k == best
            assert budget.doubles == 2 * c + 1

    def test_best_k_formula_matches_paper(self):
        # floor(c / 1.125) == floor(16c / 18)
        for c in range(2, 200):
            assert StorageBudget(c).best_k == int(c / 1.125)

    def test_label(self):
        assert StorageBudget(16).label() == "2*(16)+1 doubles"

    def test_k_for(self):
        budget = StorageBudget(8)
        assert budget.k_for("gemini") == 8
        assert budget.k_for("wang") == 8
        assert budget.k_for("best_min") == 7
        assert budget.k_for("best_error") == 7
        assert budget.k_for("best_min_error") == 7

    def test_unknown_method(self):
        with pytest.raises(CompressionError):
            StorageBudget(8).k_for("nope")
        with pytest.raises(CompressionError):
            StorageBudget(8).compressor("nope")

    def test_too_small_budget(self):
        with pytest.raises(CompressionError):
            StorageBudget(1)


class TestCompressorFactory:
    def test_equal_storage_in_doubles(self):
        """All five methods must cost at most the budget, and nearly all of it."""
        import numpy as np

        from repro.spectral import Spectrum
        from repro.timeseries import zscore

        rng = np.random.default_rng(0)
        spectrum = Spectrum.from_series(zscore(rng.normal(size=256)))
        budget = StorageBudget(16)
        for method, compressor in budget.compressors().items():
            sketch = compressor.compress(spectrum)
            assert sketch.storage_doubles() <= budget.doubles + 1e-9, method
            assert sketch.storage_doubles() >= budget.doubles - 3, method

    def test_methods_tagged_correctly(self):
        budget = StorageBudget(8)
        compressors = budget.compressors()
        assert set(compressors) == {
            "gemini",
            "wang",
            "best_min",
            "best_error",
            "best_min_error",
        }
        for method, compressor in compressors.items():
            assert compressor.method == method
