"""Name-based lookup of the scalar bound algorithms.

The evaluation harness, the VP-tree and the tests all refer to bounds by
the method names used in the paper's figures; this registry maps those
names to the scalar implementations.  (The batch kernels keep their own
parallel table in :mod:`repro.bounds.batch`.)
"""

from __future__ import annotations

from typing import Callable

from repro.bounds.best_error import best_error_bounds, wang_bounds
from repro.bounds.best_min import best_min_bounds
from repro.bounds.best_min_error import best_min_error_bounds
from repro.bounds.core import BoundPair
from repro.bounds.gemini import gemini_bounds
from repro.bounds.safe import best_min_error_safe_bounds
from repro.compression.base import SpectralSketch
from repro.exceptions import CompressionError
from repro.spectral.dft import Spectrum

__all__ = ["BOUND_FUNCTIONS", "bounds_for", "get_bound_function"]

BoundFunction = Callable[[Spectrum, SpectralSketch], BoundPair]

BOUND_FUNCTIONS: dict[str, BoundFunction] = {
    "gemini": gemini_bounds,
    "wang": wang_bounds,
    "best_min": best_min_bounds,
    "best_error": best_error_bounds,
    "best_min_error": best_min_error_bounds,
    "adaptive_best_min_error": best_min_error_bounds,
    "best_min_error_safe": best_min_error_safe_bounds,
}


def get_bound_function(method: str) -> BoundFunction:
    """The scalar bound implementation registered under ``method``."""
    try:
        return BOUND_FUNCTIONS[method]
    except KeyError:
        raise CompressionError(f"unknown bound method {method!r}") from None


def bounds_for(
    query: Spectrum, sketch: SpectralSketch, method: str | None = None
) -> BoundPair:
    """Bounds between a full query and a sketch.

    ``method`` defaults to the sketch's own method tag, so a sketch
    produced by e.g. :class:`~repro.compression.WangCompressor`
    automatically gets the Wang bounds.
    """
    return get_bound_function(method or sketch.method)(query, sketch)
