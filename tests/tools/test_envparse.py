"""The shared environment-knob parser: loud, typed, variable-naming.

Every ``REPRO_*`` knob goes through one helper family
(:mod:`repro.tools.envparse`), so a mistyped value fails the same way
everywhere: a typed error that names the variable and echoes the raw
value, never a silent fall-through to the default.
"""

import pytest

from repro.exceptions import ReproError, StorageError
from repro.tools import parse_env_float, parse_env_int, parse_env_optional_int

VAR = "REPRO_TEST_KNOB"


class TestParseEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert parse_env_int(VAR, 7) == 7

    def test_blank_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert parse_env_int(VAR, 7) == 7

    def test_set_value_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, " 42 ")
        assert parse_env_int(VAR, 7) == 42

    def test_junk_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(VAR, "not-a-number")
        with pytest.raises(ReproError, match=VAR) as excinfo:
            parse_env_int(VAR, 7)
        assert "not-a-number" in str(excinfo.value)

    def test_float_is_not_an_int(self, monkeypatch):
        monkeypatch.setenv(VAR, "3.5")
        with pytest.raises(ReproError, match=VAR):
            parse_env_int(VAR, 7)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(ReproError, match=VAR):
            parse_env_int(VAR, 7, minimum=1)
        assert parse_env_int(VAR, 7, minimum=0) == 0

    def test_custom_error_type(self, monkeypatch):
        monkeypatch.setenv(VAR, "junk")
        with pytest.raises(StorageError, match=VAR):
            parse_env_int(VAR, 7, error=StorageError)


class TestParseEnvOptionalInt:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert parse_env_optional_int(VAR) is None

    def test_blank_is_none(self, monkeypatch):
        monkeypatch.setenv(VAR, "")
        assert parse_env_optional_int(VAR) is None

    def test_set_value_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, "3")
        assert parse_env_optional_int(VAR) == 3

    def test_junk_raises(self, monkeypatch):
        monkeypatch.setenv(VAR, "later")
        with pytest.raises(ReproError, match=VAR):
            parse_env_optional_int(VAR)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(ReproError, match=VAR):
            parse_env_optional_int(VAR, minimum=1)


class TestParseEnvFloat:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert parse_env_float(VAR, 0.25) == 0.25

    def test_set_value_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, "0.5")
        assert parse_env_float(VAR, 0.0) == 0.5

    def test_integer_literal_is_a_float(self, monkeypatch):
        monkeypatch.setenv(VAR, "2")
        assert parse_env_float(VAR, 0.0) == 2.0

    def test_junk_raises(self, monkeypatch):
        monkeypatch.setenv(VAR, "half")
        with pytest.raises(ReproError, match=VAR):
            parse_env_float(VAR, 0.0)

    @pytest.mark.parametrize("raw", ["nan", "inf", "-inf"])
    def test_non_finite_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        with pytest.raises(ReproError, match=VAR):
            parse_env_float(VAR, 0.0)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "-0.1")
        with pytest.raises(ReproError, match=VAR):
            parse_env_float(VAR, 0.0, minimum=0.0)


class TestKnobsAreWired:
    """The real knobs route through the shared parser (loud on junk)."""

    def test_verify_block(self, monkeypatch):
        from repro.engine.core import verify_block_size

        monkeypatch.setenv("REPRO_VERIFY_BLOCK", "huge")
        with pytest.raises(ReproError, match="REPRO_VERIFY_BLOCK"):
            verify_block_size()

    def test_shards(self, monkeypatch):
        from repro.cluster.build import default_shard_count

        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ReproError, match="REPRO_SHARDS"):
            default_shard_count()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(ReproError, match="REPRO_SHARDS"):
            default_shard_count()

    def test_cache_bytes_keeps_storage_error(self, monkeypatch):
        from repro.storage.cache import cache_budget_from_env

        monkeypatch.setenv("REPRO_CACHE_BYTES", "a-lot")
        with pytest.raises(StorageError, match="REPRO_CACHE_BYTES"):
            cache_budget_from_env()

    def test_approx_epsilon(self, monkeypatch):
        from repro.engine import env_approx_policy

        monkeypatch.setenv("REPRO_APPROX_EPSILON", "loose")
        with pytest.raises(ReproError, match="REPRO_APPROX_EPSILON"):
            env_approx_policy()

    def test_approx_patience(self, monkeypatch):
        from repro.engine import env_approx_policy

        monkeypatch.delenv("REPRO_APPROX_EPSILON", raising=False)
        monkeypatch.setenv("REPRO_APPROX_PATIENCE", "0")
        with pytest.raises(ReproError, match="REPRO_APPROX_PATIENCE"):
            env_approx_policy()
