"""Operational fault drill: ``python -m repro.evaluation --faults [SEED]``.

The drill is the resilience layer's end-to-end acceptance run, scripted
so an operator (or CI) can replay it with one flag:

1. **baseline** — every registered index backend answers a kNN workload
   fault-free;
2. **transient faults** — the same workload through a seeded
   :class:`~repro.resilience.FaultPlan` of bounded transient streaks;
   the engine's retry path must absorb every hiccup and the answers
   must be *identical* to the baseline;
3. **permanent corruption** — one sequence is corrupted for good; every
   backend must keep answering (``degraded`` results, the victim
   quarantined and reported) instead of raising;
4. **on-disk corruption** — a real :class:`~repro.storage.SequencePageStore`
   file gets a flipped byte; the page CRC must surface it as a typed
   :class:`~repro.exceptions.CorruptionError` and the store's
   :meth:`~repro.storage.SequencePageStore.scrub` must locate the victim.

Everything is deterministic in the seed; the printed obs counters
(retries, giveups, quarantines, faults injected) come from the same
``resilience.*`` instrumentation production would report.
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np

from repro import obs
from repro.datagen.generator import QueryLogGenerator
from repro.engine.registry import available_indexes, get_index
from repro.exceptions import CorruptionError
from repro.resilience import (
    FaultPlan,
    FaultyIndex,
    FaultyStore,
    RetryingStore,
    quarantine_of,
)
from repro.storage.pagestore import SequencePageStore

__all__ = ["fault_drill"]

_RESILIENCE_COUNTERS = (
    "resilience.faults_injected",
    "resilience.retries",
    "resilience.giveups",
    "resilience.quarantines",
    "resilience.degraded_fetches",
    "resilience.fallback_scans",
    "resilience.corrupt_pages",
    "resilience.scrub_failures",
)


def _answers(index, queries, k):
    """The drill's comparable view of a workload: (id, distance) pairs."""
    out = []
    for query in queries:
        neighbors, stats = index.search(query, k)
        out.append(
            (
                tuple((n.seq_id, round(n.distance, 12)) for n in neighbors),
                stats.degraded,
                stats.quarantined_ids,
            )
        )
    return out


def fault_drill(
    db_size: int = 256,
    days: int = 128,
    queries: int = 5,
    seed: int = 11,
    k: int = 5,
    out=None,
) -> bool:
    """Run the resilience acceptance drill; ``True`` when all checks pass.

    Prints one section per backend plus the on-disk corruption round
    trip and the run's ``resilience.*`` counters.  Importable for tests
    and scripts; the CLI entry is ``python -m repro.evaluation --faults``.
    """
    out = out or sys.stdout
    failures: list[str] = []

    generator = QueryLogGenerator(seed=seed, days=days)
    matrix = generator.synthetic_database(db_size).standardize().as_matrix()
    query_matrix = (
        generator.queries_outside_database(queries).standardize().as_matrix()
    )
    victim = db_size // 2

    print(
        f"fault drill: {db_size} sequences x {days} days, "
        f"{queries} queries, k={k}, seed {seed}",
        file=out,
    )

    with obs.observed() as registry:
        for name in available_indexes():
            clean = get_index(name, matrix)
            baseline = _answers(clean, query_matrix, k)

            # Transient streaks: retries must make the faults invisible.
            noisy = FaultyIndex(
                get_index(name, matrix),
                FaultPlan(seed=seed, transient_rate=0.2),
            )
            transient = _answers(noisy, query_matrix, k)
            identical = [b[0] for b in baseline] == [t[0] for t in transient]
            absorbed = not any(t[1] for t in transient)

            # Permanent corruption: degraded answers, victim quarantined.
            # The victim's own sequence rides along as one extra probe —
            # it is always its own best candidate, so every backend is
            # guaranteed to attempt (and fail) the corrupted fetch.
            probes = np.vstack([query_matrix, matrix[victim : victim + 1]])
            broken = FaultyIndex(get_index(name, matrix), FaultPlan(), [victim])
            degraded = _answers(broken, probes, k)
            # Quarantining one id may cost each answer at most one slot:
            # the victim can already have crowded a candidate out of the
            # generator's shortlist, and degradation cannot resurrect it.
            served = all(len(d[0]) >= k - 1 for d in degraded)
            # A query that pruned the victim away is legitimately clean;
            # every query that *did* touch it must carry the degraded
            # flag and name the victim.  Matrix-backed traversals (the
            # M-tree) may instead pay the victim's exact distance from
            # their in-memory copy — the fetch seam the harness corrupts
            # is then never exercised, which the drill accepts as "fault
            # not reachable" rather than a degradation failure.
            hits = [d for d in degraded if d[1]]
            flagged = all(victim in d[2] for d in hits)
            quarantined = victim in quarantine_of(broken)
            paid_path = any(
                victim in {seq_id for seq_id, _ in d[0]} for d in degraded
            )
            contained = (bool(hits) and quarantined) or (
                not hits and paid_path
            )

            verdicts = {
                "transient answers identical": identical,
                "transient faults absorbed": absorbed,
                "degraded queries served": served,
                "victim flagged": flagged,
                "victim contained": contained,
            }
            for check, passed in verdicts.items():
                if not passed:
                    failures.append(f"{name}: {check}")
            status = "ok" if all(verdicts.values()) else "FAIL"
            print(f"  {name:<8s} {status:<4s} " + ", ".join(
                f"{check}={'yes' if passed else 'NO'}"
                for check, passed in verdicts.items()
            ), file=out)

        # On-disk corruption: CRC catches a flipped byte, scrub finds it.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "drill.pages")
            with SequencePageStore(path, matrix.shape[1]) as store:
                store.append_matrix(matrix)
                offset = store._offset_of(victim) + 11
            with open(path, "r+b") as raw:
                raw.seek(offset)
                byte = raw.read(1)
                raw.seek(offset)
                raw.write(bytes([byte[0] ^ 0x40]))
            with SequencePageStore.open(path) as store:
                try:
                    store.read(victim)
                    crc_caught = False
                except CorruptionError:
                    crc_caught = True
                scrub_found = store.scrub() == (victim,)
                others_fine = store.read(0) is not None
        if not (crc_caught and scrub_found and others_fine):
            failures.append("on-disk corruption round trip")
        print(
            f"  on-disk  {'ok' if crc_caught and scrub_found else 'FAIL':<4s} "
            f"crc_caught={'yes' if crc_caught else 'NO'}, "
            f"scrub_found={'yes' if scrub_found else 'NO'}, "
            f"healthy_reads_ok={'yes' if others_fine else 'NO'}",
            file=out,
        )

        # Store-level composition: RetryingStore over a FaultyStore must
        # read every sequence despite transient streaks.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "retry.pages")
            with SequencePageStore(path, matrix.shape[1]) as store:
                ids = store.append_matrix(matrix[:32])
                retrying = RetryingStore(
                    FaultyStore(store, FaultPlan(seed=seed, transient_rate=0.3))
                )
                reads_ok = all(
                    retrying.read(i).shape == (matrix.shape[1],) for i in ids
                )
        if not reads_ok:
            failures.append("retrying store reads")
        print(
            f"  retry    {'ok' if reads_ok else 'FAIL':<4s} "
            f"all_reads_served={'yes' if reads_ok else 'NO'}",
            file=out,
        )

    print("\n  resilience counters:", file=out)
    for counter in _RESILIENCE_COUNTERS:
        print(f"    {counter:<32s} {registry.counter(counter).value}", file=out)

    if failures:
        print("\nDRILL FAILED: " + "; ".join(failures), file=out)
        return False
    print("\ndrill passed: all backends degrade gracefully", file=out)
    return True
