"""Server placement for co-retrieved queries — the paper's third use case.

The introduction lists three uses for query-log mining; the third is
"Optimization of the search engine (place similar queries in same server,
since they are bound to be retrieved together)".  This module implements
that planner on top of the similarity machinery:

1. build the mutual-k-NN graph of the (standardised) demand shapes using
   the compressed index — an edge means two queries look alike and will
   co-peak;
2. cluster the graph into demand communities (greedy modularity, via
   :mod:`networkx`);
3. pack the communities onto ``servers`` bins, balancing total demand
   (greedy longest-processing-time), while keeping each community — and
   therefore each co-retrieved family — on one server whenever it fits.

The output is a :class:`PlacementPlan` with per-server assignments, load
shares and a co-location score that the tests assert on (the cinema
family must land together, and the loads must balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx
import numpy as np

from repro.exceptions import SeriesMismatchError, UnknownQueryError
from repro.index.flat import FlatSketchIndex
from repro.timeseries.collection import TimeSeriesCollection

__all__ = ["PlacementPlan", "plan_placement"]


@dataclass(frozen=True)
class PlacementPlan:
    """A server assignment for every query.

    Attributes
    ----------
    assignments:
        Query name -> server id (``0 .. servers-1``).
    loads:
        Total daily demand per server (sum of the members' mean counts).
    communities:
        The demand communities found, as tuples of query names.
    """

    assignments: Mapping[str, int]
    loads: tuple[float, ...]
    communities: tuple[tuple[str, ...], ...]

    @property
    def servers(self) -> int:
        return len(self.loads)

    def members(self, server: int) -> tuple[str, ...]:
        """Queries placed on one server."""
        if not 0 <= server < self.servers:
            raise IndexError(f"server {server} out of range")
        return tuple(
            name for name, where in self.assignments.items() if where == server
        )

    def server_of(self, name: str) -> int:
        try:
            return self.assignments[name]
        except KeyError:
            raise UnknownQueryError(name) from None

    def colocated(self, a: str, b: str) -> bool:
        """True when two queries share a server."""
        return self.server_of(a) == self.server_of(b)

    def load_imbalance(self) -> float:
        """Max server load divided by the mean load (1.0 = perfect)."""
        loads = np.asarray(self.loads)
        positive = loads[loads > 0]
        if positive.size == 0:
            return 1.0
        return float(loads.max() / loads.mean())


def _knn_graph(
    collection: TimeSeriesCollection, neighbors: int, compressor=None
) -> nx.Graph:
    """Mutual-k-NN graph over demand shapes (edges weighted by affinity)."""
    standardized = collection.standardize()
    matrix = standardized.as_matrix()
    index = FlatSketchIndex(
        matrix, compressor=compressor, names=list(collection.names)
    )
    names = collection.names
    graph = nx.Graph()
    graph.add_nodes_from(names)
    neighbor_sets: dict[str, dict[str, float]] = {}
    for position, name in enumerate(names):
        hits, _ = index.search(
            matrix[position], k=min(neighbors + 1, len(names))
        )
        neighbor_sets[name] = {
            hit.name: hit.distance for hit in hits if hit.name != name
        }
    for name, candidates in neighbor_sets.items():
        for other, distance in candidates.items():
            if name in neighbor_sets.get(other, {}):  # mutual
                graph.add_edge(
                    name, other, weight=1.0 / (1.0 + distance)
                )
    return graph


def plan_placement(
    collection: TimeSeriesCollection,
    servers: int,
    neighbors: int = 3,
    compressor=None,
) -> PlacementPlan:
    """Plan a balanced, similarity-preserving server assignment.

    Parameters
    ----------
    collection:
        The query database (raw counts; standardisation is internal).
    servers:
        Number of servers to spread the queries over.
    neighbors:
        k for the mutual-k-NN similarity graph.
    compressor:
        Optional compressor for the underlying index.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if len(collection) == 0:
        raise SeriesMismatchError("cannot place an empty collection")
    if neighbors < 1:
        raise ValueError(f"neighbors must be >= 1, got {neighbors}")

    graph = _knn_graph(collection, neighbors, compressor)
    communities = [
        tuple(sorted(community))
        for community in nx.community.greedy_modularity_communities(
            graph, weight="weight"
        )
    ]
    # Deterministic order: heaviest demand first (LPT packing).
    demand = {name: float(collection[name].mean) for name in collection.names}
    communities.sort(
        key=lambda members: (-sum(demand[m] for m in members), members)
    )

    loads = [0.0] * servers
    assignments: dict[str, int] = {}
    for members in communities:
        community_demand = sum(demand[m] for m in members)
        target = int(np.argmin(loads))
        # Keep the community together unless it alone dwarfs a fair share
        # (then split it by member, still LPT).
        fair_share = sum(demand.values()) / servers
        if community_demand <= 1.5 * fair_share or servers == 1:
            for member in members:
                assignments[member] = target
            loads[target] += community_demand
        else:
            for member in sorted(members, key=lambda m: -demand[m]):
                where = int(np.argmin(loads))
                assignments[member] = where
                loads[where] += demand[member]

    return PlacementPlan(
        assignments=assignments,
        loads=tuple(loads),
        communities=tuple(communities),
    )
