"""Ingest-throughput experiment: the fast build path vs the reference.

The paper's database exists *before* any query runs: up to :math:`2^{15}`
sequences of length 1024 are transformed, sketched and persisted, and the
Lernaean Hydra evaluations (Echihabi et al.) show that at this scale the
build dominates end-to-end time.  This experiment times the two halves of
the fast ingest pipeline against their per-row references:

* **compression** — :meth:`SketchDatabase.from_matrix` (one batched
  transform + vectorised top-k selection) vs
  :meth:`SketchDatabase.from_matrix_scalar` (one ``Spectrum`` and one
  sketch object per row);
* **store write** — the bulk :meth:`SequencePageStore.append_matrix`
  (one encode pass, one ``write`` syscall) vs a loop of per-row
  :meth:`SequencePageStore.append` calls.

Equivalence is asserted inside the experiment, not assumed: the batch
database must compare equal array-for-array with the scalar one, and the
bulk-written file must be byte-identical to the per-row file.  A third
section times :func:`repro.cluster.build_sharded` serially vs on the
fork pool, when shard counts are requested.
"""

from __future__ import annotations

import filecmp
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.compression.database import SketchDatabase
from repro.evaluation.reporting import format_table
from repro.storage.pagestore import SequencePageStore

__all__ = [
    "IngestResult",
    "IngestRow",
    "databases_equal",
    "ingest_experiment",
]


@dataclass(frozen=True)
class IngestRow:
    """One timed ingest configuration.

    ``cpu_seconds`` (:func:`time.process_time`: user + system time of
    this process) is the headline cost and the basis of every speedup:
    it charges exactly the work the code path performs — including its
    own syscalls — while staying immune to CPU-quota throttling,
    scheduler steal and background writeback, none of which the code
    imposes.  ``wall_seconds`` is recorded alongside for context.
    """

    path: str
    wall_seconds: float
    cpu_seconds: float
    sequences_per_second: float


@dataclass(frozen=True)
class IngestResult:
    """Timings for the per-row reference and the batched ingest path."""

    database_size: int
    sequence_length: int
    compress_scalar: IngestRow
    compress_batch: IngestRow
    store_scalar: IngestRow
    store_bulk: IngestRow
    shard_serial_seconds: float | None
    shard_parallel_seconds: float | None
    shard_count: int | None
    build_workers: int | None
    equivalent: bool

    @property
    def compress_speedup(self) -> float:
        return self.compress_scalar.cpu_seconds / max(
            self.compress_batch.cpu_seconds, 1e-12
        )

    @property
    def store_speedup(self) -> float:
        return self.store_scalar.cpu_seconds / max(
            self.store_bulk.cpu_seconds, 1e-12
        )

    @property
    def ingest_speedup(self) -> float:
        """End-to-end (compress + persist) batch-over-scalar speedup."""
        scalar = (
            self.compress_scalar.cpu_seconds + self.store_scalar.cpu_seconds
        )
        batch = self.compress_batch.cpu_seconds + self.store_bulk.cpu_seconds
        return scalar / max(batch, 1e-12)

    @property
    def shard_build_speedup(self) -> float | None:
        if self.shard_serial_seconds is None:
            return None
        return self.shard_serial_seconds / max(
            self.shard_parallel_seconds, 1e-12
        )

    def rows(self) -> tuple[IngestRow, ...]:
        return (
            self.compress_scalar,
            self.compress_batch,
            self.store_scalar,
            self.store_bulk,
        )

    def as_table(self) -> str:
        body = [
            (
                row.path,
                row.cpu_seconds,
                row.wall_seconds,
                row.sequences_per_second,
            )
            for row in self.rows()
        ]
        table = format_table(
            ("ingest path", "cpu s", "wall s", "seq/s"),
            body,
            title=(
                f"ingest pipeline, {self.database_size} seqs x "
                f"{self.sequence_length} days"
            ),
            digits=3,
        )
        lines = [
            table,
            f"speedups: compress {self.compress_speedup:.1f}x, "
            f"store {self.store_speedup:.1f}x, "
            f"end-to-end {self.ingest_speedup:.1f}x",
        ]
        if self.shard_serial_seconds is not None:
            lines.append(
                f"shard build ({self.shard_count} shards): serial "
                f"{self.shard_serial_seconds:.3f}s, "
                f"{self.build_workers}-worker pool "
                f"{self.shard_parallel_seconds:.3f}s "
                f"({self.shard_build_speedup:.1f}x)"
            )
        lines.append(
            "batch/scalar equivalence: "
            + ("bit-identical" if self.equivalent else "MISMATCH")
        )
        return "\n".join(lines)


def databases_equal(left: SketchDatabase, right: SketchDatabase) -> bool:
    """Exact array-for-array equality of two packed sketch databases."""
    return (
        left.n == right.n
        and left.basis == right.basis
        and left.method == right.method
        and left.names == right.names
        and np.array_equal(left.positions, right.positions)
        and np.array_equal(left.coefficients, right.coefficients)
        and np.array_equal(left.weights, right.weights)
        and np.array_equal(left.errors, right.errors, equal_nan=True)
        and np.array_equal(left.min_powers, right.min_powers, equal_nan=True)
        and np.array_equal(left._widths, right._widths)
    )


def ingest_experiment(
    matrix: np.ndarray,
    tmp_dir,
    compressor=None,
    shards: int | None = None,
    build_workers: int | None = None,
    shard_backend: str = "flat",
    repeats: int = 3,
) -> IngestResult:
    """Time batch vs per-row ingest over ``matrix``, asserting equivalence.

    Parameters
    ----------
    matrix:
        The ``(count, n)`` database to ingest.
    tmp_dir:
        Scratch directory for the page-store files.
    compressor:
        Any fixed-k compressor (default ``BestMinErrorCompressor(14)``,
        the paper's headline configuration).
    shards / build_workers:
        When both are given, additionally time
        :func:`repro.cluster.build_sharded` with ``build_workers=None``
        (serial) vs the requested pool size.
    shard_backend:
        Registry backend for the shard-build timing.  ``"vptree"`` makes
        the per-shard work dominate (tree construction), which is the
        configuration the parallel-build speedup gate measures.
    repeats:
        Each compress/store leg runs this many times and reports its
        *minimum* CPU and wall time — the standard way to separate the
        cost a code path imposes from scheduler and writeback
        interference.
    """
    from repro.compression.best_k import BestMinErrorCompressor

    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    count, n = matrix.shape
    compressor = compressor or BestMinErrorCompressor(14)

    # One untimed warm-up pass.  The vectorised path's first call pays
    # one-off costs that real ingest amortises — page faults for its
    # large working arrays and pocketfft setup (build_sharded alone
    # invokes it once per shard) — so both paths are timed at steady
    # state, in the same process condition.
    SketchDatabase.from_matrix(matrix, compressor)

    # Every leg is timed ``repeats`` times and reported as the minimum
    # of each clock: the cost the code *imposes*, as opposed to
    # whatever interference (writeback, scheduler steal, CPU-quota
    # throttling) a single run happens to absorb.  The two paths of
    # each pair alternate within a repeat so that both sample the same
    # host conditions.  Each store repeat writes a fresh file after
    # draining outstanding writeback (``os.sync``): on slow disks a
    # leg's wall time would otherwise be inflated by an earlier leg's
    # dirty pages still flushing — a measurement artefact, not an
    # ingest cost.
    def _timed(leg) -> tuple[float, float]:
        wall0, cpu0 = time.perf_counter(), time.process_time()
        leg()
        return time.perf_counter() - wall0, time.process_time() - cpu0

    def _merge(best: tuple[float, float], sample: tuple[float, float]):
        return min(best[0], sample[0]), min(best[1], sample[1])

    inf = float("inf")
    scalar_store = bulk_store = (inf, inf)
    # One file per path, overwritten on every repeat: reusing the same
    # blocks keeps the experiment's footprint flat instead of growing
    # by two matrices per repeat.
    scalar_path = os.path.join(tmp_dir, "ingest-scalar.pages")
    bulk_path = os.path.join(tmp_dir, "ingest-bulk.pages")
    for repeat in range(repeats):
        with SequencePageStore(scalar_path, n) as store:
            os.sync()

            def _per_row_leg(store=store):
                for row in matrix:
                    store.append(row)

            scalar_store = _merge(scalar_store, _timed(_per_row_leg))
        with SequencePageStore(bulk_path, n) as store:
            os.sync()
            bulk_store = _merge(
                bulk_store,
                _timed(lambda store=store: store.append_matrix(matrix)),
            )

    scalar_compress = batch_compress = (inf, inf)
    scalar_db = batch_db = None
    for _ in range(repeats):

        def _scalar_leg():
            nonlocal scalar_db
            scalar_db = SketchDatabase.from_matrix_scalar(matrix, compressor)

        def _batch_leg():
            nonlocal batch_db
            batch_db = SketchDatabase.from_matrix(matrix, compressor)

        scalar_compress = _merge(scalar_compress, _timed(_scalar_leg))
        batch_compress = _merge(batch_compress, _timed(_batch_leg))

    equivalent = databases_equal(scalar_db, batch_db) and filecmp.cmp(
        scalar_path, bulk_path, shallow=False
    )

    shard_serial = shard_parallel = None
    if shards is not None and build_workers is not None:
        from repro.cluster.build import build_sharded

        kwargs = dict(
            shards=shards, backend=shard_backend, compressor=compressor
        )
        os.sync()
        started = time.perf_counter()
        build_sharded(
            matrix,
            directory=os.path.join(tmp_dir, "shards-serial"),
            build_workers=None,
            **kwargs,
        )
        shard_serial = time.perf_counter() - started
        os.sync()
        started = time.perf_counter()
        build_sharded(
            matrix,
            directory=os.path.join(tmp_dir, "shards-parallel"),
            build_workers=build_workers,
            **kwargs,
        )
        shard_parallel = time.perf_counter() - started

    def row(path: str, timing: tuple[float, float]) -> IngestRow:
        wall, cpu = timing
        return IngestRow(path, wall, cpu, count / max(cpu, 1e-12))

    return IngestResult(
        database_size=count,
        sequence_length=n,
        compress_scalar=row("compress per-row", scalar_compress),
        compress_batch=row("compress batch", batch_compress),
        store_scalar=row("store per-row append", scalar_store),
        store_bulk=row("store bulk append_matrix", bulk_store),
        shard_serial_seconds=shard_serial,
        shard_parallel_seconds=shard_parallel,
        shard_count=shards if shard_serial is not None else None,
        build_workers=build_workers if shard_serial is not None else None,
        equivalent=equivalent,
    )
