"""The approximate-tier quality harness: measured recall, not vibes.

The opt-in approximate tier (:mod:`repro.engine.approx`) makes two
different kinds of promise.  The ε relaxation carries a *proof*: every
reported distance is within :math:`(1+\\varepsilon)` of the true
k-th-NN distance, because only candidates whose lower bound already
exceeds the relaxed threshold are skipped.  The patience early-stop
carries *no* proof — it is a heuristic, and its quality must be
measured.  This harness does that measuring, for both knobs together,
the way the Lernaean Hydra evaluations report approximate indexes:

* **recall@k** — fraction of the exact top-k (canonical
  ``(distance, seq_id)`` order) the approximate answer recovered;
* **tightness** — reported k-th distance over true k-th distance, the
  observed counterpart of the :math:`(1+\\varepsilon)` bound (mean and
  worst-case per configuration);
* **work** — exact vs approximate ``full_retrievals``, slack skips and
  patience stops, so a recall number is never quoted without the work
  it saved.

Every engine backend answers through the same shared verifier, but each
generates candidates differently — a slack skip the flat scan takes may
never come up under the VP-tree's ordering — so quality is measured per
backend and per shard count, against that same configuration's own
exact answers (``ApproxPolicy()`` on the identical index: the exactness
contract says that *is* the exact engine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster import build_sharded
from repro.engine import ApproxPolicy, get_index, search_many
from repro.evaluation.reporting import format_table
from repro.exceptions import ReproError

__all__ = [
    "ApproxQualityRow",
    "ApproxQualityResult",
    "approx_quality_experiment",
]

#: The monolithic engine backends measured by default (everything in
#: the registry except the router, which gets its own shard axis).
DEFAULT_BACKENDS = ("flat", "vptree", "mvptree", "mtree", "rtree", "scan")

_EXACT = ApproxPolicy()


@dataclass(frozen=True)
class ApproxQualityRow:
    """One configuration's measured quality and work, over all queries."""

    configuration: str
    backend: str
    #: ``None`` for a monolithic index, else the router's shard count.
    shards: int | None
    recall_at_k: float
    #: Mean reported-kth / true-kth distance ratio (1.0 = exact).
    mean_tightness: float
    #: Worst observed ratio; ≤ 1+ε whenever patience never fired.
    max_tightness: float
    exact_retrievals: int
    approx_retrievals: int
    skipped_approx: int
    #: Queries whose refinement the patience counter stopped early.
    stopped_early_queries: int

    @property
    def work_ratio(self) -> float:
        """Approximate retrievals as a fraction of exact retrievals."""
        if self.exact_retrievals == 0:
            return 1.0
        return self.approx_retrievals / self.exact_retrievals


@dataclass(frozen=True)
class ApproxQualityResult:
    """All measured configurations for one policy and workload."""

    database_size: int
    queries: int
    k: int
    epsilon: float
    patience: int | None
    rows: tuple[ApproxQualityRow, ...]

    @property
    def guarantee_bound(self) -> float:
        """The proved distance bound ``1 + epsilon`` (ε skips only)."""
        return 1.0 + self.epsilon

    @property
    def worst_recall(self) -> float:
        """The lowest recall@k over every measured configuration."""
        return min(row.recall_at_k for row in self.rows)

    def row_for(self, configuration: str) -> ApproxQualityRow:
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise ReproError(f"no row measured for {configuration!r}")

    def as_table(self) -> str:
        rows = [
            (
                row.configuration,
                row.recall_at_k,
                row.mean_tightness,
                row.max_tightness,
                row.work_ratio,
                row.skipped_approx,
                row.stopped_early_queries,
            )
            for row in self.rows
        ]
        patience = "-" if self.patience is None else str(self.patience)
        return format_table(
            (
                "configuration",
                f"recall@{self.k}",
                "tightness",
                "worst",
                "work ratio",
                "skipped",
                "stops",
            ),
            rows,
            title=(
                f"approx quality: {self.database_size} seqs, "
                f"{self.queries} queries, k={self.k}, "
                f"epsilon={self.epsilon}, patience={patience} "
                f"(proved bound {self.guarantee_bound:g}x on skips)"
            ),
            digits=3,
        )


def _top_ids(hits) -> set:
    return {hit.seq_id for hit in hits}


def _kth_distance(hits) -> float:
    return hits[-1].distance if hits else 0.0


def _measure(index, queries, k, policy, configuration, backend, shards):
    """Quality/work row for one built index (exact run, then approx)."""
    exact = search_many(index, queries, k=k, policy=_EXACT)
    approx = search_many(index, queries, k=k, policy=policy)
    overlap = 0
    tightness: list[float] = []
    for (exact_hits, _), (approx_hits, _) in zip(exact, approx):
        overlap += len(_top_ids(exact_hits) & _top_ids(approx_hits))
        true_kth = _kth_distance(exact_hits)
        reported_kth = _kth_distance(approx_hits)
        if true_kth == 0.0:
            tightness.append(1.0 if reported_kth == 0.0 else math.inf)
        else:
            tightness.append(reported_kth / true_kth)
    return ApproxQualityRow(
        configuration=configuration,
        backend=backend,
        shards=shards,
        recall_at_k=overlap / (k * len(queries)),
        mean_tightness=float(np.mean(tightness)),
        max_tightness=float(np.max(tightness)),
        exact_retrievals=sum(s.full_retrievals for _, s in exact),
        approx_retrievals=sum(s.full_retrievals for _, s in approx),
        skipped_approx=sum(s.skipped_approx for _, s in approx),
        stopped_early_queries=sum(1 for _, s in approx if s.stopped_early),
    )


def approx_quality_experiment(
    matrix: np.ndarray,
    queries: np.ndarray,
    *,
    k: int = 10,
    policy: ApproxPolicy | None = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    shard_counts: Sequence[int] = (2,),
    shard_backend: str = "flat",
    seed: int = 0,
) -> ApproxQualityResult:
    """Measure recall@k and tightness for one policy across the engine.

    Every monolithic ``backend`` and every router shard count (over
    ``shard_backend`` shards) is measured against its own exact
    answers on the identical built index, so the comparison isolates
    the policy — same candidates, same verifier, different thresholds.
    ``policy=None`` measures the documented default knobs
    (:meth:`~repro.engine.ApproxPolicy.default`), the ones the
    benchmark gate holds to recall@10 ≥ 0.95.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if policy is None:
        policy = ApproxPolicy.default()
    if policy.exact:
        raise ReproError(
            "approx_quality_experiment needs a non-exact policy; "
            "the exact tier's quality is a theorem, not a measurement"
        )
    if not 1 <= k <= len(matrix):
        raise ReproError(f"k must be in [1, {len(matrix)}], got {k}")

    rows: list[ApproxQualityRow] = []
    for backend in backends:
        kwargs: dict = {}
        if backend in ("vptree", "mvptree"):
            kwargs["seed"] = seed
        index = get_index(backend, matrix, **kwargs)
        rows.append(
            _measure(index, queries, k, policy, backend, backend, None)
        )
    for shards in shard_counts:
        router = build_sharded(
            matrix, shards=int(shards), seed=seed, backend=shard_backend
        )
        try:
            rows.append(
                _measure(
                    router,
                    queries,
                    k,
                    policy,
                    f"{shard_backend}/{int(shards)} shards",
                    shard_backend,
                    int(shards),
                )
            )
        finally:
            router.close()

    return ApproxQualityResult(
        database_size=len(matrix),
        queries=len(queries),
        k=k,
        epsilon=policy.epsilon,
        patience=policy.patience,
        rows=tuple(rows),
    )
