"""Ablation A11: the VP-tree vs the flat compressed protocol as an index.

Section 7.3's evaluation protocol, promoted to an index
(:class:`repro.index.FlatSketchIndex`), against the paper's VP-tree on
identical sketches.  The flat structure bounds *every* object (one fused
kernel call); the tree can skip subtrees but pays per-node overhead.  The
interesting question the paper's section 7.4 implies: how much of the
index's win comes from the bounds and how much from the tree?
"""

import time

import numpy as np

from repro.compression import StorageBudget
from repro.evaluation import format_table
from repro.index import FlatSketchIndex, VPTreeIndex, distances_to_query


def test_ablation_flat_vs_tree(database_matrix, query_matrix, report,
                               benchmark):
    matrix = database_matrix[:4096]
    queries = query_matrix[:10]
    compressor = StorageBudget(16).compressor("best_min_error")

    flat = FlatSketchIndex(matrix, compressor=compressor)
    tree = VPTreeIndex(matrix, compressor=compressor, seed=51)

    rows = []
    work = {}
    for label, index in (("flat (bound everything)", flat),
                         ("vp-tree (prune subtrees)", tree)):
        retrievals = bounds = 0
        started = time.perf_counter()
        for query in queries:
            hits, stats = index.search(query, k=1)
            truth = float(distances_to_query(matrix, query).min())
            assert abs(hits[0].distance - truth) < 1e-9, label
            retrievals += stats.full_retrievals
            bounds += stats.bound_computations
        wall = time.perf_counter() - started
        work[label] = (retrievals, bounds, wall)
        rows.append(
            (label, retrievals / len(queries), bounds / len(queries), wall)
        )

    report(
        format_table(
            ("index", "full retrievals/query", "bound comps/query", "wall s"),
            rows,
            title="ablation A11: flat compressed protocol vs VP-tree (4096 seqs)",
            digits=2,
        ),
        "identical sketches, identical exact answers; the tree trades "
        "skipped bound computations for per-node overhead, the flat "
        "index rides one vectorised kernel",
    )

    flat_work = work["flat (bound everything)"]
    tree_work = work["vp-tree (prune subtrees)"]
    # The flat index bounds every object by construction.
    assert flat_work[1] == len(matrix) * len(queries)
    # The tree must skip a meaningful share of bound computations.
    assert tree_work[1] < flat_work[1]
    # Verification work is comparable (both driven by the same bounds);
    # the tree's SUB estimate is per-traversal so it can differ slightly.
    assert tree_work[0] <= flat_work[0] * 1.5 + 10

    benchmark(flat.search, queries[0], 1)
