"""Tests for the disk-backed sequence store and its I/O accounting."""

import struct
import zlib

import numpy as np
import pytest

import repro.obs as obs
from repro.exceptions import (
    CorruptionError,
    KeyNotFoundError,
    StorageError,
    TornWriteError,
)
from repro.storage import MemorySequenceStore, SequencePageStore


@pytest.fixture
def store(tmp_path):
    with SequencePageStore(tmp_path / "seq.dat", sequence_length=512) as s:
        yield s


class TestSequencePageStore:
    def test_roundtrip(self, store):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(5, 512))
        ids = store.append_matrix(rows)
        assert ids == [0, 1, 2, 3, 4]
        for seq_id, row in zip(ids, rows):
            np.testing.assert_array_equal(store.read(seq_id), row)

    def test_read_out_of_range(self, store):
        store.append(np.zeros(512))
        with pytest.raises(KeyNotFoundError):
            store.read(1)
        with pytest.raises(KeyNotFoundError):
            store.read(-1)

    def test_length_mismatch_rejected(self, store):
        with pytest.raises(StorageError):
            store.append(np.zeros(100))

    def test_pages_per_sequence(self, tmp_path):
        # A 4096-byte page carries 4092 payload bytes (4 are the CRC32):
        # 511 float64 = 4088 bytes fit one page.
        with SequencePageStore(tmp_path / "a.dat", 511) as s:
            assert s.pages_per_sequence == 1
        # 512 floats = 4096 bytes spill into a second page.
        with SequencePageStore(tmp_path / "b.dat", 512) as s:
            assert s.pages_per_sequence == 2

    def test_io_accounting(self, store):
        store.append_matrix(np.zeros((4, 512)))
        per_seq = store.pages_per_sequence
        assert per_seq == 2
        assert store.stats.pages_read == 0
        store.read(0)
        store.read(1)  # sequential: no extra seek
        store.read(3)  # skips one: seek
        assert store.stats.read_calls == 3
        assert store.stats.pages_read == 3 * per_seq
        assert store.stats.seeks == 2

    def test_stats_reset(self, store):
        store.append(np.zeros(512))
        store.read(0)
        store.stats.reset()
        assert store.stats.read_calls == 0
        assert store.stats.pages_read == 0
        assert store.stats.seeks == 0

    def test_stats_reset_clears_seek_position(self, store):
        # Regression: reset() must also forget the last page touched,
        # otherwise the first read after a reset can ride the stale
        # position and be miscounted as sequential (zero seeks).
        store.append_matrix(np.zeros((3, 512)))
        store.read(0)
        store.read(1)
        store.stats.reset()
        assert store.stats._last_page is None
        store.read(2)  # would look sequential against the stale position
        assert store.stats.seeks == 1

    def test_close_is_idempotent(self, tmp_path):
        store = SequencePageStore(tmp_path / "c.dat", 16)
        assert not store.closed
        store.close()
        assert store.closed
        store.close()  # second close: no error
        assert store.closed

    def test_context_manager_closes(self, tmp_path):
        with SequencePageStore(tmp_path / "cm.dat", 16) as store:
            store.append(np.zeros(16))
        assert store.closed

    def test_reads_interleaved_with_appends(self, store):
        first = np.arange(512.0)
        store.append(first)
        store.append(first * 2)
        np.testing.assert_array_equal(store.read(0), first)
        store.append(first * 3)
        np.testing.assert_array_equal(store.read(2), first * 3)
        np.testing.assert_array_equal(store.read(1), first * 2)

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(StorageError):
            SequencePageStore(tmp_path / "x.dat", 0)
        with pytest.raises(StorageError):
            SequencePageStore(tmp_path / "x.dat", 10, page_size=8)


class TestReopen:
    def test_reopen_recovers_contents(self, tmp_path):
        path = tmp_path / "persist.dat"
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(7, 200))
        with SequencePageStore(path, 200) as store:
            store.append_matrix(rows)
        reopened = SequencePageStore.open(path)
        assert len(reopened) == 7
        assert reopened.sequence_length == 200
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(reopened.read(i), row)
        reopened.close()

    def test_reopen_supports_further_appends(self, tmp_path):
        path = tmp_path / "grow.dat"
        with SequencePageStore(path, 16) as store:
            store.append(np.arange(16.0))
        with SequencePageStore.open(path) as reopened:
            new_id = reopened.append(np.arange(16.0) * 2)
            assert new_id == 1
            np.testing.assert_array_equal(
                reopened.read(1), np.arange(16.0) * 2
            )

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ps.dat"
        SequencePageStore(path, 16, page_size=4096).close()
        with pytest.raises(StorageError):
            SequencePageStore.open(path, page_size=8192)
        SequencePageStore.open(path, page_size=4096).close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.dat"
        path.write_bytes(b"not a sequence store, definitely" * 10)
        with pytest.raises(StorageError):
            SequencePageStore.open(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.dat"
        path.write_bytes(b"abc")
        with pytest.raises(StorageError):
            SequencePageStore.open(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            SequencePageStore.open(tmp_path / "nope.dat")


class TestCorruptionDetection:
    """Round trips through deliberate damage: every fault gets a type."""

    LENGTH = 512  # 2 checksummed pages per sequence

    def _filled(self, tmp_path, rows=4):
        path = tmp_path / "victim.dat"
        matrix = np.random.default_rng(5).normal(size=(rows, self.LENGTH))
        with SequencePageStore(path, self.LENGTH) as store:
            store.append_matrix(matrix)
            offsets = [store._offset_of(i) for i in range(rows)]
        return path, matrix, offsets

    @staticmethod
    def _damage(path, offset, flip=0x01):
        with open(path, "r+b") as raw:
            raw.seek(offset)
            byte = raw.read(1)[0]
            raw.seek(offset)
            raw.write(bytes([byte ^ flip]))

    def test_byte_flip_raises_corruption_error(self, tmp_path):
        path, matrix, offsets = self._filled(tmp_path)
        self._damage(path, offsets[2] + 100)
        with SequencePageStore.open(path) as store:
            with pytest.raises(CorruptionError):
                store.read(2)
            # Only the damaged sequence is lost.
            np.testing.assert_array_equal(store.read(1), matrix[1])

    def test_flipped_crc_itself_is_detected(self, tmp_path):
        path, _, offsets = self._filled(tmp_path)
        with SequencePageStore.open(path) as probe:
            crc_offset = offsets[1] + probe.page_size - 1
        self._damage(path, crc_offset)
        with SequencePageStore.open(path) as store:
            with pytest.raises(CorruptionError):
                store.read(1)

    def test_mid_page_truncation_is_torn_write(self, tmp_path):
        path, matrix, offsets = self._filled(tmp_path)
        with open(path, "r+b") as raw:
            raw.truncate(offsets[-1] + 700)  # cut into the last sequence
        # Reopening without repair refuses the torn tail:
        with pytest.raises(TornWriteError):
            SequencePageStore.open(path)

    def test_repair_truncates_torn_tail(self, tmp_path):
        path, matrix, offsets = self._filled(tmp_path)
        with open(path, "r+b") as raw:
            raw.truncate(offsets[-1] + 700)
        with obs.observed() as registry:
            with SequencePageStore.open(path, repair=True) as store:
                assert len(store) == len(matrix) - 1
                for i in range(len(store)):
                    np.testing.assert_array_equal(store.read(i), matrix[i])
                # The healed store accepts fresh appends.
                new_id = store.append(matrix[-1])
                np.testing.assert_array_equal(store.read(new_id), matrix[-1])
        assert registry.counter("resilience.storage_repairs").value == 1

    def test_bad_magic_is_corruption_error(self, tmp_path):
        path = tmp_path / "junk.dat"
        path.write_bytes(b"XXXXXXXX" + b"\x00" * 4096)
        with pytest.raises(CorruptionError):
            SequencePageStore.open(path)

    def test_header_crc_mismatch_is_corruption_error(self, tmp_path):
        path, _, _ = self._filled(tmp_path)
        self._damage(path, 9)  # inside the header's page_size field
        with pytest.raises(CorruptionError):
            SequencePageStore.open(path)

    def test_short_header_is_torn_write(self, tmp_path):
        path = tmp_path / "stub.dat"
        path.write_bytes(b"abc")
        with pytest.raises(TornWriteError):
            SequencePageStore.open(path)

    def test_errors_are_typed_storage_errors(self):
        assert issubclass(CorruptionError, StorageError)
        assert issubclass(TornWriteError, CorruptionError)

    def test_scrub_locates_every_victim(self, tmp_path):
        path, _, offsets = self._filled(tmp_path, rows=6)
        self._damage(path, offsets[1] + 50)
        self._damage(path, offsets[4] + 50)
        with SequencePageStore.open(path) as store:
            store.stats.reset()
            assert store.scrub() == (1, 4)
            # Maintenance reads bypass the experiment's I/O accounting.
            assert store.stats.pages_read == 0

    def test_verify_checksums_off_skips_detection(self, tmp_path):
        path, matrix, offsets = self._filled(tmp_path)
        self._damage(path, offsets[0] + 100)
        with SequencePageStore.open(path, verify_checksums=False) as store:
            garbled = store.read(0)  # no raise: caller opted out
            assert garbled.shape == matrix[0].shape
            assert not np.array_equal(garbled, matrix[0])
        with SequencePageStore.open(path) as store:
            with pytest.raises(CorruptionError):
                store.read(0)


class TestFormatV1Compatibility:
    """Pre-checksum files stay readable (and keep their floor recovery)."""

    def _write_v1(self, path, matrix, page_size=4096):
        header = struct.Struct("<8sIQ").pack(
            b"RPRSEQ1\x00", page_size, matrix.shape[1]
        )
        bytes_per_seq = matrix.shape[1] * 8
        pages = -(-bytes_per_seq // page_size)
        block_size = pages * page_size
        with open(path, "wb") as out:
            out.write(header)
            out.write(b"\x00" * (page_size - len(header)))
            for row in matrix:
                payload = row.astype(np.float64).tobytes()
                out.write(payload + b"\x00" * (block_size - len(payload)))

    def test_v1_file_reads_back(self, tmp_path):
        path = tmp_path / "legacy.dat"
        matrix = np.random.default_rng(6).normal(size=(3, 512))
        self._write_v1(path, matrix)
        with SequencePageStore.open(path) as store:
            assert store.format_version == 1
            assert len(store) == 3
            # v1 packs a full 4096-byte payload per page: one page/seq.
            assert store.pages_per_sequence == 1
            for i, row in enumerate(matrix):
                np.testing.assert_array_equal(store.read(i), row)

    def test_v1_partial_tail_floors_silently(self, tmp_path):
        path = tmp_path / "legacy_torn.dat"
        matrix = np.random.default_rng(7).normal(size=(2, 512))
        self._write_v1(path, matrix)
        with open(path, "r+b") as raw:
            raw.seek(0, 2)
            raw.truncate(raw.tell() - 100)
        with SequencePageStore.open(path) as store:
            assert len(store) == 1  # historical floor behaviour
            np.testing.assert_array_equal(store.read(0), matrix[0])

    def test_new_stores_are_v2(self, tmp_path):
        with SequencePageStore(tmp_path / "new.dat", 16) as store:
            assert store.format_version == 2
        with SequencePageStore.open(tmp_path / "new.dat") as reopened:
            assert reopened.format_version == 2

    def test_zlib_crc_convention(self, tmp_path):
        # The on-disk CRC is plain zlib.crc32 of the page payload — pin
        # the convention so other tooling can validate files.
        with SequencePageStore(tmp_path / "pin.dat", 4) as store:
            store.append(np.arange(4.0))
            payload_size = store.page_size - 4
            offset = store._offset_of(0)
            page_size = store.page_size
        with open(tmp_path / "pin.dat", "rb") as raw:
            raw.seek(offset)
            page = raw.read(page_size)
        stored = struct.Struct("<I").unpack(page[payload_size:])[0]
        assert stored == zlib.crc32(page[:payload_size])


class TestMemorySequenceStore:
    def test_roundtrip(self):
        store = MemorySequenceStore(8)
        row = np.arange(8.0)
        seq_id = store.append(row)
        np.testing.assert_array_equal(store.read(seq_id), row)

    def test_reads_are_free(self):
        store = MemorySequenceStore(4)
        store.append(np.zeros(4))
        store.read(0)
        assert store.stats.read_calls == 1
        assert store.stats.pages_read == 0
        assert store.pages_per_sequence == 0

    def test_out_of_range(self):
        store = MemorySequenceStore(4)
        with pytest.raises(KeyNotFoundError):
            store.read(0)

    def test_length_checked(self):
        store = MemorySequenceStore(4)
        with pytest.raises(StorageError):
            store.append(np.zeros(5))

    def test_context_manager(self):
        with MemorySequenceStore(4) as store:
            store.append(np.zeros(4))
        # close() is a no-op: data still readable.
        assert len(store) == 1
