"""Catalog-wide property tests: every profile must behave as tagged.

These guard future catalog edits: a profile tagged ``weekly`` must show a
significant ~7-day period, ``annual``/``burst`` profiles must produce a
detectable long-term burst, ``news`` profiles must spike once, and so on.
"""

import datetime as dt

import numpy as np
import pytest

from repro.bursts import BurstDetector, compact_bursts
from repro.datagen import CATALOG, QueryLogGenerator, catalog_names, daily_rates
from repro.datagen.components import DayGrid
from repro.periods import detect_periods


@pytest.fixture(scope="module")
def year():
    return QueryLogGenerator(seed=5, start=dt.date(2002, 1, 1), days=365)


@pytest.fixture(scope="module")
def series_by_name(year):
    return {name: year.series(name) for name in CATALOG}


class TestEveryProfile:
    def test_all_generate_valid_series(self, series_by_name):
        for name, series in series_by_name.items():
            assert len(series) == 365, name
            assert np.all(series.values >= 0), name
            assert series.values.sum() > 0, name

    def test_rates_have_headroom(self, year):
        """No profile's modulation may pin the rate at zero for long."""
        grid = DayGrid(dt.date(2002, 1, 1), 365)
        rng = np.random.default_rng(0)
        for name, profile in CATALOG.items():
            rates = daily_rates(profile, grid, rng)
            assert (rates > 0).mean() > 0.5, name

    def test_descriptions_and_tags_present(self):
        for name, profile in CATALOG.items():
            assert profile.description, name
            assert profile.tags, name


class TestTagContracts:
    def test_weekly_profiles_have_weekly_period(self, series_by_name):
        for name in catalog_names("weekly"):
            result = detect_periods(series_by_name[name].standardize())
            periods = [p.period for p in result]
            assert any(abs(p - 7.0) < 0.3 or abs(p - 3.5) < 0.2 for p in periods), (
                name,
                periods,
            )

    def test_monthly_profiles_have_lunar_period(self, series_by_name):
        for name in catalog_names("monthly"):
            result = detect_periods(series_by_name[name].standardize())
            assert any(25 < p.period < 35 for p in result), name

    def test_burst_profiles_burst(self, series_by_name):
        detector = BurstDetector.long_term()
        for name in catalog_names("burst"):
            standardized = series_by_name[name].standardize()
            bursts = compact_bursts(standardized, detector.detect(standardized))
            assert bursts, name

    def test_news_profiles_spike_once(self):
        """One-off events dominate — on a window containing the event
        (most of the catalog's news events happen in 2000-2001, outside
        the single-year 2002 fixture)."""
        gen = QueryLogGenerator(seed=5, start=dt.date(2000, 1, 1), days=1096)
        for name in catalog_names("news"):
            values = gen.series(name).values
            peak = values.max()
            median = np.median(values)
            assert peak > 2.5 * median, name

    def test_background_profiles_do_not_burst_hard(self, series_by_name):
        detector = BurstDetector.long_term(2.0)
        for name in catalog_names("background"):
            standardized = series_by_name[name].standardize()
            annotation = detector.detect(standardized)
            assert annotation.burst_fraction < 0.35, name


class TestCrossYearConsistency:
    def test_annual_profiles_repeat_across_years(self):
        gen = QueryLogGenerator(seed=5, start=dt.date(2000, 1, 1), days=1096)
        detector = BurstDetector.long_term()
        for name in ("halloween", "christmas", "thanksgiving"):
            series = gen.series(name).standardize()
            bursts = compact_bursts(series, detector.detect(series))
            assert len(bursts) == 3, (name, bursts)
