"""A multi-vantage-point (MVP) tree over compressed sketches.

Section 4.1 notes that "all possible extensions to the VP-tree, such as
the usage of multiple vantage points [3] ... can be implemented on top of
the proposed search mechanisms".  This module does exactly that,
following Bozkaya & Ozsoyoglu: every internal node holds *two* vantage
points; the first partitions the points by its median distance, and each
half is partitioned again by its own median distance to the second
vantage point, yielding four children per node.

The payoff: one extra bound computation per node (the second vantage
point) buys two independent pruning tests per quadrant — each quadrant
can be discarded by *either* vantage point's annulus condition.  The same
compressed sketches, batch bound kernels and two-phase
(traverse + SUB-filter + verify) search of the VP-tree are reused
verbatim, which is precisely the paper's point.

The ablation benchmark compares its search work against the binary
VP-tree at identical storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bounds.batch import BatchBounds, get_batch_kernel
from repro.compression.best_k import BestMinErrorCompressor
from repro.compression.database import SketchDatabase
from repro.engine.core import (
    RANGE_SLACK,
    CandidateSet,
    SigmaTracker,
    execute_knn,
    execute_range,
)
from repro.exceptions import SeriesMismatchError
from repro.index.distance import distances_to_query
from repro.index.results import Neighbor, SearchStats
from repro.spectral.dft import Spectrum
from repro.storage.pagestore import MemorySequenceStore

__all__ = ["MVPTreeIndex"]


@dataclass
class _Leaf:
    rows: np.ndarray


@dataclass
class _Quadrant:
    """One of the four children with its defining split bounds."""

    first_side_low: bool  # d(x, vp1) <= median1 ?
    second_median: float
    second_side_low: bool  # d(x, vp2) <= second_median ?
    child: "_Node | _Leaf"


@dataclass
class _Node:
    first_id: int
    second_id: int
    first_median: float
    quadrants: list[_Quadrant]


class MVPTreeIndex:
    """Four-way MVP-tree with compressed vantage points.

    The constructor arguments mirror :class:`repro.index.VPTreeIndex`.
    Like every structure here, it only *generates* candidates; exact
    verification runs in the shared engine core
    (:mod:`repro.engine.core`).
    """

    obs_name = "index.mvptree"

    def __init__(
        self,
        matrix: np.ndarray,
        compressor=None,
        names: Sequence[str] | None = None,
        store=None,
        bound_method: str | None = "best_min_error_safe",
        leaf_size: int = 16,
        seed: int = 0,
    ) -> None:
        self._matrix = np.asarray(matrix, dtype=np.float64)
        if self._matrix.ndim != 2:
            raise SeriesMismatchError(
                f"expected a 2-D database matrix, got shape {self._matrix.shape}"
            )
        if names is not None and len(names) != len(self._matrix):
            raise SeriesMismatchError("names must align with the matrix rows")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

        self._names = tuple(names) if names is not None else None
        self._compressor = compressor or BestMinErrorCompressor(14)
        self.bound_method = bound_method or self._compressor.method
        self._kernel = get_batch_kernel(self.bound_method)
        self._leaf_size = leaf_size
        self._rng = np.random.default_rng(seed)

        self._store = store if store is not None else MemorySequenceStore(
            self._matrix.shape[1]
        )
        if len(self._store) == 0:
            self._store.append_matrix(self._matrix)

        # Batched compression — bit-identical to compressing per row.
        self._sketch_db = SketchDatabase.from_matrix(
            self._matrix, self._compressor
        )
        self._count = int(self._matrix.shape[0])
        self._n = int(self._matrix.shape[1])
        self._root = self._build(np.arange(self._count), self._matrix)
        self._matrix = None

    def __len__(self) -> int:
        return self._count

    @property
    def store(self):
        return self._store

    def _name(self, seq_id: int) -> str | None:
        return self._names[seq_id] if self._names is not None else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray, rows: np.ndarray):
        # Four-way splits need enough points for two vantage points and
        # four non-trivial quadrants.
        if ids.size <= max(self._leaf_size, 4):
            return _Leaf(rows=ids.copy())
        # First vantage point: random (the classic mvp-tree choice);
        # second: the point farthest from the first.
        first_pos = int(self._rng.integers(ids.size))
        first_distances = distances_to_query(rows, rows[first_pos])
        first_distances[first_pos] = -1.0  # exclude self from the argmax
        second_pos = int(np.argmax(first_distances))

        keep = np.ones(ids.size, dtype=bool)
        keep[[first_pos, second_pos]] = False
        rest_ids = ids[keep]
        rest_rows = rows[keep]
        to_first = distances_to_query(rest_rows, rows[first_pos])
        to_second = distances_to_query(rest_rows, rows[second_pos])

        first_median = float(np.median(to_first))
        low = to_first <= first_median
        if low.all() or not low.any():
            order = np.argsort(to_first, kind="stable")
            low = np.zeros(rest_ids.size, dtype=bool)
            low[order[: rest_ids.size // 2]] = True

        quadrants = []
        for first_side_low, half in ((True, low), (False, ~low)):
            half_second = to_second[half]
            if half_second.size == 0:
                continue
            second_median = float(np.median(half_second))
            inner_low = half_second <= second_median
            if inner_low.all() or not inner_low.any():
                order = np.argsort(half_second, kind="stable")
                inner_low = np.zeros(half_second.size, dtype=bool)
                inner_low[order[: half_second.size // 2]] = True
            half_ids = rest_ids[half]
            half_rows = rest_rows[half]
            for second_side_low, quarter in (
                (True, inner_low),
                (False, ~inner_low),
            ):
                if not quarter.any():
                    continue
                quadrants.append(
                    _Quadrant(
                        first_side_low=first_side_low,
                        second_median=second_median,
                        second_side_low=second_side_low,
                        child=self._build(
                            half_ids[quarter], half_rows[quarter]
                        ),
                    )
                )
        return _Node(
            first_id=int(ids[first_pos]),
            second_id=int(ids[second_pos]),
            first_median=first_median,
            quadrants=quadrants,
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @staticmethod
    def _side_min_distance(
        lower: float, upper: float, median: float, side_low: bool
    ) -> float:
        """Lower bound on D(Q, x) for x on one side of a vantage median."""
        if side_low:  # d(x, vp) <= median  =>  D >= LB(Q,vp) - median
            return lower - median
        return median - upper  # d(x, vp) > median  =>  D >= median - UB

    @property
    def sequence_length(self) -> int:
        return self._n

    def result_name(self, seq_id: int) -> str | None:
        return self._name(seq_id)

    def fetch(self, seq_id: int) -> np.ndarray:
        return self._store.read(seq_id)

    def knn_candidates(
        self, query: np.ndarray, k: int, stats: SearchStats
    ) -> CandidateSet:
        batch = BatchBounds(Spectrum.from_series(query))
        tracker = SigmaTracker(k)
        candidates: list[tuple[float, int]] = []

        def note(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            lower, upper = self._kernel(batch, self._sketch_db.take(rows))
            stats.bound_computations += int(rows.size)
            for seq_id, lb, ub in zip(rows, lower, upper):
                candidates.append((float(lb), int(seq_id)))
                tracker.offer(float(ub))
            return lower, upper

        def traverse(node) -> None:
            stats.nodes_visited += 1
            if isinstance(node, _Leaf):
                note(node.rows)
                return
            lowers, uppers = note(
                np.array([node.first_id, node.second_id])
            )
            lb1, ub1 = float(lowers[0]), float(uppers[0])
            lb2, ub2 = float(lowers[1]), float(uppers[1])
            for quadrant in node.quadrants:
                sigma = tracker.sigma()  # earlier quadrants tighten it
                by_first = self._side_min_distance(
                    lb1, ub1, node.first_median, quadrant.first_side_low
                )
                by_second = self._side_min_distance(
                    lb2, ub2, quadrant.second_median, quadrant.second_side_low
                )
                if max(by_first, by_second) > sigma:
                    stats.subtrees_pruned += 1
                    continue
                traverse(quadrant.child)

        traverse(self._root)
        sigma = tracker.sigma()
        survivors = sorted(
            (lb * lb, seq_id) for lb, seq_id in candidates if lb <= sigma
        )
        return CandidateSet(
            entries=survivors,
            generated=len(candidates),
            sigma_sq=sigma * sigma,
            top_ubs=tracker.values(),
        )

    def range_candidates(
        self, query: np.ndarray, radius: float, stats: SearchStats
    ) -> CandidateSet:
        """Fixed-radius traversal: a quadrant is skipped when *either*
        vantage point's annulus condition proves every member farther
        than ``radius``."""
        batch = BatchBounds(Spectrum.from_series(query))
        bound = radius + RANGE_SLACK
        to_verify: list[tuple[float, int]] = []

        def consider(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            lower, upper = self._kernel(batch, self._sketch_db.take(rows))
            stats.bound_computations += int(rows.size)
            for seq_id, lb in zip(rows, lower):
                lb = float(lb)
                if lb > bound:
                    continue
                to_verify.append((lb * lb, int(seq_id)))
            return lower, upper

        def traverse(node) -> None:
            stats.nodes_visited += 1
            if isinstance(node, _Leaf):
                consider(node.rows)
                return
            lowers, uppers = consider(
                np.array([node.first_id, node.second_id])
            )
            lb1, ub1 = float(lowers[0]), float(uppers[0])
            lb2, ub2 = float(lowers[1]), float(uppers[1])
            for quadrant in node.quadrants:
                by_first = self._side_min_distance(
                    lb1, ub1, node.first_median, quadrant.first_side_low
                )
                by_second = self._side_min_distance(
                    lb2, ub2, quadrant.second_median, quadrant.second_side_low
                )
                if max(by_first, by_second) > bound:
                    stats.subtrees_pruned += 1
                    continue
                traverse(quadrant.child)

        traverse(self._root)
        return CandidateSet(entries=sorted(to_verify), generated=None)

    def search(
        self, query, k: int = 1, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """The ``k`` nearest neighbours of an uncompressed query."""
        return execute_knn(self, query, k, policy)

    def range_search(
        self, query, radius: float, policy=None
    ) -> tuple[list[Neighbor], SearchStats]:
        """All sequences within ``radius`` of the query."""
        return execute_range(self, query, radius, policy)
