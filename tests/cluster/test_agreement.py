"""Cross-shard agreement: sharded answers are bit-identical to unsharded.

The router's gather stage rebuilds the global sigma from per-shard upper
bounds and re-filters merged candidates, so the shared verifier sees a
candidate population equivalent to the monolithic one.  The acceptance
bar (ISSUE 4): for every registered backend and shard counts {1, 2, 4,
7}, k-NN and range results — ids, exact float distances, ordering — and
the extended accounting invariant match the unsharded index exactly.
"""

import numpy as np
import pytest

from repro.cluster import build_sharded
from repro.engine import available_indexes, get_index, search_many

#: Every non-sharded registry backend is a shard backend.
BACKENDS = tuple(
    name for name in available_indexes() if name != "sharded"
)
SHARD_COUNTS = (1, 2, 4, 7)


def as_pairs(hits):
    return [(h.distance, h.seq_id) for h in hits]


def assert_invariant(stats, size):
    assert (
        stats.candidates_pruned + stats.full_retrievals + stats.quarantined
        == size
    )


def test_every_backend_is_covered():
    assert set(BACKENDS) == set(available_indexes()) - {"sharded"}


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestAgreement:
    def test_knn_bit_identical(self, matrix, queries, backend, shards):
        mono = get_index(backend, matrix)
        router = build_sharded(matrix, shards=shards, backend=backend)
        for query in queries:
            for k in (1, 2, 5, 9):
                expected, _ = mono.search(query, k=k)
                got, stats = router.search(query, k=k)
                assert as_pairs(got) == as_pairs(expected), (
                    backend,
                    shards,
                    k,
                )
                assert_invariant(stats, len(matrix))

    def test_range_bit_identical(self, matrix, queries, backend, shards):
        mono = get_index(backend, matrix)
        router = build_sharded(matrix, shards=shards, backend=backend)
        for query in queries:
            far, _ = mono.search(query, k=9)
            for radius in (far[4].distance, 0.0):
                expected, _ = mono.range_search(query, radius=radius)
                got, stats = router.range_search(query, radius=radius)
                assert as_pairs(got) == as_pairs(expected), (
                    backend,
                    shards,
                    radius,
                )
                assert_invariant(stats, len(matrix))


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_fanout_matches_monolithic(matrix, queries, backend):
    mono = get_index(backend, matrix)
    router = build_sharded(matrix, shards=4, backend=backend)
    batch = np.stack(queries)
    expected = search_many(mono, batch, k=4)
    for workers in (None, 2):
        got = search_many(router, batch, k=4, workers=workers)
        assert [as_pairs(hits) for hits, _ in got] == [
            as_pairs(hits) for hits, _ in expected
        ], (backend, workers)
        for _, stats in got:
            assert_invariant(stats, len(matrix))


@pytest.mark.parametrize("policy", ["hash", "round_robin"])
def test_duplicates_split_across_shards_keep_id_order(matrix, policy):
    """Tied duplicate rows on different shards still rank by global id."""
    first_twin = len(matrix) - 6
    router = build_sharded(matrix, shards=4, policy=policy, backend="flat")
    straddling = [
        (i, first_twin + i)
        for i in range(6)
        if router.shard_of(i) != router.shard_of(first_twin + i)
    ]
    # The fixture's duplicated pairs really do straddle shards.
    assert straddling
    for original, twin in straddling:
        hits, _ = router.search(matrix[original], k=2)
        assert [(h.distance, h.seq_id) for h in hits] == [
            (0.0, original),
            (0.0, twin),
        ]


def test_pooled_scatter_matches_serial_per_query(matrix, queries):
    serial = build_sharded(matrix, shards=3, backend="vptree")
    pooled = build_sharded(matrix, shards=3, backend="vptree", workers=2)
    for query in queries:
        a, _ = serial.search(query, k=5)
        b, _ = pooled.search(query, k=5)
        assert as_pairs(a) == as_pairs(b)


def test_streaming_backend_pooled_scatter(matrix, queries):
    """R-tree streams must materialise cleanly inside pool workers."""
    mono = get_index("rtree", matrix)
    pooled = build_sharded(matrix, shards=3, backend="rtree", workers=2)
    for query in queries:
        expected, _ = mono.search(query, k=3)
        got, stats = pooled.search(query, k=3)
        assert as_pairs(got) == as_pairs(expected)
        assert_invariant(stats, len(matrix))
