"""Shard-aware query architecture: partitioned stores + scatter-gather.

The paper's experiments index up to :math:`2^{15}` sequences behind one
monolithic structure; the ROADMAP north-star is a production-scale
service, which means horizontal partitioning.  This package is that
layer (see ``docs/SHARDING.md``):

* :class:`Partitioner` — deterministic assignment of sequence ids to N
  shards (``hash`` or ``round_robin`` policy);
* :func:`build_sharded` / :func:`open_sharded` — split one database
  population into N self-contained shards, each with its own engine
  index (any registry backend) and optionally its own page-store file,
  described by a CRC-checked :class:`ShardManifest`;
* :class:`ShardRouter` — an :class:`~repro.engine.core.EngineIndex` over
  the shards: candidate generation scatters to every shard (serially,
  on a fork pool, or on the persistent worker pool), gathers the
  per-shard candidate sets, and merges them under one *global*
  :math:`\\sigma_{UB}` so cross-shard pruning is no weaker than the
  monolithic index.  The shared verifier, the obs accounting and the
  resilience guards all apply unchanged.
* :class:`ShardWorkerPool` — one persistent worker process per
  populated shard, each holding its warm index over zero-copy
  shared-memory views of the shard's matrix and sketch blocks; enabled
  with ``worker_pool=True`` or the ``REPRO_SHARD_WORKERS`` environment
  switch (see ``docs/CONCURRENCY.md``).

The registry exposes the whole stack as just another backend::

    from repro.engine import get_index

    router = get_index("sharded", matrix, shards=4, backend="vptree")
    neighbors, stats = router.search(query, k=5)
"""

from repro.cluster.build import (
    build_sharded,
    default_shard_count,
    default_worker_pool,
    open_sharded,
)
from repro.cluster.manifest import MANIFEST_NAME, ShardManifest
from repro.cluster.partitioner import Partitioner
from repro.cluster.pool import ShardSpec, ShardStub, ShardWorkerPool
from repro.cluster.router import ShardRouter

__all__ = [
    "MANIFEST_NAME",
    "Partitioner",
    "ShardManifest",
    "ShardRouter",
    "ShardSpec",
    "ShardStub",
    "ShardWorkerPool",
    "build_sharded",
    "default_shard_count",
    "default_worker_pool",
    "open_sharded",
]
