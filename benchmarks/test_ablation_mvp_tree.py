"""Ablation A10: two vantage points per node (mvp-tree, reference [3]).

Section 4.1 lists multiple vantage points as an extension that "can be
implemented on top of the proposed search mechanisms".  This bench builds
a four-way MVP-tree on the same sketches as the binary VP-tree and
compares the search work.  Honest finding on this workload: the MVP-tree
matches the VP-tree's verification work exactly (both are driven by the
same bounds and SUB filter) while trading node structure for a slightly
different bound-computation count — the extension composes cleanly but is
not a free win.
"""

import numpy as np

from repro.compression import StorageBudget
from repro.evaluation import format_table
from repro.index import MVPTreeIndex, VPTreeIndex, distances_to_query


def test_ablation_mvp_tree(database_matrix, query_matrix, report, benchmark):
    matrix = database_matrix[:2048]
    queries = query_matrix[:8]
    compressor = StorageBudget(16).compressor("best_min_error")

    vp = VPTreeIndex(matrix, compressor=compressor, seed=5)
    mvp = MVPTreeIndex(matrix, compressor=compressor, seed=5)

    work = {}
    for label, index in (("vp-tree (binary)", vp), ("mvp-tree (4-way)", mvp)):
        retrievals = bounds = nodes = 0
        for query in queries:
            hits, stats = index.search(query, k=1)
            truth = float(distances_to_query(matrix, query).min())
            assert abs(hits[0].distance - truth) < 1e-9, label
            retrievals += stats.full_retrievals
            bounds += stats.bound_computations
            nodes += stats.nodes_visited
        work[label] = (
            retrievals / len(queries),
            bounds / len(queries),
            nodes / len(queries),
        )

    report(
        format_table(
            ("index", "full retrievals/query", "bound comps/query",
             "nodes visited/query"),
            [(label, *values) for label, values in work.items()],
            title="ablation A10: one vs two vantage points per node",
            digits=1,
        ),
        "both are exact on identical sketches; verification work is "
        "identical (same bounds, same SUB filter), so the choice is about "
        "node layout, not answer quality",
    )

    vp_work = work["vp-tree (binary)"]
    mvp_work = work["mvp-tree (4-way)"]
    # Identical verification work; bound computations and node visits
    # within a modest factor of each other — the structures trade node
    # granularity, not answer quality or disk accesses.
    assert mvp_work[0] == vp_work[0]
    assert mvp_work[1] < vp_work[1] * 1.25
    assert mvp_work[2] < vp_work[2] * 2.0

    benchmark(mvp.search, queries[0], 1)
