"""Row-subset views of :class:`SketchDatabase` (``take`` / ``__getitem__``).

The shard partitioner carves shard-local sketch databases out of one
compression pass with these views, so they must be cheap, bit-identical
to the parent rows, and strict about invalid selectors.
"""

import numpy as np
import pytest

from repro.compression import BestMinErrorCompressor, SketchDatabase
from repro.timeseries import zscore


def make_matrix(seed=3, count=12, n=64):
    rng = np.random.default_rng(seed)
    return np.array(
        [zscore(np.cumsum(rng.normal(size=n))) for _ in range(count)]
    )


@pytest.fixture(scope="module")
def db():
    matrix = make_matrix()
    names = [f"q{i}" for i in range(len(matrix))]
    return SketchDatabase.from_matrix(
        matrix, BestMinErrorCompressor(5), names
    )


def assert_rows_match(view, parent, rows):
    assert len(view) == len(rows)
    assert (view.n, view.basis, view.method) == (
        parent.n,
        parent.basis,
        parent.method,
    )
    assert np.array_equal(view.positions, parent.positions[rows])
    assert np.array_equal(view.coefficients, parent.coefficients[rows])
    assert np.array_equal(view.weights, parent.weights[rows])
    assert np.array_equal(view.errors, parent.errors[rows], equal_nan=True)
    assert np.array_equal(
        view.min_powers, parent.min_powers[rows], equal_nan=True
    )
    assert view.names == tuple(parent.names[i] for i in rows)


class TestIntAccess:
    def test_int_materialises_a_sketch(self, db):
        sketch = db[4]
        reference = db.sketch(4)
        assert np.array_equal(sketch.positions, reference.positions)
        assert np.array_equal(sketch.coefficients, reference.coefficients)

    def test_negative_int_counts_from_the_end(self, db):
        tail = db[-1]
        reference = db.sketch(len(db) - 1)
        assert np.array_equal(tail.positions, reference.positions)
        assert np.array_equal(tail.coefficients, reference.coefficients)

    @pytest.mark.parametrize("row", [12, -13, 99])
    def test_out_of_range_int_raises(self, db, row):
        with pytest.raises(IndexError, match="out of range"):
            db[row]


class TestTakeViews:
    def test_take_subsets_every_column(self, db):
        rows = [7, 2, 2, 11]
        assert_rows_match(db.take(rows), db, rows)

    def test_slice_returns_a_view(self, db):
        assert_rows_match(db[3:9:2], db, [3, 5, 7])

    def test_fancy_array_selection(self, db):
        rows = np.array([0, 5, 1])
        assert_rows_match(db[rows], db, [0, 5, 1])

    def test_boolean_mask_selection(self, db):
        mask = np.zeros(len(db), dtype=bool)
        mask[[1, 4, 8]] = True
        assert_rows_match(db[mask], db, [1, 4, 8])

    def test_boolean_mask_must_match_length(self, db):
        with pytest.raises(IndexError, match="boolean mask"):
            db[np.ones(len(db) + 1, dtype=bool)]

    def test_view_sketches_are_bit_identical(self, db):
        rows = [9, 0, 6]
        view = db.take(rows)
        for local, parent_row in enumerate(rows):
            a = view.sketch(local)
            b = db.sketch(parent_row)
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.coefficients, b.coefficients)
            assert np.array_equal(a.weights, b.weights)

    def test_nameless_database_keeps_none_names(self):
        plain = SketchDatabase.from_matrix(
            make_matrix(8, count=6), BestMinErrorCompressor(4)
        )
        assert plain.take([0, 3]).names is None
