"""Figure 21: upper-bound tightness at three storage budgets.

Cumulative UB over random pairs.  The paper: BestMinError gives the
tightest upper bound, 13-18% better than the next best (Wang); GEMINI has
no upper bound at all; BestMin's upper bound is loose at small budgets.
"""

import numpy as np
import pytest

from repro.bounds import bounds_for
from repro.compression import StorageBudget
from repro.evaluation import bound_tightness_experiment
from repro.spectral import Spectrum

BUDGETS = (StorageBudget(8), StorageBudget(16), StorageBudget(32))


@pytest.fixture(scope="module")
def results(database_matrix, scale):
    return bound_tightness_experiment(
        database_matrix[:4096],
        BUDGETS,
        pairs=scale.tightness_pairs,
        seed=21,
    )


def test_fig21_upper_bound_ordering(results, report, benchmark, database_matrix):
    blocks = []
    for result in results:
        blocks.append(result.as_table())
        blocks.append(
            f"UB improvement of BestMinError over next best: "
            f"{result.ub_improvement():.2f}% (paper: 13-18%)"
        )
    report(*blocks)

    for result in results:
        upper = result.upper
        assert upper["gemini"] == float("inf")  # 'N/A' in the figure
        # Sound upper bounds stay above the true distance.
        for method in ("wang", "best_error", "best_min"):
            assert upper[method] >= result.true_distance - 1e-6, method
        # BestMinError is the tightest finite UB.
        finite = {m: u for m, u in upper.items() if np.isfinite(u)}
        assert min(finite, key=finite.get) == "best_min_error"
        assert result.ub_improvement() > 5.0

    query = Spectrum.from_series(database_matrix[0])
    sketch = BUDGETS[1].compressor("wang").compress(
        Spectrum.from_series(database_matrix[1])
    )
    benchmark(bounds_for, query, sketch)


def test_fig21_best_min_loose_at_small_budgets(results, benchmark, database_matrix):
    """The figure's outlier: UB_BestMin is the loosest at 2*(8)+1."""
    small = results[0]
    finite = {m: u for m, u in small.upper.items() if np.isfinite(u)}
    assert finite["best_min"] == max(finite.values())
    # ... and it tightens sharply as the budget grows.
    assert results[2].upper["best_min"] < small.upper["best_min"]

    query = Spectrum.from_series(database_matrix[4])
    sketch = BUDGETS[0].compressor("best_min").compress(
        Spectrum.from_series(database_matrix[5])
    )
    benchmark(bounds_for, query, sketch)
