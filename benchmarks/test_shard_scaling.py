"""Shard-scaling throughput: fork-per-call vs persistent shard workers.

Two sweeps over the same database and query stream, one per scatter
transport:

* ``fork`` — the original fork-per-call pool: every batched call forks
  fresh workers and tears them down again.  Recorded for the trend (it
  is the transport the pre-pool entries in ``BENCH_shards.json``
  measured) but no longer gated: its per-call spawn cost is exactly what
  the pool removes.
* ``pool`` — the persistent :class:`~repro.cluster.ShardWorkerPool`:
  one warm worker per shard over shared memory, spawned once during the
  untimed build.  This is the architecture's acceptance bar: with at
  least 4 cores, 4 pooled shards must beat the single-shard baseline
  (``speedup_vs_single_shard > 1.0``).  On smaller hosts the record
  still lands in the JSON (with the honest ``cpu_count``) and the gate
  is skipped with a reason, because shard parallelism cannot exceed the
  cores under it.

Results must stay bit-identical to the monolithic index at every shard
count and on both transports; exactness is asserted inside the
experiment.  Each sweep appends its own ``mode``-tagged entry to the
``BENCH_shards.json`` trend at the repo root.
"""

import json
import os
import time

import numpy as np
import pytest

from _bench_io import REPO_ROOT, append_trend
from repro.compression import StorageBudget
from repro.engine import get_index, search_many
from repro.evaluation import shard_scaling_experiment

BENCH_JSON = REPO_ROOT / "BENCH_shards.json"

K = 5
WORKERS = 4
SHARD_COUNTS = (1, 2, 4)


def _record(result, matrix, extra):
    entry = {
        "bench": "shard_scaling",
        "mode": result.mode,
        "database_size": result.database_size,
        "sequence_length": int(matrix.shape[1]),
        "queries": result.queries,
        "k": K,
        "workers": WORKERS,
        "backend": result.backend,
        "cpu_count": os.cpu_count(),
        "agreement": result.agreement,
        "rows": [
            {
                "shards": row.shards,
                "wall_seconds": round(row.wall_seconds, 4),
                "queries_per_second": round(row.queries_per_second, 2),
                "speedup_vs_single_shard": round(row.speedup, 2),
            }
            for row in result.rows
        ],
        "four_shard_speedup": round(result.row_for(4).speedup, 2),
    }
    entry.update(extra)
    return entry


def test_shard_scaling_throughput(database_matrix, query_matrix, report):
    matrix = database_matrix[:4096]
    # Steady-state traffic, not a single probe: both transports are
    # measured over a real query stream, so per-call overheads (fork
    # spawns there, queue round-trips here) are priced honestly.
    queries = np.vstack([query_matrix] * 8)
    compressor = StorageBudget(16).compressor("best_min_error")
    common = dict(
        shard_counts=SHARD_COUNTS,
        k=K,
        workers=WORKERS,
        backend="flat",
        repeats=2,
        compressor=compressor,
    )

    forked = shard_scaling_experiment(matrix, queries, **common)
    assert forked.agreement  # sharded == monolithic, bit for bit
    pooled = shard_scaling_experiment(
        matrix, queries, worker_pool=True, **common
    )
    assert pooled.agreement

    # Context row: the monolithic index on the query-axis fork pool, so
    # the record relates both shard transports to the pre-cluster path.
    index = get_index("flat", matrix, compressor=compressor)
    started = time.perf_counter()
    search_many(index, queries, k=K, workers=WORKERS)
    monolithic_pooled_wall = time.perf_counter() - started

    context = {"monolithic_pooled_seconds": round(monolithic_pooled_wall, 4)}
    fork_entry = _record(forked, matrix, context)
    pool_entry = _record(pooled, matrix, context)
    append_trend(BENCH_JSON, fork_entry)
    append_trend(BENCH_JSON, pool_entry)

    report(
        forked.as_table(),
        pooled.as_table(),
        f"BENCH {json.dumps(fork_entry)}",
        f"BENCH {json.dumps(pool_entry)}",
    )

    assert len(matrix) == 2**12
    assert forked.row_for(1).speedup == 1.0
    assert pooled.row_for(1).speedup == 1.0

    # The acceptance bar: persistent workers must make 4 shards *win*
    # over 1 — the fork transport never did (its per-call spawn cost ate
    # the parallelism; see docs/PERFORMANCE.md for the history).
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"pooled >1x gate needs >= 4 CPUs for 4 shards; host has "
            f"{cpus} (entry recorded with honest cpu_count)"
        )
    assert pooled.row_for(4).speedup > 1.0
