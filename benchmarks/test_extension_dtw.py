"""Extension bench (paper section 8): linear-cost bounds for DTW.

The paper's closing remark proposes applying the bounding philosophy to
"expensive distance measures like dynamic time warping".  This bench runs
the LB_Kim -> LB_Keogh -> banded-DTW cascade over the synthetic query-log
database and reports how much of the quadratic work the linear-cost
bounds eliminate.
"""

import numpy as np

from repro.dtw import DTWSearch, dtw_distance
from repro.evaluation import format_table


def test_extension_dtw_cascade(database_matrix, query_matrix, report,
                               benchmark):
    matrix = database_matrix[:256]
    search = DTWSearch(matrix, band=0.05)
    queries = query_matrix[:5]

    total = {"kim": 0, "keogh": 0, "dtw": 0, "abandoned": 0}
    for query in queries:
        hits, stats = search.search(query, k=1)
        total["kim"] += stats.pruned_by_kim
        total["keogh"] += stats.pruned_by_keogh
        total["dtw"] += stats.dtw_computations
        total["abandoned"] += stats.dtw_abandoned
        # Exactness against brute force.
        truth = min(dtw_distance(query, row, band=search.band) for row in matrix)
        assert hits[0].distance == np.float64(truth) or abs(
            hits[0].distance - truth
        ) < 1e-9

    candidates = len(matrix) * len(queries)
    dtw_fraction = total["dtw"] / candidates
    report(
        format_table(
            ("stage", "candidates resolved"),
            [
                ("pruned by LB_Keogh ordering", total["keogh"]),
                ("pruned by LB_Kim", total["kim"]),
                ("full DTW computed", total["dtw"]),
                ("  of which early-abandoned", total["abandoned"]),
            ],
            title=(
                f"section-8 extension: DTW cascade over "
                f"{len(matrix)} sequences x {len(queries)} queries"
            ),
        ),
        f"only {100 * dtw_fraction:.1f}% of candidates paid for a "
        f"quadratic DTW; answers are exact",
    )
    assert dtw_fraction < 0.7

    benchmark(search.search, queries[0], 1)
