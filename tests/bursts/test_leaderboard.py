"""The burstiness leaderboard and the region-scored query-by-burst DB."""

import numpy as np
import pytest

from repro.bursts.leaderboard import BurstinessLeaderboard, LeaderboardEntry
from repro.bursts.models import MACDModel
from repro.bursts.protocol import BurstRegion
from repro.bursts.query import BurstRegionDatabase, region_overlap_score
from repro.exceptions import IngestionError, UnknownQueryError
from repro.timeseries.series import TimeSeries


def _spiky(days=120, center=40, height=60.0, width=6, base=10.0, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.poisson(base, size=days).astype(np.float64)
    values[center - width : center + width] += height
    return values


class TestBurstinessLeaderboard:
    def test_accepts_a_model_name_or_instance(self):
        assert BurstinessLeaderboard("macd").model.name == "macd"
        model = MACDModel(fast=5.0, slow=20.0)
        assert BurstinessLeaderboard(model).model is model
        assert BurstinessLeaderboard("ma", window=7).model.window == 7

    def test_add_returns_and_stores_the_regions(self):
        board = BurstinessLeaderboard("ma", window=7)
        regions = board.add("spring", _spiky())
        assert regions
        assert board.regions_of("spring") == regions
        assert "spring" in board
        assert len(board) == 1

    def test_readd_replaces(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("q", _spiky(center=40))
        first = board.score("q")
        board.add("q", _spiky(center=40, height=200.0))
        assert board.score("q") > first
        assert len(board) == 1

    def test_unnamed_members_are_rejected(self):
        with pytest.raises(UnknownQueryError):
            BurstinessLeaderboard().add("", _spiky())

    def test_remove_and_unknown_lookups(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("q", _spiky())
        board.remove("q")
        assert "q" not in board
        with pytest.raises(UnknownQueryError):
            board.remove("q")
        with pytest.raises(UnknownQueryError):
            board.score("q")
        with pytest.raises(UnknownQueryError):
            board.regions_of("q")

    def test_timeseries_input(self):
        board = BurstinessLeaderboard("ma", window=7)
        series = TimeSeries(_spiky(), name="spring")
        assert board.add("spring", series) == board.regions_of("spring")

    def test_score_is_the_total_region_weight(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("q", _spiky())
        assert board.score("q") == sum(
            r.weight for r in board.regions_of("q")
        )

    def test_windowed_score_isolates_the_burst(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("q", _spiky(center=40, width=6))
        # The burst sits around day 40: a window far away scores ~0.
        assert board.score("q", lo=80, hi=119) < board.score("q")
        assert board.score("q", lo=20, hi=60) > 0.0

    def test_top_orders_by_score_then_name(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("loud", _spiky(height=200.0, seed=1))
        board.add("quiet", _spiky(height=40.0, seed=2))
        board.add("flat", np.full(120, 10.0))
        entries = board.top()
        assert [e.name for e in entries] == ["loud", "quiet"]  # flat dropped
        assert all(isinstance(e, LeaderboardEntry) for e in entries)

    def test_ties_break_by_name(self):
        board = BurstinessLeaderboard("ma", window=7)
        values = _spiky(seed=3)
        board.add("zebra", values)
        board.add("aardvark", values)  # identical data, identical score
        names = [e.name for e in board.top()]
        assert names == ["aardvark", "zebra"]

    def test_count_and_min_score_bound_the_board(self):
        board = BurstinessLeaderboard("ma", window=7)
        board.add("loud", _spiky(height=200.0, seed=1))
        board.add("quiet", _spiky(height=40.0, seed=2))
        assert len(board.top(count=1)) == 1
        high_bar = board.score("quiet") + 1.0
        survivors = board.top(min_score=high_bar)
        assert all(e.score > high_bar for e in survivors)

    def test_board_is_deterministic(self):
        def build():
            board = BurstinessLeaderboard("macd")
            for name, seed in (("a", 1), ("b", 2), ("c", 3)):
                board.add(name, _spiky(seed=seed))
            return board.top()

        assert build() == build()


class TestRegionOverlapScore:
    def test_disjoint_regions_score_zero(self):
        assert (
            region_overlap_score(
                [BurstRegion(0, 9, 10.0)], [BurstRegion(20, 29, 10.0)]
            )
            == 0.0
        )

    def test_symmetric(self):
        lhs = [BurstRegion(0, 9, 30.0), BurstRegion(50, 59, 5.0)]
        rhs = [BurstRegion(5, 14, 12.0)]
        assert region_overlap_score(lhs, rhs) == region_overlap_score(rhs, lhs)

    def test_shared_days_times_lighter_density(self):
        # lhs density 3.0/day, rhs density 1.2/day, 5 shared days.
        lhs = [BurstRegion(0, 9, 30.0)]
        rhs = [BurstRegion(5, 14, 12.0)]
        assert region_overlap_score(lhs, rhs) == 5 * 1.2

    def test_empty_lists(self):
        assert region_overlap_score([], [BurstRegion(0, 1, 1.0)]) == 0.0
        assert region_overlap_score([], []) == 0.0


class TestBurstRegionDatabase:
    def _db(self, **kwargs):
        db = BurstRegionDatabase("ma", window=7, **kwargs)
        db.add(TimeSeries(_spiky(center=40, seed=1), name="march"))
        db.add(TimeSeries(_spiky(center=44, seed=2), name="april"))
        db.add(TimeSeries(_spiky(center=100, seed=3), name="october"))
        return db

    def test_overlapping_bursts_match_disjoint_ones_do_not(self):
        db = self._db()
        matches = db.query("march")
        assert [m.name for m in matches] == ["april"]

    def test_query_by_name_excludes_itself(self):
        db = self._db()
        assert all(m.name != "april" for m in db.query("april"))

    def test_query_by_values_matches_the_neighbourhood(self):
        db = self._db()
        matches = db.query(_spiky(center=42, seed=9))
        assert {m.name for m in matches} == {"march", "april"}
        keys = [(-m.similarity, m.name) for m in matches]
        assert keys == sorted(keys)

    def test_rows_live_in_the_relational_table(self):
        db = self._db()
        rows = db.table.select([])
        assert len(rows) == sum(len(db.regions_of(n)) for n in db.names)
        assert {row["sequence"] for row in rows} == set(db.names)

    def test_remove_deletes_the_rows(self):
        db = self._db()
        removed = db.remove("march")
        assert removed > 0
        assert "march" not in db
        assert all(
            row["sequence"] != "march" for row in db.table.select([])
        )
        assert all(m.name != "march" for m in db.query("april"))

    def test_duplicate_and_unnamed_adds_are_rejected(self):
        db = self._db()
        with pytest.raises(UnknownQueryError):
            db.add(TimeSeries(_spiky(), name="march"))
        with pytest.raises(UnknownQueryError):
            db.add(TimeSeries(_spiky()))

    def test_nonfinite_query_values_are_rejected(self):
        # TimeSeries refuses NaN at construction, so the typed guard in
        # the database only fires for raw query arrays.
        db = self._db()
        values = _spiky()
        values[3] = np.nan
        with pytest.raises(IngestionError, match="position 3"):
            db.query(values)

    def test_unknown_query_name_raises(self):
        with pytest.raises(UnknownQueryError):
            self._db().query("nope")

    def test_standardize_flag_zscores_before_detection(self):
        raw = BurstRegionDatabase("ma", window=7)
        scaled = BurstRegionDatabase("ma", window=7, standardize=True)
        values = _spiky(seed=4)
        raw.add(TimeSeries(values, name="q"))
        scaled.add(TimeSeries(values, name="q"))
        # Same spans either way for this clean spike, different weights
        # (area over the cutoff in z-units vs raw counts).
        assert raw.regions_of("q") != scaled.regions_of("q")

    def test_any_registered_model_backs_the_database(self):
        db = BurstRegionDatabase("kleinberg")
        db.add(TimeSeries(_spiky(center=40, seed=1), name="march"))
        db.add(TimeSeries(_spiky(center=44, seed=2), name="april"))
        assert [m.name for m in db.query("march")] == ["april"]
