"""The pluggable-burst-model evaluation section and its runner flag."""

import io

import pytest

from repro.evaluation.bursts import (
    ModelAgreement,
    _jaccard,
    burst_model_experiment,
    experiment_models,
)
from repro.evaluation.runner import run_report
from repro.timeseries.collection import TimeSeriesCollection
from repro.timeseries.series import TimeSeries

import numpy as np


@pytest.fixture(scope="module")
def collection():
    rng = np.random.default_rng(13)
    days = 180
    series = []
    for i, name in enumerate(["spiky", "calm", "ramp"]):
        values = rng.poisson(15.0, size=days).astype(np.float64)
        if name == "spiky":
            values[60:72] += 120.0
        if name == "ramp":
            values[120:160] += np.linspace(0.0, 90.0, 40)
        series.append(TimeSeries(values, name=name))
    return TimeSeriesCollection(series)


class TestExperimentModels:
    def test_one_configuration_per_registered_model(self, collection):
        models = experiment_models(collection)
        assert set(models) == {"ma", "kleinberg", "elastic", "macd"}
        for name, model in models.items():
            assert model.name == name

    def test_elastic_is_rebased_to_the_collection_scale(self, collection):
        models = experiment_models(collection)
        mean_count = float(
            np.mean([np.mean(s.values) for s in collection])
        )
        assert models["elastic"].offset == 0.0
        assert models["elastic"].rate == 2.0 * mean_count
        # Purity: the threshold is a function of the window length only.
        assert models["elastic"].threshold(7) == 2.0 * mean_count * 7


class TestJaccard:
    def test_both_empty_is_full_agreement(self):
        assert _jaccard(frozenset(), frozenset()) == 1.0

    def test_partial_overlap(self):
        assert _jaccard(frozenset({1, 2, 3}), frozenset({3, 4})) == 0.25


class TestBurstModelExperiment:
    def test_report_shape(self, collection):
        report = burst_model_experiment(collection, model="ma", top=2)
        assert report.model == "ma"
        assert report.queries == len(collection)
        assert len(report.leaderboard) <= 2
        assert len(report.agreements) == 6
        assert all(isinstance(a, ModelAgreement) for a in report.agreements)
        assert report.leaderboard[0].name == "spiky"

    def test_unknown_model_is_rejected(self, collection):
        with pytest.raises(ValueError, match="unknown model"):
            burst_model_experiment(collection, model="nope")

    def test_table_renders_both_halves(self, collection):
        table = burst_model_experiment(collection, model="macd").as_table()
        assert "burstiness leaderboard" in table
        assert "cross-model agreement" in table
        assert "worst query" in table


class TestRunnerFlag:
    def test_bursts_section_appends_to_the_report(self):
        out = io.StringIO()
        run_report(
            db_size=64,
            days=128,
            queries=2,
            pairs=5,
            seed=2,
            budgets=(8,),
            bursts="macd",
            out=out,
        )
        text = out.getvalue()
        assert "pluggable burst models - 'macd' leaderboard" in text
        assert "cross-model agreement (burst-day overlap)" in text
        assert "ma/kleinberg" in text
