"""Compressed representations for periodic data (section 3 of the paper)."""

from repro.compression.adaptive import AdaptiveEnergyCompressor
from repro.compression.base import SpectralSketch
from repro.compression.batch import batch_compress, spectra_matrix, supports_batch
from repro.compression.best_k import (
    BestErrorCompressor,
    BestKCompressor,
    BestMinCompressor,
    BestMinErrorCompressor,
)
from repro.compression.budget import BEST_METHODS, FIRST_METHODS, StorageBudget
from repro.compression.database import SketchDatabase
from repro.compression.first_k import (
    FirstKCompressor,
    GeminiCompressor,
    WangCompressor,
)

__all__ = [
    "SpectralSketch",
    "SketchDatabase",
    "FirstKCompressor",
    "GeminiCompressor",
    "WangCompressor",
    "BestKCompressor",
    "BestMinCompressor",
    "BestErrorCompressor",
    "BestMinErrorCompressor",
    "AdaptiveEnergyCompressor",
    "batch_compress",
    "spectra_matrix",
    "supports_batch",
    "StorageBudget",
    "FIRST_METHODS",
    "BEST_METHODS",
]
