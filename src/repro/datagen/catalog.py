"""The named query catalog — every exemplar the paper plots or mentions.

Each entry is a :class:`QueryProfile`: a base daily request rate plus a
set of demand components.  The parameters are tuned so that the paper's
qualitative claims reproduce:

* *cinema* / *nordstrom* show a dominant 7-day period with a 3.5-day
  harmonic (fig. 13);
* *easter* accumulates demand through spring and collapses right after
  the (moving!) holiday (figs. 2, 15);
* *elvis* spikes every August 16 (fig. 3);
* *full moon* carries a ~29.5-day period (figs. 13, 16);
* *flowers* bursts around Valentine's Day and Mother's Day (fig. 16);
* *world trade center*, *pentagon attack* and *nostradamus prediction*
  share one September-2001 burst, *hurricane* / *www.nhc.noaa.gov* /
  *tropical storm* share hurricane-season bursts, and the Christmas
  family bursts each December (fig. 19);
* *dudley moore* is flat noise apart from the actor's death in March
  2002 (fig. 13).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Sequence

from repro.datagen import components as comp
from repro.datagen.calendar import (
    easter_date,
    mothers_day,
    super_bowl_sunday,
    thanksgiving,
)
from repro.exceptions import UnknownQueryError

__all__ = ["QueryProfile", "CATALOG", "profile", "catalog_names"]


@dataclass(frozen=True)
class QueryProfile:
    """A named synthetic query-demand model."""

    name: str
    base_rate: float
    components: tuple[comp.Component, ...]
    description: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)


def _profile(name, base_rate, components, description="", tags=()):
    return QueryProfile(
        name=name,
        base_rate=float(base_rate),
        components=tuple(components),
        description=description,
        tags=tuple(tags),
    )


_WTC_DAY = _dt.date(2001, 9, 11)
_DUDLEY_MOORE_DEATH = _dt.date(2002, 3, 27)
_HARRY_POTTER_PREMIERE = _dt.date(2001, 11, 16)
_FELLOWSHIP_PREMIERE = _dt.date(2001, 12, 19)
_SYDNEY_OLYMPICS = _dt.date(2000, 9, 15)
_SALT_LAKE_OLYMPICS = _dt.date(2002, 2, 8)


CATALOG: dict[str, QueryProfile] = {
    p.name: p
    for p in [
        # ------------------------------------------------------------------
        # Weekly-periodic queries (figs. 1, 5, 13)
        # ------------------------------------------------------------------
        _profile(
            "cinema",
            800,
            [comp.weekly(1.6, (4, 5)), comp.white_noise(0.06)],
            "Strong Friday/Saturday peaks, 52 per year (fig. 1).",
            ("weekly",),
        ),
        _profile(
            "nordstrom",
            300,
            [
                comp.weekly(1.1, (4, 5, 6)),
                comp.annual_ramp((12, 24), 1.2, rise=20, fall=4),
                comp.white_noise(0.08),
            ],
            "Weekend shopping peaks plus a pre-Christmas swell (fig. 13).",
            ("weekly",),
        ),
        _profile(
            "bank",
            600,
            [comp.weekly(0.9, (0, 1, 2, 3, 4)), comp.white_noise(0.05)],
            "Weekday-driven demand (fig. 5).",
            ("weekly",),
        ),
        _profile(
            "restaurants",
            400,
            [comp.weekly(1.0, (4, 5)), comp.white_noise(0.08)],
            "Weekend dining research.",
            ("weekly",),
        ),
        _profile(
            "movie listings",
            350,
            [comp.weekly(1.4, (4, 5)), comp.white_noise(0.1)],
            "Cinema sibling with its own noise floor.",
            ("weekly",),
        ),
        _profile(
            "weather",
            1500,
            [comp.weekly(0.25, (0,)), comp.random_walk(0.01)],
            "High-volume utility query, mild Monday bump.",
            ("weekly", "background"),
        ),
        # ------------------------------------------------------------------
        # Monthly periodicity (figs. 13, 16)
        # ------------------------------------------------------------------
        _profile(
            "full moon",
            120,
            [comp.monthly(2.2, phase=14.0), comp.white_noise(0.08)],
            "One bump per lunation, ~29.5-day period (fig. 13).",
            ("monthly",),
        ),
        _profile(
            "tides",
            60,
            [comp.monthly(1.0, phase=2.0), comp.seasonal(0.8, 196, 50)],
            "Lunar cycle on a summery background.",
            ("monthly",),
        ),
        # ------------------------------------------------------------------
        # Annual holidays with ramp-then-drop shapes (figs. 2, 14, 15, 16)
        # ------------------------------------------------------------------
        _profile(
            "easter",
            250,
            [comp.annual_ramp(easter_date, 4.0, rise=30, fall=3)],
            "Builds through spring, collapses after the moving feast (fig. 2).",
            ("annual", "burst"),
        ),
        _profile(
            "halloween",
            220,
            [comp.annual_ramp((10, 31), 5.0, rise=18, fall=3)],
            "October/November burst (fig. 14).",
            ("annual", "burst"),
        ),
        _profile(
            "christmas",
            500,
            [comp.annual_ramp((12, 25), 4.5, rise=28, fall=4)],
            "December accumulation (fig. 19).",
            ("annual", "burst"),
        ),
        _profile(
            "christmas gifts",
            180,
            [comp.annual_ramp((12, 25), 4.0, rise=24, fall=4)],
            "Rides the same December wave as 'christmas'.",
            ("annual", "burst"),
        ),
        _profile(
            "gingerbread men",
            40,
            [comp.annual_ramp((12, 23), 3.5, rise=20, fall=5)],
            "Query-by-burst match for 'christmas' (fig. 19).",
            ("annual", "burst"),
        ),
        _profile(
            "rudolph the red nosed reindeer",
            35,
            [comp.annual_ramp((12, 24), 4.0, rise=18, fall=4)],
            "Query-by-burst match for 'christmas' (fig. 19).",
            ("annual", "burst"),
        ),
        _profile(
            "thanksgiving",
            260,
            [comp.annual_ramp(thanksgiving, 5.0, rise=14, fall=2)],
            "Fourth-Thursday-of-November burst.",
            ("annual", "burst"),
        ),
        _profile(
            "valentines day",
            150,
            [comp.annual_ramp((2, 14), 5.0, rise=10, fall=2)],
            "Mid-February burst.",
            ("annual", "burst"),
        ),
        _profile(
            "mothers day",
            140,
            [comp.annual_ramp(mothers_day, 5.0, rise=10, fall=2)],
            "Second-Sunday-of-May burst.",
            ("annual", "burst"),
        ),
        _profile(
            "flowers",
            200,
            [
                comp.annual_ramp((2, 14), 3.2, rise=8, fall=2),
                comp.annual_ramp(mothers_day, 3.0, rise=8, fall=2),
                comp.weekly(0.15, (4,)),
            ],
            "Two long-term bursts: Valentine's and Mother's Day (fig. 16).",
            ("annual", "burst"),
        ),
        _profile(
            "taxes",
            240,
            [comp.annual_ramp((4, 15), 3.5, rise=35, fall=3)],
            "Builds to the US filing deadline.",
            ("annual", "burst"),
        ),
        _profile(
            "fireworks",
            90,
            [
                comp.annual_ramp((7, 4), 5.5, rise=8, fall=2),
                comp.annual_ramp((12, 31), 2.5, rise=5, fall=1.5),
            ],
            "Independence Day and New Year's Eve.",
            ("annual", "burst"),
        ),
        _profile(
            "back to school",
            110,
            [comp.annual_ramp((8, 25), 3.0, rise=20, fall=8)],
            "Late-August ramp.",
            ("annual", "burst"),
        ),
        _profile(
            "super bowl",
            160,
            [comp.annual_ramp(super_bowl_sunday, 6.0, rise=10, fall=1.5)],
            "Last-Sunday-of-January spike.",
            ("annual", "burst"),
        ),
        # ------------------------------------------------------------------
        # Anniversaries and seasons
        # ------------------------------------------------------------------
        _profile(
            "elvis",
            130,
            [comp.annual_spike((8, 16), 5.0, width=1.2), comp.white_noise(0.07)],
            "Peaks every August 16, the death anniversary (fig. 3).",
            ("annual", "spike"),
        ),
        _profile(
            "beach",
            180,
            [comp.seasonal(1.8, peak_day_of_year=196, width=40)],
            "Broad July season.",
            ("seasonal",),
        ),
        _profile(
            "skiing",
            150,
            [
                comp.seasonal(1.6, peak_day_of_year=15, width=30),
                comp.seasonal(1.2, peak_day_of_year=350, width=20),
            ],
            "Winter season straddling the year boundary.",
            ("seasonal",),
        ),
        _profile(
            "hurricane",
            140,
            [
                comp.seasonal(1.2, peak_day_of_year=250, width=35),
                comp.annual_spike((9, 15), 2.5, width=4.0),
            ],
            "Hurricane-season bursts, late summer (fig. 19).",
            ("seasonal", "burst"),
        ),
        _profile(
            "www.nhc.noaa.gov",
            45,
            [
                comp.seasonal(1.4, peak_day_of_year=252, width=30),
                comp.annual_spike((9, 15), 2.8, width=4.0),
            ],
            "National Hurricane Center traffic; matches 'hurricane' (fig. 19).",
            ("seasonal", "burst"),
        ),
        _profile(
            "tropical storm",
            55,
            [
                comp.seasonal(1.3, peak_day_of_year=248, width=32),
                comp.annual_spike((9, 12), 2.4, width=5.0),
            ],
            "Sibling of 'hurricane' (fig. 19).",
            ("seasonal", "burst"),
        ),
        # ------------------------------------------------------------------
        # One-off news events (figs. 13, 19)
        # ------------------------------------------------------------------
        _profile(
            "world trade center",
            100,
            [comp.one_off(_WTC_DAY, 18.0, rise=0.6, fall=25)],
            "The September 11 burst (fig. 19).",
            ("news",),
        ),
        _profile(
            "pentagon attack",
            25,
            [comp.one_off(_WTC_DAY, 16.0, rise=0.6, fall=18)],
            "Query-by-burst match for 'world trade center' (fig. 19).",
            ("news",),
        ),
        _profile(
            "nostradamus prediction",
            15,
            [comp.one_off(_WTC_DAY + _dt.timedelta(days=1), 14.0, rise=0.8, fall=10)],
            "Query-by-burst match for 'world trade center' (fig. 19).",
            ("news",),
        ),
        _profile(
            "dudley moore",
            30,
            [comp.one_off(_DUDLEY_MOORE_DEATH, 12.0, rise=0.6, fall=2),
             comp.white_noise(0.15)],
            "Flat except for the actor's death in March 2002 (fig. 13).",
            ("news",),
        ),
        _profile(
            "harry potter",
            120,
            [
                comp.one_off(_HARRY_POTTER_PREMIERE, 6.0, rise=12, fall=20),
                comp.random_walk(0.02),
            ],
            "Film premiere, November 2001.",
            ("news",),
        ),
        _profile(
            "lord of the rings",
            110,
            [
                comp.one_off(_FELLOWSHIP_PREMIERE, 6.5, rise=12, fall=22),
                comp.random_walk(0.02),
            ],
            "Film premiere, December 2001.",
            ("news",),
        ),
        _profile(
            "olympics",
            170,
            [
                comp.one_off(_SYDNEY_OLYMPICS, 7.0, rise=10, fall=14),
                comp.one_off(_SALT_LAKE_OLYMPICS, 6.0, rise=8, fall=12),
            ],
            "Sydney 2000 and Salt Lake 2002 bursts.",
            ("news",),
        ),
        _profile(
            "athens 2004",
            20,
            [
                comp.linear_trend(1.5),
                comp.one_off(_SYDNEY_OLYMPICS, 2.5, rise=5, fall=10),
                comp.white_noise(0.12),
            ],
            "Slowly growing interest toward the 2004 games (fig. 5).",
            ("trend",),
        ),
        # ------------------------------------------------------------------
        # Aperiodic backgrounds (figs. 5, 12)
        # ------------------------------------------------------------------
        _profile(
            "president",
            380,
            [
                comp.random_walk(0.03),
                comp.one_off(_dt.date(2000, 11, 7), 4.0, rise=6, fall=15),
                comp.one_off(_dt.date(2001, 1, 20), 2.0, rise=2, fall=6),
            ],
            "Election-driven with a wandering baseline (fig. 5).",
            ("aperiodic",),
        ),
        _profile(
            "email",
            2000,
            [comp.random_walk(0.015)],
            "High-volume utility query, no calendar structure.",
            ("aperiodic", "background"),
        ),
        _profile(
            "maps",
            900,
            [comp.random_walk(0.02), comp.weekly(0.1, (0, 1, 2, 3, 4))],
            "Near-flat background with a faint weekday tilt.",
            ("aperiodic", "background"),
        ),
        _profile(
            "news",
            1100,
            [
                comp.random_walk(0.02),
                comp.one_off(_WTC_DAY, 5.0, rise=0.6, fall=30),
            ],
            "Background demand that inherits the September 2001 shock.",
            ("aperiodic", "news"),
        ),
        _profile(
            "lottery numbers",
            140,
            [comp.weekly(0.6, (2, 5)), comp.white_noise(0.12)],
            "Twice-weekly draw peaks (a 3.5-day periodicity).",
            ("weekly",),
        ),
    ]
}


def profile(name: str) -> QueryProfile:
    """Look up a catalog profile by query string."""
    try:
        return CATALOG[name]
    except KeyError:
        raise UnknownQueryError(name) from None


def catalog_names(tag: str | None = None) -> Sequence[str]:
    """All catalog query names, optionally filtered by tag."""
    if tag is None:
        return tuple(CATALOG)
    return tuple(name for name, p in CATALOG.items() if tag in p.tags)
