"""The seeded kill-point drill: crash at every seam, recover exactly.

For each write-path mutation the drill first *records* the seam
sequence with an unarmed :class:`~repro.resilience.CrashPlan`, then
re-runs the mutation once per step with a step-armed plan, "kills the
process" there (the store poisons itself, exactly like a real kill
would make the memory image unreachable), reopens the directory, and
asserts the recovered state is **bit-identical to a legal snapshot** —
the state just before the mutation or just after it, nothing in
between and nothing invented.

Which of the two is legal is not "either": every seam has an exact
expectation.  A WAL group is atomic around its single ``write(2)``
(``wal.write`` → before, ``wal.sync`` → after); a seal or compaction
belongs to the old generation until the manifest rename lands
(everything up to and including ``manifest.rename`` → before,
``*.gc`` → after).  The drill asserts that mapping seam by seam.
"""

import contextlib

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.resilience import CrashPlan, InjectedCrashError, crash_plan
from repro.stream import StreamStore
from repro.timeseries.preprocessing import zscore

pytestmark = pytest.mark.faults

DAYS = 32

#: Exact post-recovery expectation per seam: does a kill *at* this seam
#: land on the state before the mutation, or after it completed?
EXPECT = {
    "wal.write": "before",
    "wal.sync": "after",
    "seal.segment.write": "before",
    "seal.segment.sync": "before",
    "seal.wal.rotate": "before",
    "manifest.tmp.write": "before",
    "manifest.rename": "before",
    "seal.gc": "after",
    "compact.segment.write": "before",
    "compact.segment.sync": "before",
    "compact.gc": "after",
}

SEAL_SEAMS = (
    "seal.segment.write",
    "seal.segment.sync",
    "seal.wal.rotate",
    "manifest.tmp.write",
    "manifest.rename",
    "seal.gc",
)
COMPACT_SEAMS = (
    "compact.segment.write",
    "compact.segment.sync",
    "manifest.tmp.write",
    "manifest.rename",
    "compact.gc",
)


def _counts(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=DAYS).astype(float)


_QUERIES = (
    zscore(np.arange(DAYS, dtype=float) % 7),
    zscore(_counts(777)),
)


def _build(directory) -> StreamStore:
    """The deterministic pre-state every scenario starts from.

    Six sealed series (one generation), two live ones with a WAL tail
    behind them — both tiers populated, so every recovery assertion
    exercises segment adoption *and* WAL replay.
    """
    store = StreamStore(directory, DAYS, fsync=False)
    store.append_many((f"s{i}", _counts(i)) for i in range(6))
    store.seal()
    store.append("l0", _counts(10))
    store.append("l1", _counts(11))
    store.record("l0", 4.0)
    return store


def _snapshot(store) -> tuple:
    """The canonical observable state: names, generation and answers.

    Answers are keyed by name (recovery may renumber live rows) with
    distances kept to full precision modulo a 1e-12 round — the
    "bit-identical" bar every legal snapshot comparison uses.  ``k``
    is the whole population, so every visible row's distance is part of
    the canonical state and no mutation can hide below the cut.
    """
    k = len(store)
    answers = tuple(
        frozenset(
            (n.name, round(n.distance, 12))
            for n in store.search(query, k)[0]
        )
        for query in _QUERIES
    )
    return (tuple(sorted(store.names())), store.generation, answers)


# Each scenario is one atomic mutation: (name, op).  The drill builds
# the shared pre-state, records op's seam sequence, then kills at every
# step of it.
SCENARIOS = (
    ("append", lambda s: s.append("fresh", _counts(20))),
    (
        "append-batch",
        lambda s: s.append_many(
            [("b0", _counts(21)), ("b1", _counts(22)), ("b2", _counts(23))]
        ),
    ),
    ("append-supersede", lambda s: s.append("s1", _counts(24))),
    ("record-event", lambda s: s.record("l0", 9.0)),
    ("record-supersede", lambda s: s.record("s0", 9.0)),
    ("rollover", lambda s: s.rollover()),
    ("delete-live", lambda s: s.delete("l1")),
    ("delete-sealed", lambda s: s.delete("s2")),
    ("seal", lambda s: s.seal()),
)


def _record_seams(tmp_path, op) -> list[str]:
    plan = CrashPlan()  # recording mode: log every seam, never fire
    store = _build(tmp_path / "record")
    try:
        with crash_plan(plan):
            op(store)
    finally:
        store.close()
    assert plan.fired is None
    return plan.log


def _legal_states(tmp_path, op) -> dict:
    before_store = _build(tmp_path / "before")
    try:
        before = _snapshot(before_store)
    finally:
        before_store.close()
    after_store = _build(tmp_path / "after")
    try:
        op(after_store)
        after = _snapshot(after_store)
    finally:
        after_store.close()
    return {"before": before, "after": after}


@pytest.mark.parametrize("name,op", SCENARIOS, ids=[n for n, _ in SCENARIOS])
def test_kill_at_every_seam_recovers_a_legal_snapshot(tmp_path, name, op):
    seams = _record_seams(tmp_path, op)
    assert seams, f"scenario {name} crossed no crash points"
    if name == "seal":
        assert tuple(seams) == SEAL_SEAMS
    else:
        assert tuple(seams) == ("wal.write", "wal.sync")
    legal = _legal_states(tmp_path, op)
    assert legal["before"] != legal["after"]  # the op is observable
    for step, seam in enumerate(seams):
        directory = tmp_path / f"kill-{step}"
        store = _build(directory)
        plan = CrashPlan(step=step)
        with pytest.raises(InjectedCrashError):
            with crash_plan(plan):
                op(store)
        assert plan.fired == seam
        # The store is poisoned: its memory image may trail the disk,
        # so it refuses everything until reopened — like a dead process.
        with pytest.raises(StorageError, match="poisoned"):
            store.names()
        with contextlib.suppress(Exception):
            store.close()
        with StreamStore(directory, fsync=False) as reopened:
            assert _snapshot(reopened) == legal[EXPECT[seam]], (
                f"scenario {name}: kill at {seam!r} (step {step}) did "
                f"not recover to the {EXPECT[seam]} snapshot"
            )


def test_kill_at_every_compaction_seam(tmp_path):
    def build(directory):
        store = StreamStore(directory, DAYS, fsync=False)
        store.append_many((f"s{i}", _counts(i)) for i in range(5))
        store.seal()
        store.append("s0", _counts(30))  # supersede across segments
        store.append("extra", _counts(31))
        store.seal()
        store.delete("s3")
        return store

    plan = CrashPlan()
    store = build(tmp_path / "record")
    try:
        with crash_plan(plan):
            store.compact()
    finally:
        store.close()
    assert tuple(plan.log) == COMPACT_SEAMS

    before_store = build(tmp_path / "before")
    try:
        before = _snapshot(before_store)
    finally:
        before_store.close()
    after_store = build(tmp_path / "after")
    try:
        after_store.compact()
        after = _snapshot(after_store)
    finally:
        after_store.close()
    # Compaction changes no answers, only the generation and layout.
    assert before[0] == after[0] and before[2] == after[2]
    legal = {"before": before, "after": after}

    for step, seam in enumerate(COMPACT_SEAMS):
        directory = tmp_path / f"kill-{step}"
        store = build(directory)
        with pytest.raises(InjectedCrashError):
            with crash_plan(CrashPlan(step=step)):
                store.compact()
        with contextlib.suppress(Exception):
            store.close()
        with StreamStore(directory, fsync=False) as reopened:
            assert _snapshot(reopened) == legal[EXPECT[seam]], (
                f"kill at {seam!r} did not recover to the "
                f"{EXPECT[seam]} snapshot"
            )
            assert reopened.recovery.wal_records > 0 or seam.endswith(".gc")


def test_recovered_store_serves_every_backend(tmp_path):
    """After a mid-seal kill, the union answers on all seven backends."""
    directory = tmp_path / "stream"
    store = _build(directory)
    before = _snapshot(store)
    with pytest.raises(InjectedCrashError):
        with crash_plan(CrashPlan(point="manifest.rename")):
            store.seal()
    with contextlib.suppress(Exception):
        store.close()
    with StreamStore(directory, fsync=False) as reopened:
        assert _snapshot(reopened) == before
        flat = {
            (n.name, round(n.distance, 12))
            for n in reopened.search(_QUERIES[0], 4)[0]
        }
        for backend in ("scan", "vptree", "mvptree", "mtree", "rtree"):
            got = {
                (n.name, round(n.distance, 12))
                for n in reopened.search(_QUERIES[0], 4, backend=backend)[0]
            }
            assert got == flat, backend
        sharded = {
            (n.name, round(n.distance, 12))
            for n in reopened.search(
                _QUERIES[0], 4, backend="sharded", shards=2
            )[0]
        }
        assert sharded == flat


def test_repeated_kills_then_recovery_converges(tmp_path):
    """Crash-on-crash: killing every seal attempt never corrupts."""
    directory = tmp_path / "stream"
    store = _build(directory)
    before = _snapshot(store)
    store.close()
    for step in range(5):  # every pre-rename seal seam, repeatedly
        store = StreamStore(directory, fsync=False)
        assert _snapshot(store) == before
        with pytest.raises(InjectedCrashError):
            with crash_plan(CrashPlan(step=step)):
                store.seal()
        with contextlib.suppress(Exception):
            store.close()
    with StreamStore(directory, fsync=False) as survivor:
        assert _snapshot(survivor) == before
        survivor.seal()  # and the seal still lands when allowed to
        assert sorted(survivor.names()) == sorted(before[0])
        assert survivor.live_count == 0
