"""repro — reproduction of *Identifying Similarities, Periodicities and
Bursts for Online Search Queries* (Vlachos, Meek, Vagena & Gunopulos,
SIGMOD 2004).

The package mirrors the paper's structure:

* :mod:`repro.timeseries` — series containers, standardisation, moving
  averages;
* :mod:`repro.spectral` — the normalised DFT, periodogram and
  reconstruction machinery of section 2;
* :mod:`repro.compression` — the first-/best-coefficient compressed
  representations and the equal-storage budgeting of sections 3 and 7.1;
* :mod:`repro.bounds` — the LB/UB algorithms (GEMINI, Wang, BestMin,
  BestError, BestMinError) plus vectorised batch kernels;
* :mod:`repro.index` — the compressed-vantage-point VP-tree of section 4
  and the linear-scan baseline;
* :mod:`repro.engine` — the shared query-execution core: one verifier
  behind every index, a string-keyed registry (``get_index``) and the
  batched ``search_many`` entry point;
* :mod:`repro.cluster` — horizontal partitioning: deterministic shard
  assignment, per-shard page stores with a checksummed manifest, and the
  scatter-gather ``ShardRouter`` behind the same engine protocol;
* :mod:`repro.periods` — the exponential-threshold period detector of
  section 5;
* :mod:`repro.bursts` — burst detection, compaction, similarity and
  DBMS-backed query-by-burst of section 6;
* :mod:`repro.storage` — the relational substrate (B+tree, table, page
  store);
* :mod:`repro.stream` — crash-safe streaming ingest: WAL-backed live
  tier, generational manifests, seal + recoverable compaction;
* :mod:`repro.datagen` — the synthetic MSN-style query-log source;
* :mod:`repro.wavelets` — a Haar basis proving the orthonormal-basis
  generality claim;
* :mod:`repro.evaluation` — the section 7 experiment harness;
* :mod:`repro.obs` — opt-in metrics/tracing over every hot path;
* :mod:`repro.tools` — terminal plotting and the S2 explorer (§7.5).

Quickstart::

    from repro import QueryLogGenerator, VPTreeIndex, detect_periods

    gen = QueryLogGenerator(seed=0)
    collection = gen.catalog_collection().standardize()
    index = VPTreeIndex(collection.as_matrix(), names=list(collection.names))
    neighbors, _ = index.search(collection["cinema"].values, k=5)
    periods = detect_periods(collection["cinema"])
"""

from repro import obs
from repro.bounds import BoundPair, batch_bounds, bounds_for
from repro.bursts import (
    Burst,
    BurstDatabase,
    BurstDetector,
    burst_similarity,
    compact_bursts,
)
from repro.compression import (
    AdaptiveEnergyCompressor,
    BestErrorCompressor,
    BestKCompressor,
    BestMinCompressor,
    BestMinErrorCompressor,
    GeminiCompressor,
    SketchDatabase,
    SpectralSketch,
    StorageBudget,
    WangCompressor,
)
from repro.datagen import CATALOG, QueryLogGenerator
from repro.exceptions import ReproError
from repro.index import LinearScanIndex, Neighbor, SearchStats, VPTreeIndex

# The index structures import the engine's verification core, so the
# index package must initialise before the engine package does.
from repro.engine import ApproxPolicy, available_indexes, get_index, search_many
from repro.cluster import (
    Partitioner,
    ShardRouter,
    build_sharded,
    open_sharded,
)
from repro.miner import QueryLogMiner
from repro.obs import MetricsRegistry, observed, span
from repro.placement import PlacementPlan, plan_placement
from repro.periods import PeriodDetector, detect_periods
from repro.spectral import Periodogram, Spectrum, periodogram
from repro.stream import StreamStore
from repro.timeseries import TimeSeries, TimeSeriesCollection

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "TimeSeries",
    "TimeSeriesCollection",
    "Spectrum",
    "Periodogram",
    "periodogram",
    "SpectralSketch",
    "SketchDatabase",
    "GeminiCompressor",
    "WangCompressor",
    "BestKCompressor",
    "BestMinCompressor",
    "BestErrorCompressor",
    "BestMinErrorCompressor",
    "AdaptiveEnergyCompressor",
    "StorageBudget",
    "BoundPair",
    "bounds_for",
    "batch_bounds",
    "LinearScanIndex",
    "VPTreeIndex",
    "Neighbor",
    "SearchStats",
    "ApproxPolicy",
    "available_indexes",
    "get_index",
    "search_many",
    "Partitioner",
    "ShardRouter",
    "build_sharded",
    "open_sharded",
    "PeriodDetector",
    "detect_periods",
    "BurstDetector",
    "Burst",
    "BurstDatabase",
    "burst_similarity",
    "compact_bursts",
    "QueryLogGenerator",
    "QueryLogMiner",
    "StreamStore",
    "obs",
    "MetricsRegistry",
    "observed",
    "span",
    "PlacementPlan",
    "plan_placement",
    "CATALOG",
]
