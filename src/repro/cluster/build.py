"""Building (and reopening) a sharded population.

:func:`build_sharded` splits a ``(count, n)`` database matrix into N
shards under a deterministic :class:`~repro.cluster.Partitioner`, builds
one registry backend per shard, and wires them behind a
:class:`~repro.cluster.ShardRouter`.  With a ``directory``, each shard
also gets its own checksummed page-store file (pagestore format v2) and
the split is described by a CRC-checked
:class:`~repro.cluster.ShardManifest`; :func:`open_sharded` rebuilds the
router from that directory alone.

The default shard count comes from the ``REPRO_SHARDS`` environment
variable (else 2), which is how the CI matrix runs the whole tier-1
suite against a 4-shard router without touching any test.  Setting
``REPRO_SHARD_WORKERS`` (to any integer >= 1) additionally routes
builds and searches through the persistent
:class:`~repro.cluster.ShardWorkerPool` — one long-lived worker process
per populated shard over shared memory — again without touching any
test; ``worker_pool=True``/``False`` overrides the environment per
call.  Pooled routers serve the same bit-identical answers but cannot
accept dynamic inserts (see ``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro import obs
from repro.cluster.manifest import ShardManifest
from repro.cluster.partitioner import Partitioner
from repro.cluster.router import ShardRouter
from repro.compression.database import SketchDatabase
from repro.engine.executor import fork_map
from repro.exceptions import CorruptionError, ReproError, SeriesMismatchError
from repro.storage.pagestore import SequencePageStore
from repro.tools.envparse import parse_env_int

__all__ = [
    "build_sharded",
    "default_shard_count",
    "default_worker_pool",
    "open_sharded",
]

#: Fallback shard count when ``REPRO_SHARDS`` is unset or blank.
DEFAULT_SHARDS = 2

#: Registry backends whose constructors accept a ``store=`` keyword.
_STORE_BACKENDS = frozenset({"flat", "vptree", "mvptree", "scan"})

#: Registry backends with seeded construction randomness; ``seed`` is
#: shared between the partitioner and their per-shard constructors.
_SEEDED_BACKENDS = frozenset({"vptree", "mvptree"})


def default_shard_count() -> int:
    """Shard count from ``REPRO_SHARDS``, else :data:`DEFAULT_SHARDS`.

    A set-but-unusable value raises :class:`~repro.exceptions.ReproError`
    naming the variable — a mistyped knob should fail loudly, not
    silently rebuild the population over the default shard count.
    """
    return parse_env_int("REPRO_SHARDS", DEFAULT_SHARDS, minimum=1)


def default_worker_pool() -> bool:
    """Whether ``REPRO_SHARD_WORKERS`` enables the persistent pool.

    Any integer >= 1 enables it; the pool always runs one worker per
    populated shard, so the value is a switch, not a count.  Unset,
    empty, or non-positive keeps the in-process scatter paths.
    """
    raw = os.environ.get("REPRO_SHARD_WORKERS", "").strip()
    try:
        return int(raw) >= 1
    except ValueError:
        return False


def _canonical_backend(backend: str) -> str:
    from repro.engine.registry import _ALIASES, INDEX_BUILDERS

    key = _ALIASES.get(backend, backend)
    if key in ("sharded", "shard"):
        raise ReproError("shards cannot themselves be sharded")
    if key not in INDEX_BUILDERS:
        known = ", ".join(sorted(set(INDEX_BUILDERS) - {"sharded"}))
        raise ReproError(
            f"unknown shard backend {backend!r}; available: {known}"
        )
    return key


def _shard_file(shard: int) -> str:
    return f"shard-{shard:02d}.pages"


def build_sharded(
    matrix: np.ndarray,
    *,
    shards: int | None = None,
    policy: str = "hash",
    seed: int = 0,
    backend: str = "flat",
    names: Sequence[str] | None = None,
    directory: str | os.PathLike | None = None,
    partitioner: Partitioner | None = None,
    workers: int | None = None,
    build_workers: int | None = None,
    worker_pool: bool | None = None,
    **index_kwargs,
) -> ShardRouter:
    """Partition ``matrix`` into shard indexes behind one router.

    Parameters
    ----------
    matrix:
        The ``(count, n)`` database.
    shards / policy / seed:
        Partitioner configuration (``shards``/``policy`` are ignored
        when an explicit ``partitioner`` is supplied).  ``shards=None``
        takes :func:`default_shard_count`; ``seed`` also seeds the
        per-shard constructors of backends with construction randomness
        unless ``index_kwargs`` carries its own ``seed``.
    backend:
        Any non-sharded registry backend; one instance is built per
        populated shard, with ``**index_kwargs`` forwarded.
    directory:
        When given, each shard's sequences are persisted to its own
        page-store file there and a checksummed manifest is written, so
        :func:`open_sharded` can rebuild the router later.
    workers:
        Scatter parallelism of the returned router (see
        :class:`~repro.cluster.ShardRouter`).
    build_workers:
        Build parallelism: shards are built (store write + index
        construction) on a pool of forked workers, the same
        :func:`~repro.engine.executor.fork_map` machinery the batched
        search uses.  ``None`` or 1 keeps the serial path; the built
        shard indexes — stores included — are pickled back to the
        parent, which is why every registry backend is picklable.
        Ignored when the worker pool is active: the pool's own warm-up
        *is* the parallel build (every worker writes its shard's store
        and constructs its index concurrently), so a separate build
        fan-out would be redundant.
    worker_pool:
        ``True`` routes the returned router through a persistent
        :class:`~repro.cluster.ShardWorkerPool`; ``False`` forces the
        in-process paths; ``None`` (default) defers to
        :func:`default_worker_pool` (the ``REPRO_SHARD_WORKERS``
        environment switch).  Pooled routers return bit-identical
        answers, shut their workers down deterministically via
        ``router.close()`` (or a ``with`` block), and do not support
        dynamic inserts.
    """
    from repro.engine.registry import get_index

    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise SeriesMismatchError(
            f"expected a 2-D database matrix, got shape {matrix.shape}"
        )
    if names is not None and len(names) != len(matrix):
        raise SeriesMismatchError("names must align with the matrix rows")
    key = _canonical_backend(backend)
    if partitioner is None:
        partitioner = Partitioner(
            shards if shards is not None else default_shard_count(),
            policy=policy,
            seed=seed,
        )
    if key in _SEEDED_BACKENDS and "seed" not in index_kwargs:
        index_kwargs["seed"] = seed
    total, n = int(matrix.shape[0]), int(matrix.shape[1])
    members = partitioner.members(total)

    # One compression pass for the whole population, sliced into
    # shard-local views — the flat backend then skips per-shard
    # recompression entirely (and the views are bit-identical to what a
    # per-shard compression would produce, since sketches are per-row).
    shared_sketches = None
    if key == "flat" and "sketch_db" not in index_kwargs and total:
        from repro.compression.best_k import BestMinErrorCompressor

        compressor = index_kwargs.get("compressor") or BestMinErrorCompressor(
            14
        )
        with obs.span("ingest.compress"):
            shared_sketches = SketchDatabase.from_matrix(matrix, compressor)

    if directory is not None:
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)

    pooled = default_worker_pool() if worker_pool is None else bool(worker_pool)
    if pooled:
        return _build_pooled(
            matrix=matrix,
            n=n,
            total=total,
            key=key,
            names=names,
            directory=directory,
            partitioner=partitioner,
            members=members,
            shared_sketches=shared_sketches,
            index_kwargs=index_kwargs,
            workers=workers,
        )

    def build_one(shard: int):
        """Build shard ``shard`` end to end: store write + index build.

        Runs either in the parent (serial path) or in a forked pool
        worker; workers inherit ``matrix``/``members`` by fork and only
        the finished shard index crosses the pickle boundary back.
        """
        rows = members[shard]
        sub_matrix = matrix[rows]
        store = None
        if directory is not None:
            with obs.span("ingest.store_write"):
                store = SequencePageStore(
                    os.path.join(directory, _shard_file(shard)), n
                )
                store.append_matrix(sub_matrix)
        if rows.size == 0:
            if store is not None:
                store.close()
            return None
        kwargs = dict(index_kwargs)
        if store is not None and key in _STORE_BACKENDS:
            kwargs["store"] = store
        elif store is not None:
            store.close()  # matrix-backed structure; file stays for reopen
        if shared_sketches is not None:
            kwargs["sketch_db"] = shared_sketches.take(rows)
        sub_names = (
            [names[int(i)] for i in rows] if names is not None else None
        )
        with obs.span("ingest.build"):
            sub = get_index(key, sub_matrix, names=sub_names, **kwargs)
        # Instance-level obs tag, so every engine span and counter the
        # sub-index emits is shard-addressed automatically.
        sub.obs_name = f"index.sharded.shard{shard:02d}"
        return sub

    built = fork_map(build_one, range(len(members)), build_workers)
    if built is None:
        built = [build_one(shard) for shard in range(len(members))]
    pairs = list(zip(built, members))
    files = (
        [_shard_file(shard) for shard in range(len(members))]
        if directory is not None
        else []
    )

    router = ShardRouter(
        pairs,
        partitioner=partitioner,
        workers=workers,
        sequence_length=n if total == 0 else None,
    )
    if directory is not None:
        ShardManifest(
            policy=partitioner.policy,
            seed=partitioner.seed,
            shards=partitioner.shards,
            total=total,
            sequence_length=n,
            backend=key,
            counts=tuple(int(rows.size) for rows in members),
            files=tuple(files),
        ).save(directory)
    return router


def _pooled_pairs(pool, specs, members, sequence_length, arena):
    """Parent-side ``(ShardStub, global_ids)`` pairs for a warm pool.

    Each stub gets the parent's *own* handle on the shard's bytes — a
    fresh read handle on the checksummed page store, or a store view
    over the shared-memory matrix — so verification never round-trips
    through a worker.
    """
    from repro.cluster.pool import ShardStub
    from repro.storage.shm import MatrixSequenceStore

    by_shard = {spec.shard: spec for spec in specs}
    pairs: list[tuple[object, np.ndarray]] = []
    for shard, rows in enumerate(members):
        if rows.size == 0:
            pairs.append((None, rows))
            continue
        spec = by_shard[shard]
        if spec.store_path is not None:
            store = SequencePageStore.open(spec.store_path)
            if len(store) != int(rows.size):
                count = len(store)
                store.close()
                raise CorruptionError(
                    f"shard file {os.path.basename(spec.store_path)} "
                    f"holds {count} sequences, expected {rows.size}"
                )
        else:
            store = MatrixSequenceStore(arena.array(spec.matrix_key))
        stub = ShardStub(
            shard,
            int(rows.size),
            sequence_length,
            store,
            spec.names,
            spec.obs_name,
            pool,
        )
        pairs.append((stub, rows))
    return pairs


def _build_pooled(
    *,
    matrix,
    n,
    total,
    key,
    names,
    directory,
    partitioner,
    members,
    shared_sketches,
    index_kwargs,
    workers,
):
    """The worker-pool build: publish, spawn, warm, wire the router.

    The parent stages each shard's sub-matrix, its squared norms (the
    workers' attach-time integrity handshake) and its slice of the
    shared sketch blocks into one :class:`SharedArena`, then starts the
    pool; every worker writes its own page store (when persisting) and
    builds its own index concurrently during warm-up, which is also the
    parallel-build path.  Any failure — staging, spawn, a worker
    refusing to warm, manifest write — tears the pool (and the arena)
    down deterministically before the exception propagates: no orphan
    processes, no leaked ``/dev/shm`` segments.
    """
    from repro.cluster.pool import ShardSpec, ShardWorkerPool
    from repro.storage.shm import SharedArena, stage_sketch_database

    arena = SharedArena()
    specs: list[ShardSpec] = []
    try:
        for shard, rows in enumerate(members):
            if rows.size == 0:
                if directory is not None:
                    # Workers only exist for populated shards; the
                    # parent writes the (empty) store file so reopen
                    # finds the full set the manifest promises.
                    SequencePageStore(
                        os.path.join(directory, _shard_file(shard)), n
                    ).close()
                continue
            sub_matrix = np.ascontiguousarray(matrix[rows])
            matrix_key = f"shard{shard:02d}.matrix"
            norms_key = f"shard{shard:02d}.norms"
            arena.stage(matrix_key, sub_matrix)
            arena.stage(
                norms_key,
                np.einsum("ij,ij->i", sub_matrix, sub_matrix),
            )
            sketch_meta = None
            if shared_sketches is not None:
                sketch_meta = stage_sketch_database(
                    arena,
                    f"shard{shard:02d}.sketches",
                    shared_sketches.take(rows),
                )
            specs.append(
                ShardSpec(
                    shard=shard,
                    backend=key,
                    size=int(rows.size),
                    sequence_length=n,
                    obs_name=f"index.sharded.shard{shard:02d}",
                    names=(
                        tuple(names[int(i)] for i in rows)
                        if names is not None
                        else None
                    ),
                    index_kwargs=dict(index_kwargs),
                    store_path=(
                        os.path.join(directory, _shard_file(shard))
                        if directory is not None
                        else None
                    ),
                    write_store=directory is not None,
                    matrix_key=matrix_key,
                    norms_key=norms_key,
                    sketch_meta=sketch_meta,
                )
            )
        arena.seal()
    except BaseException:
        arena.close()
        raise

    pool = ShardWorkerPool(specs, arena, shard_count=len(members))
    try:
        pool.start()  # warm-up = parallel store writes + index builds
        pairs = _pooled_pairs(pool, specs, members, n, arena)
        router = ShardRouter(
            pairs,
            partitioner=partitioner,
            workers=workers,
            sequence_length=n if total == 0 else None,
            pool=pool,
        )
        if directory is not None:
            ShardManifest(
                policy=partitioner.policy,
                seed=partitioner.seed,
                shards=partitioner.shards,
                total=total,
                sequence_length=n,
                backend=key,
                counts=tuple(int(rows.size) for rows in members),
                files=tuple(
                    _shard_file(shard) for shard in range(len(members))
                ),
            ).save(directory)
        return router
    except BaseException:
        pool.close()
        raise


def open_sharded(
    directory: str | os.PathLike,
    *,
    backend: str | None = None,
    workers: int | None = None,
    worker_pool: bool | None = None,
    **index_kwargs,
) -> ShardRouter:
    """Rebuild a sharded router from a directory written by
    :func:`build_sharded`.

    The manifest's CRC and per-shard counts are verified before any
    index is built; a mismatch raises
    :class:`~repro.exceptions.CorruptionError`.  ``backend`` defaults to
    the one recorded in the manifest.  ``worker_pool`` follows the same
    ``REPRO_SHARD_WORKERS`` default as :func:`build_sharded`; a pooled
    reopen warms one worker per populated shard from its page-store
    file (no shared-memory arena — the stores are the source of truth).
    """
    from repro.engine.registry import get_index

    directory = os.fspath(directory)
    manifest = ShardManifest.load(directory)
    key = _canonical_backend(backend or manifest.backend)
    partitioner = Partitioner(
        manifest.shards, policy=manifest.policy, seed=manifest.seed
    )
    members = partitioner.members(manifest.total)
    for shard, rows in enumerate(members):
        if int(rows.size) != manifest.counts[shard]:
            raise CorruptionError(
                f"shard {shard} holds {manifest.counts[shard]} members "
                f"per manifest but the partitioner assigns {rows.size}"
            )

    pooled = default_worker_pool() if worker_pool is None else bool(worker_pool)
    if pooled:
        from repro.cluster.pool import ShardSpec, ShardWorkerPool

        specs = [
            ShardSpec(
                shard=shard,
                backend=key,
                size=int(rows.size),
                sequence_length=manifest.sequence_length,
                obs_name=f"index.sharded.shard{shard:02d}",
                names=None,  # page stores persist sequences, not names
                index_kwargs=dict(index_kwargs),
                store_path=os.path.join(directory, manifest.files[shard]),
                write_store=False,
            )
            for shard, rows in enumerate(members)
            if rows.size > 0
        ]
        pool = ShardWorkerPool(specs, None, shard_count=len(members))
        try:
            pool.start()
            pairs = _pooled_pairs(
                pool, specs, members, manifest.sequence_length, None
            )
            return ShardRouter(
                pairs,
                partitioner=partitioner,
                workers=workers,
                sequence_length=manifest.sequence_length,
                pool=pool,
            )
        except BaseException:
            pool.close()
            raise

    pairs: list[tuple[object, np.ndarray]] = []
    for shard, rows in enumerate(members):
        store = SequencePageStore.open(
            os.path.join(directory, manifest.files[shard])
        )
        if len(store) != int(rows.size):
            count = len(store)
            store.close()
            raise CorruptionError(
                f"shard file {manifest.files[shard]} holds {count} "
                f"sequences, manifest says {rows.size}"
            )
        if rows.size == 0:
            store.close()
            pairs.append((None, rows))
            continue
        sub_matrix = store.read_many(range(int(rows.size)))
        kwargs = dict(index_kwargs)
        if key in _STORE_BACKENDS:
            kwargs["store"] = store
        else:
            store.close()
        sub = get_index(key, sub_matrix, **kwargs)
        sub.obs_name = f"index.sharded.shard{shard:02d}"
        pairs.append((sub, rows))
    return ShardRouter(
        pairs,
        partitioner=partitioner,
        workers=workers,
        sequence_length=manifest.sequence_length,
    )
