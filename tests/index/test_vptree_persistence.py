"""Tests for saving and loading a VP-tree index."""

import numpy as np
import pytest

from repro.compression import BestMinErrorCompressor
from repro.exceptions import SeriesMismatchError
from repro.index import VPTreeIndex, distances_to_query
from repro.storage import SequencePageStore
from repro.timeseries import zscore


def make_db(count=80, n=64, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.array(
        [
            zscore(
                np.sin(2 * np.pi * t / [7, 12, 30][i % 3] + rng.uniform(0, 6))
                + 0.4 * rng.normal(size=n)
            )
            for i in range(count)
        ]
    )


@pytest.fixture(scope="module")
def matrix():
    return make_db()


class TestSaveLoad:
    def test_roundtrip_answers_identical(self, matrix, tmp_path):
        names = [f"q{i}" for i in range(len(matrix))]
        index = VPTreeIndex(
            matrix,
            compressor=BestMinErrorCompressor(10),
            names=names,
            leaf_size=5,
            seed=1,
        )
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)

        assert len(loaded) == len(index)
        assert loaded.bound_method == index.bound_method
        rng = np.random.default_rng(2)
        for _ in range(5):
            query = zscore(rng.normal(size=64))
            a, _ = index.search(query, k=3)
            b, _ = loaded.search(query, k=3)
            assert [h.seq_id for h in a] == [h.seq_id for h in b]
            assert [h.name for h in a] == [h.name for h in b]
            np.testing.assert_allclose(
                [h.distance for h in a], [h.distance for h in b], atol=1e-12
            )

    def test_loaded_index_is_exact(self, matrix, tmp_path):
        index = VPTreeIndex(matrix, leaf_size=4, seed=3)
        path = tmp_path / "exact.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)
        rng = np.random.default_rng(4)
        query = zscore(rng.normal(size=64))
        hits, _ = loaded.search(query, k=1)
        truth = float(distances_to_query(matrix, query).min())
        assert hits[0].distance == pytest.approx(truth, abs=1e-9)

    def test_tombstones_survive(self, matrix, tmp_path):
        index = VPTreeIndex(matrix, seed=5)
        index.remove(7)
        path = tmp_path / "tomb.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)
        assert len(loaded) == len(matrix) - 1
        hits, _ = loaded.search(matrix[7], k=3)
        assert all(h.seq_id != 7 for h in hits)

    def test_disk_store_reopened(self, matrix, tmp_path, monkeypatch):
        # Scalar verify mode: the strict read-count equality below is a
        # property of the scalar reference loop (blocked verification
        # may prefetch rows past the termination point).
        monkeypatch.setenv("REPRO_VERIFY_BLOCK", "0")
        store = SequencePageStore(tmp_path / "rows.dat", matrix.shape[1])
        index = VPTreeIndex(matrix, store=store, seed=6)
        path = tmp_path / "disk.npz"
        index.save(path)
        store.close()
        loaded = VPTreeIndex.load(path)
        hits, stats = loaded.search(matrix[11], k=1)
        assert hits[0].seq_id == 11
        assert loaded.store.stats.read_calls == stats.full_retrievals

    def test_range_search_after_load(self, matrix, tmp_path):
        index = VPTreeIndex(matrix, seed=7)
        path = tmp_path / "range.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)
        query = matrix[0]
        truth = distances_to_query(matrix, query)
        radius = float(np.median(truth))
        hits, _ = loaded.range_search(query, radius)
        assert {h.seq_id for h in hits} == set(
            np.flatnonzero(truth <= radius).tolist()
        )

    def test_loaded_index_rejects_inserts(self, matrix, tmp_path):
        index = VPTreeIndex(matrix, seed=8)
        path = tmp_path / "ro.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)
        with pytest.raises(SeriesMismatchError):
            loaded.insert(matrix[0])

    def test_save_after_inserts(self, matrix, tmp_path):
        index = VPTreeIndex(
            matrix, compressor=BestMinErrorCompressor(10), leaf_size=4, seed=9
        )
        rng = np.random.default_rng(10)
        extra = [zscore(rng.normal(size=64)) for _ in range(10)]
        for row in extra:
            index.insert(row)
        path = tmp_path / "grown.npz"
        index.save(path)
        loaded = VPTreeIndex.load(path)
        full = np.vstack([matrix, extra])
        query = zscore(rng.normal(size=64))
        hits, _ = loaded.search(query, k=2)
        truth = np.sort(distances_to_query(full, query))[:2]
        np.testing.assert_allclose([h.distance for h in hits], truth, atol=1e-9)
