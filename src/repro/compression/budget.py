"""Equal-storage budgeting across compression methods (Table 1).

Section 7.1 of the paper fixes a memory budget per compressed sequence and
derives how many coefficients each method may keep:

* a *first* coefficient costs 2 doubles (16 bytes: real + imaginary);
* a *best* coefficient also needs its half-spectrum position.  Positions
  fit in 2 bytes (10 bits would do for length-2048 signals), so each best
  [position, coefficient] pair costs 18 bytes = 2.25 doubles;
* every method spends one extra double — the middle coefficient for the
  methods without an error term, or ``T.err`` for those with one.

A budget of ``2c + 1`` doubles therefore buys ``c`` first coefficients or
``floor(16 c / 18) = floor(c / 1.125)`` best coefficients.  The paper's
figures label the configurations "2*(c)+1 doubles"; :class:`StorageBudget`
reproduces that accounting and builds equal-storage compressor sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.best_k import (
    BestErrorCompressor,
    BestMinCompressor,
    BestMinErrorCompressor,
)
from repro.compression.first_k import GeminiCompressor, WangCompressor
from repro.exceptions import CompressionError

__all__ = ["StorageBudget", "BYTES_PER_DOUBLE", "BYTES_PER_POSITION"]

BYTES_PER_DOUBLE = 8
BYTES_PER_POSITION = 2

#: Methods using first coefficients, in the paper's reporting order.
FIRST_METHODS = ("gemini", "wang")
#: Methods using best coefficients, in the paper's reporting order.
BEST_METHODS = ("best_error", "best_min", "best_min_error")

_COMPRESSORS = {
    "gemini": GeminiCompressor,
    "wang": WangCompressor,
    "best_min": BestMinCompressor,
    "best_error": BestErrorCompressor,
    "best_min_error": BestMinErrorCompressor,
}


@dataclass(frozen=True)
class StorageBudget:
    """A per-sequence memory budget of ``2 * first_k + 1`` doubles.

    Attributes
    ----------
    first_k:
        The ``c`` in the paper's "2*(c)+1 doubles" labels: the number of
        first coefficients GEMINI/Wang may store.
    """

    first_k: int

    def __post_init__(self) -> None:
        if self.first_k < 2:
            raise CompressionError(
                f"budget needs first_k >= 2 so best methods keep >= 1 "
                f"coefficient, got {self.first_k}"
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def doubles(self) -> int:
        """Total budget in doubles (coefficients plus the side value)."""
        return 2 * self.first_k + 1

    @property
    def best_k(self) -> int:
        """Best coefficients affordable: ``floor(16 * first_k / 18)``."""
        pair_cost = 2 * BYTES_PER_DOUBLE + BYTES_PER_POSITION
        return (self.first_k * 2 * BYTES_PER_DOUBLE) // pair_cost

    def k_for(self, method: str) -> int:
        """Coefficient count for a named method under this budget."""
        if method in FIRST_METHODS:
            return self.first_k
        if method in BEST_METHODS:
            return self.best_k
        raise CompressionError(f"unknown method {method!r}")

    def label(self) -> str:
        """The paper's figure label, e.g. ``"2*(16)+1 doubles"``."""
        return f"2*({self.first_k})+1 doubles"

    # ------------------------------------------------------------------
    # Compressor construction
    # ------------------------------------------------------------------
    def compressor(self, method: str):
        """An equal-storage compressor instance for ``method``."""
        if method not in _COMPRESSORS:
            raise CompressionError(f"unknown method {method!r}")
        return _COMPRESSORS[method](self.k_for(method))

    def compressors(self, methods=None) -> dict[str, object]:
        """Equal-storage compressors for several methods at once."""
        if methods is None:
            methods = FIRST_METHODS + BEST_METHODS
        return {method: self.compressor(method) for method in methods}
