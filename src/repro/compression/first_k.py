"""First-coefficient compressors: the GEMINI and Wang baselines.

The classic approach of Agrawal et al. (GEMINI) keeps the *first* k Fourier
coefficients; Rafiei's refinement exploits conjugate symmetry (our
half-spectrum weights); Wang & Wang additionally record the approximation
error.  The paper evaluates against both baselines at equal storage:

* **GEMINI** — ``k`` first coefficients plus the middle (Nyquist)
  coefficient as the storage-parity filler (section 7.1);
* **Wang** — ``k`` first coefficients plus ``T.err``.

Both operate on standardised data, so the DC coefficient is zero and the
"first" coefficients start at half-spectrum index 1.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import SpectralSketch
from repro.exceptions import CompressionError
from repro.spectral.dft import Spectrum
from repro.spectral.reconstruction import first_indexes

__all__ = ["FirstKCompressor", "GeminiCompressor", "WangCompressor"]


def _sketch_from_indexes(
    spectrum: Spectrum,
    indexes: np.ndarray,
    store_error: bool,
    min_power: float | None,
    method: str,
) -> SpectralSketch:
    """Assemble a sketch holding the coefficients at ``indexes``."""
    error = None
    if store_error:
        omitted = np.setdiff1d(np.arange(len(spectrum)), indexes)
        error = float(spectrum.powers[omitted].sum())
    return SpectralSketch(
        n=spectrum.n,
        positions=indexes,
        coefficients=spectrum.coefficients[indexes],
        weights=spectrum.weights[indexes],
        error=error,
        min_power=min_power,
        method=method,
        basis=spectrum.basis,
    )


def _append_middle(spectrum: Spectrum, indexes: np.ndarray) -> np.ndarray:
    """Add the middle (Nyquist) coefficient index if not already retained.

    The middle coefficient is only real — and therefore only costs the
    one-double filler slot — for even-length signals ("we have real data
    with lengths power of two", section 7.1).  For odd lengths the slot
    cannot hold a complex conjugate pair, so no filler is stored and the
    budget double goes unused.
    """
    if spectrum.n % 2 != 0:
        return indexes
    middle = spectrum.n // 2
    if middle in indexes:
        return indexes
    return np.sort(np.append(indexes, middle))


class FirstKCompressor:
    """Keep the ``k`` lowest-frequency coefficients (skipping DC).

    Parameters
    ----------
    k:
        Number of retained coefficients.
    store_error:
        Record the omitted energy ``T.err`` (the Wang variant).
    store_middle:
        Pad with the middle coefficient (the GEMINI storage-parity filler).
        Mutually exclusive with ``store_error``.
    """

    method = "first_k"

    def __init__(
        self, k: int, store_error: bool = False, store_middle: bool = False
    ) -> None:
        if k < 1:
            raise CompressionError(f"k must be >= 1, got {k}")
        if store_error and store_middle:
            raise CompressionError(
                "store_error and store_middle are mutually exclusive "
                "(each fills the same one-double budget slot)"
            )
        self.k = k
        self.store_error = store_error
        self.store_middle = store_middle

    def compress(self, spectrum: Spectrum) -> SpectralSketch:
        """Compress a full :class:`Spectrum` into a sketch."""
        indexes = first_indexes(spectrum, self.k)
        if indexes.size < self.k:
            raise CompressionError(
                f"cannot keep {self.k} coefficients of a length-{spectrum.n} "
                f"signal ({indexes.size} available)"
            )
        if self.store_middle:
            indexes = _append_middle(spectrum, indexes)
        return _sketch_from_indexes(
            spectrum, indexes, self.store_error, None, self.method
        )

    def compress_series(self, values) -> SpectralSketch:
        """Convenience: transform a raw sequence, then compress it."""
        return self.compress(Spectrum.from_series(values))


class GeminiCompressor(FirstKCompressor):
    """``k`` first coefficients + middle coefficient (GEMINI, section 7.1)."""

    method = "gemini"

    def __init__(self, k: int) -> None:
        super().__init__(k, store_error=False, store_middle=True)


class WangCompressor(FirstKCompressor):
    """``k`` first coefficients + approximation error (Wang & Wang)."""

    method = "wang"

    def __init__(self, k: int) -> None:
        super().__init__(k, store_error=True, store_middle=False)
