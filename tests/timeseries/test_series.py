"""Tests for the TimeSeries container."""

import datetime as dt

import numpy as np
import pytest

from repro.exceptions import SeriesMismatchError
from repro.timeseries import TimeSeries


@pytest.fixture
def series():
    return TimeSeries(
        np.arange(10.0), name="demo", start=dt.date(2002, 1, 1)
    )


class TestBasics:
    def test_length_and_iteration(self, series):
        assert len(series) == 10
        assert list(series) == list(range(10))

    def test_values_are_read_only(self, series):
        with pytest.raises(ValueError):
            series.values[0] = 99.0

    def test_array_protocol(self, series):
        assert np.asarray(series).sum() == 45.0

    def test_repr_mentions_name(self, series):
        assert "demo" in repr(series)


class TestCalendar:
    def test_end_date(self, series):
        assert series.end == dt.date(2002, 1, 10)

    def test_date_at(self, series):
        assert series.date_at(0) == dt.date(2002, 1, 1)
        assert series.date_at(9) == dt.date(2002, 1, 10)
        assert series.date_at(-1) == dt.date(2002, 1, 10)

    def test_date_at_out_of_range(self, series):
        with pytest.raises(IndexError):
            series.date_at(10)

    def test_index_of_roundtrip(self, series):
        for i in range(len(series)):
            assert series.index_of(series.date_at(i)) == i

    def test_index_of_outside_span(self, series):
        with pytest.raises(SeriesMismatchError):
            series.index_of(dt.date(2001, 12, 31))

    def test_slice_dates(self, series):
        part = series.slice_dates(dt.date(2002, 1, 3), dt.date(2002, 1, 5))
        assert list(part) == [2.0, 3.0, 4.0]
        assert part.start == dt.date(2002, 1, 3)
        assert part.name == "demo"

    def test_slice_dates_reversed_raises(self, series):
        with pytest.raises(SeriesMismatchError):
            series.slice_dates(dt.date(2002, 1, 5), dt.date(2002, 1, 3))


class TestTransforms:
    def test_standardize(self, series):
        std = series.standardize()
        assert std.is_standardized()
        assert not series.is_standardized()
        assert std.name == "demo"
        assert std.start == series.start

    def test_standardize_constant(self):
        flat = TimeSeries([5.0, 5.0, 5.0], name="flat")
        std = flat.standardize()
        assert np.all(std.values == 0.0)
        assert std.is_standardized()

    def test_average_power(self):
        ts = TimeSeries([1.0, 2.0, 2.0], name="x")
        assert ts.average_power() == pytest.approx(3.0)

    def test_moving_average_preserves_metadata(self, series):
        smooth = series.moving_average(3)
        assert smooth.name == "demo"
        assert smooth.start == series.start
        assert len(smooth) == len(series)

    def test_with_name(self, series):
        assert series.with_name("other").name == "other"

    def test_distance(self):
        a = TimeSeries([0.0, 0.0, 0.0])
        b = TimeSeries([3.0, 4.0, 0.0])
        assert a.distance(b) == pytest.approx(5.0)

    def test_distance_length_mismatch(self):
        with pytest.raises(SeriesMismatchError):
            TimeSeries([1.0]).distance(TimeSeries([1.0, 2.0]))
