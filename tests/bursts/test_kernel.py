"""The shared trailing-MA kernel: one implementation, two consumers."""

import numpy as np
import pytest

from repro.bursts.kernel import TrailingMA, burst_cutoff
from repro.timeseries.preprocessing import moving_average


def _series(days=80, seed=4):
    rng = np.random.default_rng(seed)
    return rng.normal(10.0, 3.0, size=days)


class TestTrailingMA:
    @pytest.mark.parametrize("window", [1, 3, 7, 30])
    def test_push_matches_reference_moving_average(self, window):
        values = _series()
        kernel = TrailingMA(window)
        for i, value in enumerate(values, start=1):
            kernel.push(value)
            clamped = min(window, i)
            expected = moving_average(values[:i], clamped, "trailing")
            np.testing.assert_array_equal(kernel.smoothed, expected)

    def test_extend_from_empty_equals_sequential_pushes(self):
        values = _series(days=50, seed=9)
        vectorised = TrailingMA(7).extend(values)
        sequential = TrailingMA(7)
        for value in values:
            sequential.push(value)
        np.testing.assert_array_equal(vectorised, sequential.smoothed)

    def test_extend_on_nonempty_state_continues_the_stream(self):
        values = _series(days=40, seed=2)
        split = TrailingMA(7)
        split.extend(values[:15])
        split.extend(values[15:])
        whole = TrailingMA(7).extend(values)
        np.testing.assert_array_equal(split.smoothed, whole)

    def test_push_returns_the_latest_smoothed_value(self):
        kernel = TrailingMA(3)
        for value in _series(days=20):
            latest = kernel.push(value)
            assert latest == kernel.smoothed[-1]

    def test_growth_past_initial_capacity(self):
        kernel = TrailingMA(7)
        values = _series(days=300, seed=8)
        for value in values:
            kernel.push(value)
        assert kernel.size == 300
        np.testing.assert_array_equal(
            kernel.smoothed, moving_average(values, 7, "trailing")
        )

    def test_effective_window_clamps_to_size(self):
        kernel = TrailingMA(30)
        kernel.extend([1.0, 2.0, 3.0])
        assert kernel.effective_window == 3
        kernel.extend(np.ones(40))
        assert kernel.effective_window == 30

    def test_smoothed_copy_is_independent(self):
        kernel = TrailingMA(3)
        kernel.extend([1.0, 2.0, 3.0])
        copy = kernel.smoothed_copy()
        copy[:] = 0.0
        assert kernel.smoothed[-1] != 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TrailingMA(0)


class TestBurstCutoff:
    def test_matches_mean_plus_sigmas_times_std(self):
        smoothed = _series(days=60, seed=1)
        cutoff = burst_cutoff(smoothed, 1.5)
        assert cutoff == float(smoothed.mean() + 1.5 * smoothed.std())

    def test_rejects_nonpositive_sigmas(self):
        with pytest.raises(ValueError):
            burst_cutoff(np.ones(4), 0.0)
