"""Relational/storage substrate: B+tree, table, disk-backed sequence store."""

from repro.storage.btree import BPlusTree
from repro.storage.pagestore import IOStats, MemorySequenceStore, SequencePageStore
from repro.storage.table import Predicate, Row, Table, eq, ge, gt, le, lt

__all__ = [
    "BPlusTree",
    "IOStats",
    "MemorySequenceStore",
    "SequencePageStore",
    "Predicate",
    "Row",
    "Table",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
]
