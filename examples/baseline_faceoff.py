#!/usr/bin/env python
"""Face-off: the paper's methods against every baseline it cites.

Section 4 justifies the compressed VP-tree against the R*-tree-backed
GEMINI pipeline and the M-tree; section 6 positions the moving-average
burst detector against Kleinberg's automaton and Zhu & Shasha's elastic
bursts.  All of those baselines are implemented in this library, so the
comparisons are one script away:

1. three exact 1-NN indexes answer the same queries; we count how many
   full sequences each must touch;
2. three burst detectors process the same holiday series; we compare
   what they flag, how long they take and what state they keep.

Run:  python examples/baseline_faceoff.py
"""

import time

from repro import QueryLogGenerator, StorageBudget, get_index
from repro.bursts import (
    BurstDetector,
    ElasticBurstDetector,
    KleinbergDetector,
    compact_bursts,
)
from repro.index import distances_to_query


def index_faceoff() -> None:
    print("=== 1-NN index face-off (1024 sequences, 8 queries) ===")
    generator = QueryLogGenerator(seed=11, days=512)
    matrix = generator.synthetic_database(1024).standardize().as_matrix()
    queries = generator.queries_outside_database(8).standardize().as_matrix()
    budget = StorageBudget(16)

    contenders = {
        "vp-tree over best-coefficient sketches (the paper)": get_index(
            "vptree",
            matrix,
            compressor=budget.compressor("best_min_error"),
            seed=1,
        ),
        "gemini r-tree over first-coefficient features": get_index(
            "rtree", matrix, k=budget.first_k
        ),
        "m-tree over uncompressed sequences": get_index(
            "mtree", matrix, capacity=16
        ),
    }
    for label, index in contenders.items():
        touches = 0
        started = time.perf_counter()
        for query in queries:
            hits, stats = index.search(query, k=1)
            truth = float(distances_to_query(matrix, query).min())
            assert abs(hits[0].distance - truth) < 1e-9  # all exact
            touches += getattr(
                stats, "full_retrievals", getattr(stats, "distance_computations", 0)
            )
        elapsed = time.perf_counter() - started
        print(
            f"  {label}\n"
            f"    full sequences touched per query: {touches / len(queries):7.1f}"
            f"   ({100 * touches / (len(queries) * len(matrix)):.1f}% of DB, "
            f"{elapsed:.2f}s wall)"
        )
    print()


def burst_faceoff() -> None:
    print("=== burst detector face-off ('halloween', 2002) ===")
    series = QueryLogGenerator(seed=0).series("halloween")
    standardized = series.standardize()

    started = time.perf_counter()
    annotation = BurstDetector.long_term().detect(standardized)
    ma_bursts = compact_bursts(standardized, annotation)
    ma_time = time.perf_counter() - started
    print(f"  moving average (paper): {ma_time * 1000:.2f} ms")
    for burst in ma_bursts:
        print(
            f"    burst {burst.start_date(series.start)} .. "
            f"{burst.end_date(series.start)} -> one triplet row"
        )

    started = time.perf_counter()
    kleinberg = KleinbergDetector().detect(series.values)
    kb_time = time.perf_counter() - started
    print(f"  kleinberg automaton [11]: {kb_time * 1000:.2f} ms")
    for burst in kleinberg:
        print(
            f"    burst days {burst.start}..{burst.end} "
            f"(state level {burst.level})"
        )

    shifted = standardized.values - standardized.values.min()
    offset = float(standardized.values.min())
    elastic = ElasticBurstDetector(
        lambda w: (0.8 - offset) * w, lengths=(4, 8, 16, 32)
    )
    started = time.perf_counter()
    windows = elastic.detect(shifted)
    eb_time = time.perf_counter() - started
    cells = elastic.storage_cells(series.values)
    print(
        f"  elastic bursts (SWT) [17]: {eb_time * 1000:.2f} ms, "
        f"{len(windows)} qualifying windows, {cells} monitoring cells"
    )
    if windows:
        widest = max(windows, key=len)
        print(
            f"    e.g. window days {widest.start}..{widest.end} "
            f"(sum {widest.total:.1f})"
        )
    print(
        f"\n  the paper's claims in numbers: MA is "
        f"{kb_time / max(ma_time, 1e-9):.0f}x faster than Kleinberg and "
        f"stores {len(ma_bursts)} triplet(s) against {cells} SWT cells"
    )


def main() -> None:
    index_faceoff()
    burst_faceoff()


if __name__ == "__main__":
    main()
