"""Automatic significant-period detection (section 5 of the paper)."""

from repro.periods.aggregate import SharedPeriod, shared_periods
from repro.periods.detector import (
    DetectedPeriod,
    PeriodDetector,
    detect_periods,
    exponential_fit,
)

__all__ = [
    "DetectedPeriod",
    "PeriodDetector",
    "detect_periods",
    "exponential_fit",
    "SharedPeriod",
    "shared_periods",
]
