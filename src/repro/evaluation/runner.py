"""One-shot experiment runner: ``python -m repro.evaluation``.

Regenerates the paper's headline quantitative results (figs. 20-23) plus
the figure-level qualitative ones (13, 14, 19) in a single consolidated
report, without pytest.  Useful for eyeballing a configuration before
committing to the full benchmark suite, and as the scripted entry point
for the experiment harness.

Example::

    python -m repro.evaluation --db-size 2048 --queries 20 --seed 11

``--obs`` appends the observability run summary (stage latencies, prune
ratios, I/O counters) to the report; ``--obs-json PATH`` additionally
writes the full metric/span record as JSON lines.

``--shards N`` appends the cluster scatter-gather section: the same
database behind an N-shard :class:`~repro.cluster.ShardRouter`, timed
against the unsharded index with bit-identical results asserted (see
:func:`repro.evaluation.sharding.shard_scaling_experiment`).

``--ingest`` appends the ingest-pipeline section: batched compression
and bulk store writes timed against the per-row reference, with
equivalence asserted (see
:func:`repro.evaluation.ingest.ingest_experiment`).

``--stream`` appends the streaming-lifecycle section: the same raw
counts ingested through a crash-safe
:class:`~repro.stream.StreamStore` (WAL-backed appends, a timed seal, a
mid-seal injected crash with bit-identical recovery asserted, and a
compaction), verified against an independent reference index (see
:func:`repro.evaluation.streaming.stream_experiment`).

``--approx`` appends the approximate-tier quality section: recall@k,
tightness and work saved for the documented default
:class:`~repro.engine.ApproxPolicy` knobs, measured per backend and per
shard count against the same configuration's exact answers (see
:func:`repro.evaluation.approx.approx_quality_experiment` and
``docs/APPROX.md``).

``--bursts [MODEL]`` appends the pluggable-burst-model section: the
named backend's burstiness leaderboard over the catalog, plus the
cross-model agreement matrix with the worst-agreeing query per pair
(see :func:`repro.evaluation.bursts.burst_model_experiment`).

``--faults [SEED]`` skips the report and runs the resilience drill
instead (see :func:`repro.evaluation.fault_drill.fault_drill`): every
index backend under seeded transient faults and permanent corruption,
plus write-path crash drills over the streaming store and an on-disk
CRC round trip.  Exit status reflects the drill verdict.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
import tempfile

from repro import obs
from repro.bursts.compaction import compact_bursts
from repro.bursts.detection import BurstDetector
from repro.bursts.query import BurstDatabase
from repro.compression.budget import StorageBudget
from repro.datagen.generator import QueryLogGenerator
from repro.evaluation.approx import approx_quality_experiment
from repro.evaluation.bursts import burst_model_experiment
from repro.evaluation.ingest import ingest_experiment
from repro.evaluation.pruning import pruning_power_experiment
from repro.evaluation.sharding import shard_scaling_experiment
from repro.evaluation.streaming import stream_experiment
from repro.evaluation.tightness import bound_tightness_experiment
from repro.evaluation.timing import index_vs_scan_experiment
from repro.periods.detector import PeriodDetector

__all__ = ["main", "run_report"]

_HEADLINE_PERIOD_QUERIES = ("cinema", "full moon", "nordstrom", "dudley moore")
_QUERY_BY_BURST = ("world trade center", "hurricane", "christmas")


def _section(title: str, out) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", file=out)


def run_report(
    db_size: int = 1024,
    days: int = 512,
    queries: int = 15,
    pairs: int = 100,
    seed: int = 11,
    budgets: tuple[int, ...] = (8, 16, 32),
    shards: int | None = None,
    ingest: bool = False,
    stream: bool = False,
    bursts: str | None = None,
    approx: bool = False,
    out=None,
) -> None:
    """Run every experiment once and print the consolidated report."""
    out = out or sys.stdout
    budget_objects = [StorageBudget(c) for c in budgets]

    _section("workload", out)
    generator = QueryLogGenerator(seed=seed, days=days)
    database = generator.synthetic_database(db_size, include_catalog=True)
    matrix = database.standardize().as_matrix()
    query_matrix = (
        generator.queries_outside_database(queries).standardize().as_matrix()
    )
    print(
        f"database: {db_size} sequences x {days} days (catalog + synthetic "
        f"mixture), {queries} out-of-database queries, seed {seed}",
        file=out,
    )

    _section("figs 20/21 - bound tightness", out)
    for result in bound_tightness_experiment(
        matrix, budget_objects, pairs=pairs, seed=seed
    ):
        print(result.as_table(), file=out)
        print(
            f"BestMinError improvement: LB +{result.lb_improvement():.2f}%, "
            f"UB -{result.ub_improvement():.2f}% vs next best",
            file=out,
        )

    _section("fig 22 - pruning power (fraction of DB examined)", out)
    for result in pruning_power_experiment(matrix, query_matrix, budget_objects):
        print(result.as_table(), file=out)
        print(
            f"reduction vs next best: "
            f"{result.reduction_vs_next_best():.2f} percentage points",
            file=out,
        )

    _section("fig 23 - index vs linear scan", out)
    with tempfile.TemporaryDirectory() as tmp:
        timing = index_vs_scan_experiment(
            matrix,
            query_matrix,
            tmp,
            compressor=budget_objects[-1].compressor("best_min_error"),
            seed=seed,
        )
    print(timing.as_table(), file=out)
    print(
        f"modeled speedups: disk {timing.speedup_disk():.1f}x, "
        f"memory {timing.speedup_memory():.1f}x",
        file=out,
    )

    if ingest:
        _section("ingest pipeline - batch vs per-row build", out)
        with tempfile.TemporaryDirectory() as tmp:
            result = ingest_experiment(
                matrix,
                tmp,
                compressor=budget_objects[-1].compressor("best_min_error"),
                shards=shards or 4,
                build_workers=4,
            )
        print(result.as_table(), file=out)

    if stream:
        _section("streaming ingest - WAL, seal, crash recovery, compaction", out)
        with tempfile.TemporaryDirectory() as tmp:
            result = stream_experiment(
                database.as_matrix(),
                database.names,
                query_matrix,
                tmp,
                k=5,
            )
        print(result.as_table(), file=out)

    if shards is not None:
        _section(
            f"cluster - scatter-gather scaling (router over {shards} "
            f"shard{'s' if shards != 1 else ''})",
            out,
        )
        counts = (1, shards) if shards > 1 else (1,)
        scaling = shard_scaling_experiment(
            matrix,
            query_matrix,
            shard_counts=counts,
            k=5,
            workers=min(4, max(shards, 1)),
            backend="flat",
            compressor=budget_objects[-1].compressor("best_min_error"),
        )
        print(scaling.as_table(), file=out)
        print(
            "agreement with the unsharded index: "
            + ("bit-identical" if scaling.agreement else "MISMATCH"),
            file=out,
        )

    if approx:
        _section(
            "approximate tier - recall@k and tightness vs exact answers",
            out,
        )
        quality = approx_quality_experiment(
            matrix,
            query_matrix,
            k=min(10, db_size),
            shard_counts=(shards,) if shards else (2,),
            seed=seed,
        )
        print(quality.as_table(), file=out)
        print(
            f"worst recall@{quality.k} over all configurations: "
            f"{quality.worst_recall:.3f} "
            f"(epsilon-skip distance bound: {quality.guarantee_bound:g}x; "
            f"patience stops are heuristic — measured above)",
            file=out,
        )

    _section("fig 13 - significant periods (2002 catalog)", out)
    year = QueryLogGenerator(seed=0, start=_dt.date(2002, 1, 1), days=365)
    detector = PeriodDetector(interpolate=True)
    for name in _HEADLINE_PERIOD_QUERIES:
        found = detector.detect(year.series(name).standardize())
        periods = ", ".join(f"{p.period:.2f}d" for p in found.top(3)) or "none"
        print(f"  {name:<14s} -> {periods}", file=out)

    _section("figs 14/19 - bursts and query-by-burst (2000-2002 catalog)", out)
    span = QueryLogGenerator(seed=0, start=_dt.date(2000, 1, 1), days=1096)
    collection = span.catalog_collection()
    halloween = collection["halloween"].standardize()
    annotation = BurstDetector.long_term().detect(halloween)
    spans = ", ".join(
        f"{b.start_date(halloween.start)}..{b.end_date(halloween.start)}"
        for b in compact_bursts(halloween, annotation)
    )
    print(f"  halloween long-term bursts: {spans}", file=out)
    burst_db = BurstDatabase()
    burst_db.add_collection(collection)
    ranked = burst_db.query_many(_QUERY_BY_BURST, top=3)
    for name, matches in zip(_QUERY_BY_BURST, ranked):
        print(
            f"  {name:<20s} -> {', '.join(m.name for m in matches)}",
            file=out,
        )

    if bursts is not None:
        _section(
            f"pluggable burst models - {bursts!r} leaderboard and "
            f"cross-model agreement (2002 catalog)",
            out,
        )
        report = burst_model_experiment(
            year.catalog_collection(), model=bursts, top=10
        )
        print(report.as_table(), file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Run the paper's evaluation experiments once.",
    )
    parser.add_argument("--db-size", type=int, default=1024)
    parser.add_argument("--days", type=int, default=512)
    parser.add_argument("--queries", type=int, default=15)
    parser.add_argument("--pairs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--budgets",
        type=int,
        nargs="+",
        default=(8, 16, 32),
        metavar="C",
        help="storage budgets as the paper's c in '2*(c)+1 doubles'",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="append the cluster scatter-gather scaling section, "
        "comparing an N-shard router against the unsharded index",
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="append the ingest-pipeline section, timing batched "
        "compression and bulk store writes against the per-row "
        "reference (equivalence asserted)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="append the streaming-ingest section: WAL-backed appends, "
        "a timed seal, an injected mid-seal crash with bit-identical "
        "recovery asserted, and a compaction",
    )
    parser.add_argument(
        "--approx",
        action="store_true",
        help="append the approximate-tier quality section: recall@k, "
        "tightness and work saved at the default ApproxPolicy knobs, "
        "per backend and shard count, against exact answers",
    )
    parser.add_argument(
        "--bursts",
        nargs="?",
        const="ma",
        default=None,
        metavar="MODEL",
        help="append the pluggable-burst-model section: the MODEL "
        "leaderboard over the catalog (default 'ma') plus the "
        "cross-model agreement matrix",
    )
    parser.add_argument(
        "--faults",
        nargs="?",
        type=int,
        const=11,
        default=None,
        metavar="SEED",
        help="run the resilience fault drill (optionally seeded) instead "
        "of the evaluation report",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="collect metrics/spans and print the run summary",
    )
    parser.add_argument(
        "--obs-json",
        metavar="PATH",
        default=None,
        help="write the raw metric/span records as JSON lines (implies --obs)",
    )
    args = parser.parse_args(argv)

    if args.faults is not None:
        from repro.evaluation.fault_drill import fault_drill

        _section(f"resilience fault drill (seed {args.faults})", sys.stdout)
        return 0 if fault_drill(seed=args.faults) else 1

    watch = args.obs or args.obs_json is not None
    registry = obs.enable() if watch else None
    try:
        run_report(
            db_size=args.db_size,
            days=args.days,
            queries=args.queries,
            pairs=args.pairs,
            seed=args.seed,
            budgets=tuple(args.budgets),
            shards=args.shards,
            ingest=args.ingest,
            stream=args.stream,
            bursts=args.bursts,
            approx=args.approx,
        )
    finally:
        if watch:
            obs.disable()
    if registry is not None:
        _section("observability", sys.stdout)
        print(obs.render_report(registry))
        if args.obs_json is not None:
            obs.write_json_lines(registry, args.obs_json)
            print(f"observability records written to {args.obs_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
