"""The write-ahead log under the live tier.

Every mutation of the live tier — a full-series add, a single-day count
event, a day rollover, a tombstone — is serialised into this log
*before* it touches memory, so an acknowledged write survives a crash:
recovery replays the log into a fresh
:class:`~repro.stream.live.LiveTier` and lands exactly where the writer
stopped.

File layout::

    8 bytes   magic  b"RPRWAL1\\x00"
    records   <u32 payload_len> <u32 crc32(payload)> <payload> ...

Record payload::

    <u8 kind> <u16 name_len> <name utf-8> <body>

with kinds ``1=add`` (body: the raw float64 day counts), ``2=event``
(body: ``<u32 day> <f64 count>``), ``3=roll`` (empty), ``4=tomb``
(empty).

Atomicity model: a *group* of records (e.g. one ``append_many`` batch)
is serialised into a single buffer and handed to the OS in **one
write(2) call** on an unbuffered file, so the in-process crash model
(:func:`~repro.resilience.faults.crashpoint` fires between syscalls)
sees either the whole group or none of it.  A *physically* torn write —
power loss mid-sector — is the CRC's job: replay stops at the first
record whose length or checksum does not hold, and with ``repair=True``
truncates the tail away (``stream.wal_truncations``) instead of raising
:class:`~repro.exceptions.TornWriteError`.  There is no resync after a
bad record: bytes past the first invalid record were never
acknowledged-and-then-trusted, so dropping them loses nothing durable.

Crash seams: ``wal.write`` (before the group's write call — a kill here
loses the whole group) and ``wal.sync`` (after the write, before
``fsync`` — a kill here keeps the group).  Durability defaults *on*
here (``REPRO_FSYNC`` overrides): the WAL is the one file whose loss
loses acknowledged data.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import CorruptionError, StorageError, TornWriteError
from repro.resilience.faults import crashpoint
from repro.storage.pagestore import fsync_enabled_from_env

__all__ = ["WalRecord", "WriteAheadLog"]

_MAGIC = b"RPRWAL1\x00"
_RECORD = struct.Struct("<II")  # payload length, payload CRC32
_HEAD = struct.Struct("<BH")  # kind, name length
_EVENT = struct.Struct("<Id")  # day index, count
#: Record kinds on the wire.
_KIND_ADD, _KIND_EVENT, _KIND_ROLL, _KIND_TOMB = 1, 2, 3, 4
_KIND_NAMES = {
    _KIND_ADD: "add",
    _KIND_EVENT: "event",
    _KIND_ROLL: "roll",
    _KIND_TOMB: "tomb",
}
#: Sanity bound on a single record's payload, far above any real series.
_MAX_PAYLOAD = 1 << 28


@dataclass(frozen=True)
class WalRecord:
    """One replayed log entry."""

    kind: str  #: "add" | "event" | "roll" | "tomb"
    name: str = ""  #: series name ("" for roll records)
    day: int = 0  #: day index within the window (event records)
    count: float = 0.0  #: the event's count increment
    values: np.ndarray | None = None  #: full raw series (add records)


def _encode(kind: int, name: str, body: bytes) -> bytes:
    encoded_name = name.encode("utf-8")
    if len(encoded_name) > 0xFFFF:
        raise StorageError(f"series name too long for the WAL: {name[:32]!r}…")
    return _HEAD.pack(kind, len(encoded_name)) + encoded_name + body


def _decode(payload: bytes, path: str) -> WalRecord:
    if len(payload) < _HEAD.size:
        raise CorruptionError(f"WAL {path!r}: record shorter than its header")
    kind, name_len = _HEAD.unpack_from(payload)
    label = _KIND_NAMES.get(kind)
    if label is None:
        raise CorruptionError(f"WAL {path!r}: unknown record kind {kind}")
    body = payload[_HEAD.size + name_len :]
    name = payload[_HEAD.size : _HEAD.size + name_len].decode("utf-8")
    if label == "add":
        if len(body) % 8:
            raise CorruptionError(
                f"WAL {path!r}: add record for {name!r} has a ragged body"
            )
        values = np.frombuffer(body, dtype="<f8").astype(np.float64)
        return WalRecord(kind="add", name=name, values=values)
    if label == "event":
        if len(body) != _EVENT.size:
            raise CorruptionError(
                f"WAL {path!r}: event record for {name!r} has a bad body"
            )
        day, count = _EVENT.unpack(body)
        return WalRecord(kind="event", name=name, day=day, count=count)
    return WalRecord(kind=label, name=name)


class WriteAheadLog:
    """Append side of the log.  Use :meth:`replay` to read one back.

    Parameters
    ----------
    path:
        The log file.  :meth:`create` initialises a fresh one (writing
        the magic); the constructor opens an existing file for append.
    fsync:
        Force every group through ``fsync(2)``.  ``None`` consults
        ``REPRO_FSYNC`` with a default of **on** — see the module
        docstring.
    """

    def __init__(self, path, *, fsync: bool | None = None) -> None:
        self.path = os.fspath(path)
        self._fsync = (
            fsync_enabled_from_env(default=True) if fsync is None else bool(fsync)
        )
        # Unbuffered: one .write() is one write(2), which is what makes
        # "a group is atomic under in-process crashes" true by
        # construction rather than by buffering luck.
        self._file = open(self.path, "ab", buffering=0)

    @classmethod
    def create(cls, path, *, fsync: bool | None = None) -> "WriteAheadLog":
        """Initialise an empty log (truncating any leftover file).

        Truncation is deliberate: a WAL file is only ever created for a
        manifest generation that does not reference it yet, so any bytes
        already at ``path`` belong to a crashed earlier attempt and were
        never part of a committed generation.
        """
        path = os.fspath(path)
        with open(path, "wb", buffering=0) as handle:
            handle.write(_MAGIC)
            resolved = (
                fsync_enabled_from_env(default=True) if fsync is None else fsync
            )
            if resolved:
                os.fsync(handle.fileno())
        return cls(path, fsync=fsync)

    @property
    def fsync_enabled(self) -> bool:
        return self._fsync

    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Append side
    # ------------------------------------------------------------------
    @staticmethod
    def encode_add(name: str, values: np.ndarray) -> bytes:
        """Payload for a full-series add (raw day counts)."""
        body = np.ascontiguousarray(values, dtype="<f8").tobytes()
        return _encode(_KIND_ADD, name, body)

    @staticmethod
    def encode_event(name: str, day: int, count: float) -> bytes:
        """Payload for a single-day count event."""
        return _encode(_KIND_EVENT, name, _EVENT.pack(int(day), float(count)))

    @staticmethod
    def encode_roll() -> bytes:
        """Payload for a day rollover."""
        return _encode(_KIND_ROLL, "", b"")

    @staticmethod
    def encode_tomb(name: str) -> bytes:
        """Payload for a tombstone."""
        return _encode(_KIND_TOMB, name, b"")

    def append_group(self, payloads) -> None:
        """Durably append a group of records as one atomic write.

        The group either fully lands or (under a crash before the write
        seam) fully does not; there is no state in which a prefix of the
        group is acknowledged.
        """
        payloads = list(payloads)
        if not payloads:
            return
        buffer = bytearray()
        for payload in payloads:
            buffer += _RECORD.pack(len(payload), zlib.crc32(payload))
            buffer += payload
        crashpoint("wal.write")
        self._file.write(bytes(buffer))
        crashpoint("wal.sync")
        if self._fsync:
            os.fsync(self._file.fileno())
        obs.add("stream.wal_appends", len(payloads))

    # ------------------------------------------------------------------
    # Replay side
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path, *, repair: bool = False) -> tuple[list[WalRecord], int]:
        """Read a log back; returns ``(records, truncated_bytes)``.

        Stops at the first record whose length prefix or CRC32 does not
        hold.  Without ``repair`` a non-empty invalid tail raises
        :class:`~repro.exceptions.TornWriteError`; with ``repair=True``
        the tail is truncated off the file (the self-healing path) and
        its byte count returned.  A record whose CRC holds but whose
        payload is malformed is *corruption*, not tearing — it raises
        :class:`~repro.exceptions.CorruptionError` regardless of
        ``repair``, because those bytes were written intact.
        """
        path = os.fspath(path)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StorageError(f"cannot open WAL {path!r}: {exc}") from exc
        if data[: len(_MAGIC)] != _MAGIC:
            if len(data) < len(_MAGIC) and _MAGIC.startswith(data):
                raise TornWriteError(f"WAL {path!r}: truncated magic")
            raise CorruptionError(
                f"{path!r} is not a write-ahead log (bad magic {data[:8]!r})"
            )
        records: list[WalRecord] = []
        offset = len(_MAGIC)
        valid_end = offset
        torn = False
        while offset < len(data):
            if offset + _RECORD.size > len(data):
                torn = True
                break
            length, stored_crc = _RECORD.unpack_from(data, offset)
            start = offset + _RECORD.size
            if length > _MAX_PAYLOAD or start + length > len(data):
                torn = True
                break
            payload = data[start : start + length]
            if zlib.crc32(payload) != stored_crc:
                torn = True
                break
            records.append(_decode(payload, path))
            offset = start + length
            valid_end = offset
        truncated = len(data) - valid_end if torn else 0
        if torn:
            if not repair:
                raise TornWriteError(
                    f"WAL {path!r}: {truncated} bytes of torn tail past "
                    f"the last valid record — replay with repair=True to "
                    f"truncate"
                )
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
            obs.add("stream.wal_truncations")
            obs.add("resilience.storage_repairs")
        return records, truncated
