"""StreamIndex: the live + sealed union behind every stream query."""

import numpy as np
import pytest

from repro.engine.registry import get_index
from repro.stream.index import StreamIndex
from repro.timeseries.preprocessing import zscore

DAYS = 32


def _rows(count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 50, size=(count, DAYS)).astype(float)
    return np.stack([zscore(row) for row in raw])


def _answers(index, query, k):
    neighbors, _ = index.search(query, k)
    return {(n.name, round(n.distance, 12)) for n in neighbors}


@pytest.fixture
def tiers():
    sealed = _rows(10, seed=1)
    live = _rows(4, seed=2)
    sealed_names = tuple(f"s{i}" for i in range(10))
    live_names = tuple(f"l{i}" for i in range(4))
    return sealed, sealed_names, live, live_names


class TestIdentifierLayout:
    def test_sealed_then_live_in_insertion_order(self, tiers):
        sealed, sealed_names, live, live_names = tiers
        index = StreamIndex("flat", sealed, sealed_names, live, live_names)
        assert len(index) == 14
        assert index.sequence_length == DAYS
        for seq_id, name in enumerate(sealed_names + live_names):
            assert index.result_name(seq_id) == name
        np.testing.assert_array_equal(index.fetch(3), sealed[3])
        np.testing.assert_array_equal(index.fetch(10), live[0])

    def test_read_many_interleaves_both_tiers(self, tiers):
        sealed, sealed_names, live, live_names = tiers
        index = StreamIndex("flat", sealed, sealed_names, live, live_names)
        ids = [12, 0, 11, 9, 13]
        block = index._read_many(ids)
        expected = np.vstack([sealed, live])[ids]
        np.testing.assert_array_equal(block, expected)


class TestUnionAnswers:
    def _reference(self, tiers):
        sealed, sealed_names, live, live_names = tiers
        return get_index(
            "scan",
            np.vstack([sealed, live]),
            names=list(sealed_names + live_names),
        )

    @pytest.mark.parametrize(
        "backend", ["flat", "scan", "vptree", "mvptree", "mtree", "rtree"]
    )
    def test_knn_matches_flat_over_concatenation(self, tiers, backend):
        query = zscore(np.arange(DAYS, dtype=float) % 7)
        index = StreamIndex(backend, *tiers)
        reference = self._reference(tiers)
        for k in (1, 5, 14):
            assert _answers(index, query, k) == _answers(reference, query, k)

    def test_sharded_backend_unions_too(self, tiers):
        query = zscore(np.arange(DAYS, dtype=float) % 7)
        index = StreamIndex("sharded", *tiers, shards=3)
        try:
            reference = self._reference(tiers)
            assert _answers(index, query, 5) == _answers(reference, query, 5)
        finally:
            index.close()

    def test_range_search_spans_both_tiers(self, tiers):
        query = zscore(np.arange(DAYS, dtype=float) % 7)
        index = StreamIndex("flat", *tiers)
        reference = self._reference(tiers)
        got, _ = index.range_search(query, 7.8)
        expected, _ = reference.range_search(query, 7.8)
        assert {(n.name, round(n.distance, 12)) for n in got} == {
            (n.name, round(n.distance, 12)) for n in expected
        }
        # Sanity: the radius actually splits the population.
        assert 0 < len(got) < 14

    def test_live_only_union(self, tiers):
        _, _, live, live_names = tiers
        empty = np.empty((0, DAYS), dtype=np.float64)
        index = StreamIndex("flat", empty, (), live, live_names)
        query = zscore(np.arange(DAYS, dtype=float))
        reference = get_index("scan", live, names=list(live_names))
        assert _answers(index, query, 3) == _answers(reference, query, 3)

    def test_sealed_only_union(self, tiers):
        sealed, sealed_names, _, _ = tiers
        empty = np.empty((0, DAYS), dtype=np.float64)
        index = StreamIndex("flat", sealed, sealed_names, empty, ())
        query = zscore(np.arange(DAYS, dtype=float))
        reference = get_index("scan", sealed, names=list(sealed_names))
        assert _answers(index, query, 3) == _answers(reference, query, 3)

    def test_stats_count_live_injection_as_generated(self, tiers):
        index = StreamIndex("flat", *tiers)
        query = zscore(np.arange(DAYS, dtype=float) % 7)
        _, stats = index.search(query, 2)
        # All 4 live rows are injected unpruned, so at least that many
        # candidates survive traversal on top of the sealed tier's.
        assert stats.candidates_after_traversal >= 4
