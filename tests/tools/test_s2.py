"""Tests for the S2 interactive tool (driven non-interactively)."""

import io

import pytest

from repro.tools.s2 import DEMO_SCRIPT, S2Shell, build_workspace, main


@pytest.fixture(scope="module")
def workspace():
    # A small, fast workspace: catalog only, one year.
    return build_workspace(seed=0, days=365, compressor_k=10)


@pytest.fixture
def shell(workspace):
    out = io.StringIO()
    return S2Shell(workspace, stdout=out), out


class TestCommands:
    def test_list(self, shell):
        sh, out = shell
        sh.onecmd("list")
        assert "cinema" in out.getvalue()
        assert "queries loaded" in out.getvalue()

    def test_show(self, shell):
        sh, out = shell
        sh.onecmd("show cinema")
        assert "Query: cinema" in out.getvalue()

    def test_periods_weekly(self, shell):
        sh, out = shell
        sh.onecmd("periods cinema")
        assert "P1 = 7.0" in out.getvalue()

    def test_periods_none(self, shell):
        sh, out = shell
        sh.onecmd("periods dudley moore")
        assert "no significant periods" in out.getvalue()

    def test_search(self, shell):
        sh, out = shell
        sh.onecmd("search cinema 3")
        text = out.getvalue()
        assert "similar to 'cinema'" in text
        assert "cinema" in text
        assert "examined" in text

    def test_search_excludes_self(self, shell):
        sh, out = shell
        sh.onecmd("search elvis 3")
        lines = [l for l in out.getvalue().splitlines() if "distance" in l]
        assert all("elvis " not in line for line in lines)

    def test_sharedperiods(self, shell):
        sh, out = shell
        sh.onecmd("sharedperiods cinema 4")
        text = out.getvalue()
        assert "periods shared" in text
        assert "7." in text  # the weekly family

    def test_dtwsearch(self, shell):
        sh, out = shell
        sh.onecmd("dtwsearch cinema 2")
        text = out.getvalue()
        assert "DTW-closest" in text
        assert "pruned by" in text

    def test_bursts(self, shell):
        sh, out = shell
        sh.onecmd("bursts halloween")
        text = out.getvalue()
        assert "burst" in text
        assert "-10-" in text or "-11-" in text  # October/November dates

    def test_bursts_short(self, shell):
        sh, out = shell
        sh.onecmd("bursts full moon short")
        assert "Query: full moon" in out.getvalue()

    def test_burstsearch(self, shell):
        sh, out = shell
        sh.onecmd("burstsearch christmas")
        text = out.getvalue()
        assert "BSim" in text
        assert "christmas gifts" in text or "gingerbread" in text

    def test_preview(self, shell):
        sh, out = shell
        sh.onecmd("preview cinema 5")
        text = out.getvalue()
        assert "original" in text
        assert "best coeff" in text
        assert "approximation error" in text

    def test_unknown_query_reports_error(self, shell):
        sh, out = shell
        sh.onecmd("show not-a-query")
        assert "[error]" in out.getvalue()

    def test_missing_argument_reports_error(self, shell):
        sh, out = shell
        sh.onecmd("show")
        assert "[error]" in out.getvalue()

    def test_quit(self, shell):
        sh, _ = shell
        assert sh.onecmd("quit") is True
        assert sh.onecmd("exit") is True

    def test_demo_script_runs_clean(self, workspace):
        out = io.StringIO()
        sh = S2Shell(workspace, stdout=out)
        for command in DEMO_SCRIPT:
            stop = sh.onecmd(command)
        assert stop is True
        assert "[error]" not in out.getvalue()


class TestRobustness:
    def test_random_command_soup_never_crashes(self, workspace):
        """Whatever the user types, the shell reports, never raises."""
        import random

        rng = random.Random(0)
        verbs = [
            "show", "periods", "search", "bursts", "burstsearch", "preview",
            "sharedperiods", "dtwsearch", "list", "help", "",
        ]
        nouns = [
            "cinema", "easter", "", "not-a-query", "full moon", "123",
            "cinema extra junk", "elvis 3", "elvis -1",
        ]
        out = io.StringIO()
        sh = S2Shell(workspace, stdout=out)
        for _ in range(60):
            command = f"{rng.choice(verbs)} {rng.choice(nouns)}".strip()
            if command in ("quit", "exit"):
                continue
            sh.onecmd(command)  # must not raise
        assert out.getvalue()  # and it said *something*

    def test_empty_line_is_harmless(self, shell):
        sh, _ = shell
        assert not sh.onecmd("")


class TestMain:
    def test_demo_mode(self, capsys):
        assert main(["--demo", "--days", "365", "--seed", "0"]) == 0
        captured = capsys.readouterr()
        assert "s2> periods cinema" in captured.out
        assert "P1 = 7.0" in captured.out
