"""End-to-end integration tests across the whole stack."""

import datetime as dt

import numpy as np
import pytest

from repro import (
    BurstDatabase,
    LinearScanIndex,
    QueryLogGenerator,
    StorageBudget,
    VPTreeIndex,
    detect_periods,
)
from repro.bursts import burst_similarity
from repro.datagen import DayGrid, LogAggregator, iter_log_records, profile, sample_daily_counts
from repro.index import distances_to_query
from repro.storage import SequencePageStore


@pytest.fixture(scope="module")
def generator():
    return QueryLogGenerator(seed=99, days=365)


@pytest.fixture(scope="module")
def database(generator):
    return generator.synthetic_database(256, include_catalog=True)


class TestGenerateCompressIndexSearch:
    def test_full_pipeline_matches_brute_force(self, database, tmp_path_factory):
        """generate -> standardise -> compress -> index -> search == scan."""
        matrix = database.standardize().as_matrix()
        names = list(database.names)
        store = SequencePageStore(
            tmp_path_factory.mktemp("e2e") / "seq.dat", matrix.shape[1]
        )
        index = VPTreeIndex(
            matrix,
            compressor=StorageBudget(16).compressor("best_min_error"),
            names=names,
            store=store,
            seed=1,
        )
        scan = LinearScanIndex(matrix, names=names)
        rng = np.random.default_rng(0)
        for _ in range(5):
            query = matrix[rng.integers(0, len(matrix))] + rng.normal(
                scale=0.05, size=matrix.shape[1]
            )
            tree_hits, tree_stats = index.search(query, k=3)
            scan_hits, _ = scan.search(query, k=3)
            assert [n.seq_id for n in tree_hits] == [n.seq_id for n in scan_hits]
            assert tree_stats.full_retrievals <= len(matrix)
        store.close()

    def test_catalog_members_find_their_family(self, database):
        """'cinema' and 'movie listings' share the weekend shape."""
        matrix = database.standardize().as_matrix()
        names = list(database.names)
        index = VPTreeIndex(matrix, names=names, seed=2)
        cinema_row = names.index("cinema")
        hits, _ = index.search(matrix[cinema_row], k=4)
        hit_names = [h.name for h in hits]
        assert hit_names[0] == "cinema"
        assert any(
            name in hit_names for name in ("movie listings", "restaurants")
        )


class TestLogsToKnowledge:
    def test_raw_records_to_periods_and_bursts(self):
        """The substrate chain: records -> aggregate -> detect."""
        grid = DayGrid(dt.date(2002, 1, 1), 365)
        rng = np.random.default_rng(4)
        aggregator = LogAggregator(grid)
        for name in ("cinema", "halloween"):
            counts = sample_daily_counts(profile(name), grid, rng)
            aggregator.consume(iter_log_records(counts, grid, name))

        cinema = aggregator.series("cinema").standardize()
        result = detect_periods(cinema)
        assert result.periods[0].period == pytest.approx(7.0, abs=0.1)

        db = BurstDatabase()
        db.add(aggregator.series("halloween"))
        bursts = db.bursts_of("halloween", window=30)
        assert bursts
        start = bursts[0].start_date(dt.date(2002, 1, 1))
        assert start.month in (9, 10)


class TestQueryByBurstConsistency:
    def test_dbms_path_equals_direct_bsim(self, database):
        """The relational plan and a direct BSim loop rank identically."""
        db = BurstDatabase()
        db.add_collection(database.subset(database.names[:64]))
        query_name = db.names[0]
        window = db.detectors[0].window
        via_plan = {
            m.name: m.similarity for m in db.query(query_name, top=100)
        }
        query_bursts = db.bursts_of(query_name, window)
        direct = {}
        for name in db.names:
            if name == query_name:
                continue
            score = burst_similarity(query_bursts, db.bursts_of(name, window))
            if score > 0:
                direct[name] = score
        assert set(via_plan) == set(direct)
        for name, score in direct.items():
            assert via_plan[name] == pytest.approx(score)


class TestDeterminism:
    def test_whole_stack_is_seeded(self, generator):
        """Same seeds -> same data -> same index answers, bit for bit."""
        other = QueryLogGenerator(seed=99, days=365)
        a = generator.synthetic_database(32).standardize().as_matrix()
        b = other.synthetic_database(32).standardize().as_matrix()
        np.testing.assert_array_equal(a, b)

        index_a = VPTreeIndex(a, seed=7)
        index_b = VPTreeIndex(b, seed=7)
        query = a[5]
        hits_a, _ = index_a.search(query, k=3)
        hits_b, _ = index_b.search(query, k=3)
        assert [h.seq_id for h in hits_a] == [h.seq_id for h in hits_b]

    def test_exactness_across_bound_methods(self, database):
        """All sound configurations agree with the ground truth."""
        matrix = database.standardize().as_matrix()[:128]
        rng = np.random.default_rng(8)
        query = matrix[rng.integers(0, len(matrix))] * 0.9
        truth = float(distances_to_query(matrix, query).min())
        for method in ("best_min_error_safe", "best_min", "best_error"):
            compressor = StorageBudget(16).compressor(
                "best_min_error" if "error" in method else "best_min"
            )
            index = VPTreeIndex(
                matrix, compressor=compressor, bound_method=method, seed=9
            )
            hits, _ = index.search(query, k=1)
            assert hits[0].distance == pytest.approx(truth, abs=1e-9), method
