"""A flat (tree-less) compressed index — section 7.3's protocol as an API.

The paper evaluates pruning power with an index-free protocol: bound the
query against *every* compressed object, discard those whose lower bound
exceeds the smallest upper bound, then verify the survivors in
increasing-lower-bound order with early termination.  On modern
vector-friendly hardware that flat protocol is itself an excellent index
— one fused kernel call bounds the whole database — so this module
promotes it to a first-class structure with the same API as the VP-tree.

When to choose which:

* :class:`FlatSketchIndex` — minimal memory, no build cost beyond
  compression, perfectly predictable performance; bounds are computed for
  every object (vectorised), so cost is Θ(D·k) per query plus
  verification.
* :class:`~repro.index.VPTreeIndex` — can skip bound computations for
  whole subtrees, which wins when queries are highly selective; costs a
  build pass and per-node Python overhead.

The ablation benchmark compares them head to head.

Example
-------
A database member is its own nearest neighbour, and every object is
either pruned by the bounds or verified against the full sequence:

>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> matrix = rng.normal(size=(32, 64))
>>> index = FlatSketchIndex(matrix, names=[f"q{i}" for i in range(32)])
>>> neighbors, stats = index.search(matrix[7], k=1)
>>> neighbors[0].name
'q7'
>>> stats.candidates_pruned + stats.full_retrievals == len(index)
True
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro import obs
from repro.bounds.batch import BatchBounds, get_batch_kernel
from repro.compression.best_k import BestMinErrorCompressor
from repro.compression.database import SketchDatabase
from repro.exceptions import SeriesMismatchError
from repro.index.distance import euclidean_early_abandon
from repro.index.results import Neighbor, SearchStats
from repro.spectral.dft import Spectrum
from repro.storage.pagestore import MemorySequenceStore
from repro.timeseries.preprocessing import as_float_array

__all__ = ["FlatSketchIndex"]


class FlatSketchIndex:
    """k-NN and range search over a packed sketch database, no tree.

    Parameters mirror :class:`~repro.index.VPTreeIndex` (minus the
    tree-construction knobs).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        compressor=None,
        names: Sequence[str] | None = None,
        store=None,
        bound_method: str | None = "best_min_error_safe",
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SeriesMismatchError(
                f"expected a 2-D database matrix, got shape {matrix.shape}"
            )
        if names is not None and len(names) != len(matrix):
            raise SeriesMismatchError("names must align with the matrix rows")
        self._names = tuple(names) if names is not None else None
        self._compressor = compressor or BestMinErrorCompressor(14)
        self.bound_method = bound_method or self._compressor.method
        self._kernel = get_batch_kernel(self.bound_method)
        self._store = store if store is not None else MemorySequenceStore(
            matrix.shape[1]
        )
        if len(self._store) == 0:
            self._store.append_matrix(matrix)
        self._sketch_db = SketchDatabase.from_matrix(matrix, self._compressor)
        self._count = int(matrix.shape[0])
        self._n = int(matrix.shape[1])

    def __len__(self) -> int:
        return self._count

    @property
    def store(self):
        return self._store

    def _name(self, seq_id: int) -> str | None:
        return self._names[seq_id] if self._names is not None else None

    def _bounds(self, query: np.ndarray):
        spectrum = Spectrum.from_series(query)
        return self._kernel(BatchBounds(spectrum), self._sketch_db)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query, k: int = 1) -> tuple[list[Neighbor], SearchStats]:
        """The ``k`` nearest neighbours (exact under sound bounds)."""
        query = as_float_array(query)
        if query.size != self._n:
            raise SeriesMismatchError(
                f"query length {query.size} does not match database "
                f"sequences of length {self._n}"
            )
        if not 1 <= k <= len(self):
            raise ValueError(f"k must be in [1, {len(self)}], got {k}")

        stats = SearchStats()
        with obs.span("index.flat.search"):
            lower, upper = self._bounds(query)
            stats.bound_computations = len(self)
            stats.candidates_after_traversal = len(self)

            finite = upper[np.isfinite(upper)]
            if finite.size >= k:
                sub = float(np.partition(finite, k - 1)[k - 1])
                survivor_ids = np.flatnonzero(lower <= sub)
            else:
                survivor_ids = np.arange(len(self))
            stats.candidates_after_sub_filter = int(survivor_ids.size)
            stats.candidates_pruned += len(self) - int(survivor_ids.size)
            order = survivor_ids[np.argsort(lower[survivor_ids], kind="stable")]

            best: list[tuple[float, int]] = []
            cutoff = float("inf")
            for position, seq_id in enumerate(order):
                seq_id = int(seq_id)
                if len(best) == k and lower[seq_id] > cutoff:
                    # Every remaining candidate has an even larger LB.
                    stats.candidates_pruned += int(order.size) - position
                    break
                row = self._store.read(seq_id)
                stats.full_retrievals += 1
                distance = euclidean_early_abandon(query, row, cutoff)
                if distance == float("inf"):
                    stats.early_abandons += 1
                    continue
                heapq.heappush(best, (-distance, seq_id))
                if len(best) > k:
                    heapq.heappop(best)
                if len(best) == k:
                    cutoff = -best[0][0]

        stats.publish("index.flat.search")
        neighbors = sorted(
            Neighbor(-neg, seq_id, self._name(seq_id)) for neg, seq_id in best
        )
        return neighbors, stats

    def range_search(
        self, query, radius: float
    ) -> tuple[list[Neighbor], SearchStats]:
        """All sequences within ``radius`` of the query."""
        query = as_float_array(query)
        if query.size != self._n:
            raise SeriesMismatchError(
                f"query length {query.size} does not match database "
                f"sequences of length {self._n}"
            )
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")

        stats = SearchStats()
        with obs.span("index.flat.range_search"):
            lower, _ = self._bounds(query)
            stats.bound_computations = len(self)
            survivor_ids = np.flatnonzero(lower <= radius + 1e-7)
            stats.candidates_after_traversal = len(self)
            stats.candidates_after_sub_filter = int(survivor_ids.size)
            stats.candidates_pruned = len(self) - int(survivor_ids.size)

            hits: list[Neighbor] = []
            for seq_id in survivor_ids:
                seq_id = int(seq_id)
                row = self._store.read(seq_id)
                stats.full_retrievals += 1
                distance = euclidean_early_abandon(query, row, radius + 1e-7)
                if distance == float("inf"):
                    stats.early_abandons += 1
                if distance <= radius:
                    hits.append(Neighbor(distance, seq_id, self._name(seq_id)))
        stats.publish("index.flat.range_search")
        return sorted(hits), stats
