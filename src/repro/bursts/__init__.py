"""Burst discovery, compaction and query-by-burst (section 6 of the paper)."""

from repro.bursts.compaction import Burst, compact_bursts, expand_bursts
from repro.bursts.detection import BurstAnnotation, BurstDetector
from repro.bursts.elastic import (
    ElasticBurst,
    ElasticBurstDetector,
    ShiftedWaveletTree,
)
from repro.bursts.kernel import TrailingMA, burst_cutoff
from repro.bursts.kleinberg import KleinbergBurst, KleinbergDetector
from repro.bursts.leaderboard import BurstinessLeaderboard, LeaderboardEntry
from repro.bursts.models import (
    ElasticModel,
    KleinbergModel,
    MACDModel,
    MovingAverageModel,
)
from repro.bursts.protocol import (
    BurstModel,
    BurstRegion,
    OnlineDetector,
    RegionAlert,
    ReplayDetector,
    mask_regions,
)
from repro.bursts.query import (
    BurstDatabase,
    BurstMatch,
    BurstRegionDatabase,
    region_overlap_score,
)
from repro.bursts.registry import (
    MODEL_BUILDERS,
    available_burst_models,
    get_burst_model,
)
from repro.bursts.similarity import (
    burst_similarity,
    intersect,
    overlap,
    value_similarity,
)
from repro.bursts.streaming import OnlineBurstDetector
from repro.bursts.weighted import (
    burst_weight_vector,
    rank_by_weighted_euclidean,
    weighted_euclidean,
)

__all__ = [
    "BurstAnnotation",
    "BurstDetector",
    "OnlineBurstDetector",
    "TrailingMA",
    "burst_cutoff",
    "BurstModel",
    "BurstRegion",
    "OnlineDetector",
    "RegionAlert",
    "ReplayDetector",
    "mask_regions",
    "MovingAverageModel",
    "KleinbergModel",
    "ElasticModel",
    "MACDModel",
    "MODEL_BUILDERS",
    "available_burst_models",
    "get_burst_model",
    "Burst",
    "compact_bursts",
    "expand_bursts",
    "overlap",
    "intersect",
    "value_similarity",
    "burst_similarity",
    "BurstDatabase",
    "BurstMatch",
    "BurstRegionDatabase",
    "region_overlap_score",
    "BurstinessLeaderboard",
    "LeaderboardEntry",
    "KleinbergBurst",
    "KleinbergDetector",
    "ElasticBurst",
    "ElasticBurstDetector",
    "ShiftedWaveletTree",
    "burst_weight_vector",
    "weighted_euclidean",
    "rank_by_weighted_euclidean",
]
