"""Tests for sinks, derived metrics and the run reports."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    JsonLinesSink,
    MemorySink,
    MetricsRegistry,
    TableSink,
    derived_metrics,
    export,
    render_report,
    render_table,
    span,
    write_json_lines,
)


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    yield
    obs.disable()


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("index.flat.search.full_retrievals").add(25)
    registry.counter("index.flat.search.candidates_pruned").add(75)
    registry.counter("bounds.kernel_calls").add(4)
    registry.counter("bounds.pairs").add(4096)
    registry.counter("storage.read_calls").add(10)
    registry.counter("storage.pages_read").add(20)
    registry.gauge("tree.height").set(5)
    registry.histogram("span.index.flat.search", (0.001, 0.01)).observe(0.002)
    registry.record_event(
        {"type": "span", "name": "index.flat.search", "seconds": 0.002,
         "depth": 0}
    )
    return registry


class TestSinks:
    def test_memory_sink_receives_all_records(self):
        registry = populated_registry()
        sink = MemorySink()
        export(registry, sink)
        types = [record["type"] for record in sink.records]
        assert types.count("counter") == 6
        assert types.count("gauge") == 1
        assert types.count("histogram") == 1
        assert types.count("span") == 1

    def test_json_lines_sink_writes_valid_json(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "run.jsonl"
        with JsonLinesSink(path) as sink:
            export(registry, sink)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 9
        counter = next(
            r for r in records if r.get("name") == "bounds.pairs"
        )
        assert counter == {
            "type": "counter", "name": "bounds.pairs", "value": 4096,
        }

    def test_json_lines_sink_accepts_stream(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.write({"type": "counter", "name": "c", "value": 1})
        sink.close()
        assert json.loads(stream.getvalue()) == {
            "type": "counter", "name": "c", "value": 1,
        }

    def test_table_sink_renders_sections(self):
        registry = populated_registry()
        sink = TableSink(out=io.StringIO())
        export(registry, sink)
        rendered = sink.render()
        assert "-- counters --" in rendered
        assert "-- gauges --" in rendered
        assert "-- histograms --" in rendered
        assert "bounds.kernel_calls" in rendered


class TestDerivedMetrics:
    def test_prune_ratio_per_prefix(self):
        derived = derived_metrics(populated_registry())
        assert derived["index.flat.search.prune_ratio"] == pytest.approx(0.75)

    def test_kernel_and_page_densities(self):
        derived = derived_metrics(populated_registry())
        assert derived["bounds.pairs_per_kernel_call"] == pytest.approx(1024)
        assert derived["storage.pages_per_read"] == pytest.approx(2.0)

    def test_empty_registry_yields_nothing(self):
        assert derived_metrics(MetricsRegistry()) == {}

    def test_zero_denominators_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("index.x.candidates_pruned")  # value 0
        registry.counter("bounds.kernel_calls")  # value 0
        assert derived_metrics(registry) == {}


class TestReports:
    def test_render_report_mentions_all_sections(self):
        report = render_report(populated_registry())
        assert "stage latencies" in report
        assert "index.flat.search.prune_ratio" in report
        assert "bounds.kernel_calls" in report

    def test_render_table_roundtrip(self):
        assert "bounds.pairs" in render_table(populated_registry())

    def test_write_json_lines_includes_derived(self, tmp_path):
        path = tmp_path / "report.jsonl"
        write_json_lines(populated_registry(), path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        derived = {
            r["name"]: r["value"] for r in records if r["type"] == "derived"
        }
        assert derived["index.flat.search.prune_ratio"] == pytest.approx(0.75)
        assert {r["type"] for r in records} >= {
            "counter", "gauge", "histogram", "span", "derived",
        }


class TestEndToEnd:
    def test_observed_index_run_produces_report(self, tmp_path):
        """The whole loop: observe a real search, write and reread it."""
        import numpy as np

        from repro.index.flat import FlatSketchIndex

        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(64, 32))
        index = FlatSketchIndex(matrix)
        with obs.observed() as registry:
            with span("run"):
                index.search(matrix[3], k=2)
        path = tmp_path / "run.jsonl"
        write_json_lines(registry, path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        names = {r.get("name") for r in records}
        assert "bounds.kernel_calls" in names
        assert "index.flat.search.queries" in names
        assert "index.flat.search.prune_ratio" in names
        assert "storage.read_calls" in names
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "run.index.flat.search" in span_names
