"""Shared-memory arena: roundtrips, read-only views, lifecycle hygiene."""

import glob

import numpy as np
import pytest

from repro.compression.best_k import BestMinErrorCompressor
from repro.compression.database import SketchDatabase
from repro.exceptions import KeyNotFoundError, ReproError, StorageError
from repro.storage.shm import (
    SEGMENT_PREFIX,
    MatrixSequenceStore,
    SharedArena,
    attach_sketch_database,
    stage_sketch_database,
)


def _segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture
def no_leaked_segments():
    """Assert the test leaves no shared-memory segment behind."""
    before = _segments()
    yield
    assert _segments() == before, "leaked shared-memory segment(s)"


def test_roundtrip_bitwise(no_leaked_segments):
    rng = np.random.default_rng(0)
    blocks = {
        "a.matrix": rng.normal(size=(17, 32)),
        "a.norms": rng.normal(size=17),
        "b.ints": rng.integers(0, 1000, size=(5, 3)),
        "c.bytes": rng.integers(0, 255, size=64).astype(np.uint8),
    }
    with SharedArena() as arena:
        for key, array in blocks.items():
            arena.stage(key, array)
        arena.seal()
        assert set(arena.keys()) == set(blocks)
        for key, array in blocks.items():
            view = arena.array(key)
            assert view.dtype == array.dtype
            assert np.array_equal(view, array)
            # Bitwise, not just close: the workers' integrity handshake
            # relies on exact bytes.
            assert view.tobytes() == np.ascontiguousarray(array).tobytes()


def test_views_are_read_only(no_leaked_segments):
    with SharedArena() as arena:
        arena.stage("x", np.arange(10.0))
        arena.seal()
        view = arena.array("x")
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 99.0


def test_attach_sees_same_bytes_and_never_unlinks(no_leaked_segments):
    payload = np.arange(24.0).reshape(4, 6)
    owner = SharedArena()
    owner.stage("m", payload)
    meta = owner.seal()
    try:
        attached = SharedArena.attach(meta)
        try:
            assert np.array_equal(attached.array("m"), payload)
        finally:
            attached.close()
        # An attacher closing must not take the segment down.
        assert len(_segments() & {f"/dev/shm/{meta.segment}"}) == 1
        assert np.array_equal(owner.array("m"), payload)
    finally:
        owner.close()
    with pytest.raises(StorageError):
        SharedArena.attach(meta)  # owner closed -> segment gone


def test_owner_close_removes_segment():
    arena = SharedArena()
    arena.stage("x", np.ones(3))
    meta = arena.seal()
    assert f"/dev/shm/{meta.segment}" in _segments()
    arena.close()
    assert f"/dev/shm/{meta.segment}" not in _segments()
    arena.close()  # idempotent


def test_stage_after_seal_and_unknown_key(no_leaked_segments):
    with SharedArena() as arena:
        arena.stage("x", np.ones(3))
        arena.seal()
        with pytest.raises(ReproError):
            arena.stage("y", np.ones(3))
        with pytest.raises(ReproError):
            arena.array("missing")


def test_duplicate_key_rejected(no_leaked_segments):
    with SharedArena() as arena:
        arena.stage("x", np.ones(3))
        with pytest.raises(ReproError):
            arena.stage("x", np.zeros(3))
        arena.seal()


def test_sketch_database_attach_equivalence(no_leaked_segments):
    rng = np.random.default_rng(1)
    matrix = rng.normal(size=(12, 64)).cumsum(axis=1)
    db = SketchDatabase.from_matrix(matrix, BestMinErrorCompressor(8))
    with SharedArena() as arena:
        meta = stage_sketch_database(arena, "s", db)
        arena.seal()
        view = attach_sketch_database(arena, meta)
        assert view.n == db.n
        assert len(view) == len(db)
        assert view.basis == db.basis and view.method == db.method
        for field in (
            "positions",
            "coefficients",
            "weights",
            "errors",
            "min_powers",
        ):
            assert np.array_equal(getattr(view, field), getattr(db, field))
        for seq_id in range(len(db)):
            ours, theirs = db.sketch(seq_id), view.sketch(seq_id)
            assert np.array_equal(ours.positions, theirs.positions)
            assert np.array_equal(ours.coefficients, theirs.coefficients)
            assert ours.error == theirs.error


class TestMatrixSequenceStore:
    def test_reads(self):
        matrix = np.arange(12.0).reshape(3, 4)
        store = MatrixSequenceStore(matrix)
        assert len(store) == 3
        assert store.sequence_length == 4
        assert np.array_equal(store.read(1), matrix[1])
        assert np.array_equal(store.read_many([2, 0]), matrix[[2, 0]])

    def test_out_of_range(self):
        store = MatrixSequenceStore(np.ones((2, 3)))
        with pytest.raises(KeyNotFoundError):
            store.read(2)
        with pytest.raises(KeyNotFoundError):
            store.read_many([0, 5])

    def test_closed(self):
        store = MatrixSequenceStore(np.ones((2, 3)))
        store.close()
        with pytest.raises(StorageError):
            store.read(0)

    def test_rejects_non_matrix(self):
        with pytest.raises(StorageError):
            MatrixSequenceStore(np.ones(5))
