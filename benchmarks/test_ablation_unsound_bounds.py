"""Ablation A7 (reproduction finding): the published BestMinError
pseudocode vs the provably sound envelope.

Our reproduction found that fig. 9's combined bound is not sound in
corner cases (see ``repro.bounds.best_min_error``).  This ablation
quantifies the trade-off on realistic data:

* how often and by how much the published bounds cross the true distance,
  per data family;
* how much pruning power the sound replacement
  ``max(LB_BestMin, LB_BestError)`` / ``min(UB_...)`` gives up;
* whether the published bounds ever return a wrong nearest neighbour on
  this workload.
"""

import numpy as np

from repro.bounds import batch_bounds
from repro.compression import SketchDatabase, StorageBudget
from repro.evaluation import format_table
from repro.evaluation.pruning import fraction_examined
from repro.index import VPTreeIndex, distances_to_query
from repro.spectral import Spectrum


def test_ablation_violation_rate(database_matrix, query_matrix, report,
                                 benchmark):
    budget = StorageBudget(16)
    matrix = database_matrix[:1024]
    sketch_db = SketchDatabase.from_matrix(
        matrix, budget.compressor("best_min_error")
    )

    lb_violations = ub_violations = comparisons = 0
    worst = 0.0
    for query in query_matrix[:10]:
        spectrum = Spectrum.from_series(query)
        lower, upper = batch_bounds(spectrum, sketch_db)
        true = distances_to_query(matrix, query)
        comparisons += len(matrix)
        lb_bad = lower > true + 1e-9
        ub_bad = true > upper + 1e-9
        lb_violations += int(lb_bad.sum())
        ub_violations += int(ub_bad.sum())
        if lb_bad.any():
            worst = max(worst, float(((lower - true) / true)[lb_bad].max()))
        if ub_bad.any():
            worst = max(worst, float(((true - upper) / true)[ub_bad].max()))

    report(
        format_table(
            ("quantity", "value"),
            [
                ("bound evaluations", 2 * comparisons),
                ("LB violations", lb_violations),
                ("LB violation rate", lb_violations / comparisons),
                ("UB violations", ub_violations),
                ("UB violation rate", ub_violations / comparisons),
                ("worst relative overshoot", worst),
            ],
            title="ablation A7a: soundness of the published BestMinError",
            digits=6,
        ),
        "measured profile: the LOWER bound essentially never violates on "
        "realistic data, but the published UPPER bound undershoots the "
        "true distance on a large share of aperiodic (random-walk)"
        " comparisons, by a few percent — enough to make SUB-pruning "
        "inexact in principle, which is why the sound envelope is this "
        "library's default",
    )
    # Lower-bound violations are the dangerous ones for LB-ordered
    # verification; they stay (essentially) absent.
    assert lb_violations / comparisons < 0.01
    # Upper-bound undershoot is common on this mixed workload but small.
    assert ub_violations / comparisons < 0.75
    assert worst < 0.30

    query = query_matrix[0]
    spectrum = Spectrum.from_series(query)
    benchmark(batch_bounds, spectrum, sketch_db)


def test_ablation_pruning_cost_of_soundness(database_matrix, query_matrix,
                                            report, benchmark):
    budget = StorageBudget(16)
    matrix = database_matrix[:2048]
    sketch_db = SketchDatabase.from_matrix(
        matrix, budget.compressor("best_min_error")
    )
    fractions = {}
    for method in ("best_min_error", "best_min_error_safe"):
        per_query = [
            fraction_examined(
                q, Spectrum.from_series(q), sketch_db, matrix, method
            )
            for q in query_matrix[:10]
        ]
        fractions[method] = float(np.mean(per_query))

    report(
        format_table(
            ("bound", "fraction examined"),
            [
                ("published BestMinError (unsound corners)",
                 fractions["best_min_error"]),
                ("sound envelope max(BestMin, BestError)",
                 fractions["best_min_error_safe"]),
            ],
            title="ablation A7b: what exactness costs",
            digits=4,
        )
    )
    # The published combination prunes at least as hard as the envelope.
    assert fractions["best_min_error"] <= fractions["best_min_error_safe"] + 1e-9

    query = query_matrix[1]
    spectrum = Spectrum.from_series(query)
    benchmark(
        fraction_examined, query, spectrum, sketch_db, matrix,
        "best_min_error_safe",
    )


def test_ablation_nn_accuracy_with_published_bounds(database_matrix,
                                                    query_matrix, report,
                                                    benchmark):
    matrix = database_matrix[:1024]
    compressor = StorageBudget(16).compressor("best_min_error")
    index = VPTreeIndex(
        matrix, compressor=compressor, bound_method="best_min_error", seed=7
    )
    wrong = 0
    for query in query_matrix[:10]:
        hits, _ = index.search(query, k=1)
        truth = float(distances_to_query(matrix, query).min())
        if abs(hits[0].distance - truth) > 1e-9:
            wrong += 1
    report(
        f"ablation A7c: the published bounds returned the exact 1-NN for "
        f"{10 - wrong}/10 queries on this workload (wrong answers are "
        f"possible in principle; the sound envelope is the exact default)"
    )
    assert wrong <= 1

    benchmark(index.search, query_matrix[0], 1)
