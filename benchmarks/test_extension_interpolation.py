"""Extension bench E2: off-grid period recovery via Jacobsen interpolation.

The paper reports periods on the bin grid (a 365-day year can only say
30.42 or 28.08 around the 29.53-day lunar month).  The optional
``interpolate=True`` detector refines each peak with the complex
three-point (Jacobsen) estimator.  This bench quantifies the accuracy
gain on planted off-grid tones and on the catalog's 'full moon'.
"""

import numpy as np

from repro.evaluation import format_table
from repro.periods import PeriodDetector
from repro.timeseries import zscore

TRUE_PERIODS = (29.53, 13.7, 45.25, 97.3)


def test_extension_period_interpolation(catalog_2002, report, benchmark):
    n = 512
    t = np.arange(n)
    rng = np.random.default_rng(2)
    raw_detector = PeriodDetector()
    fine_detector = PeriodDetector(interpolate=True)

    rows = []
    raw_errors, fine_errors = [], []
    for true_period in TRUE_PERIODS:
        x = zscore(
            np.sin(2 * np.pi * t / true_period) + 0.2 * rng.normal(size=n)
        )
        raw = raw_detector.detect(x).periods[0].period
        fine = fine_detector.detect(x).periods[0].period
        raw_errors.append(abs(raw - true_period))
        fine_errors.append(abs(fine - true_period))
        rows.append((true_period, raw, fine))

    moon = catalog_2002["full moon"].standardize()
    moon_raw = raw_detector.detect(moon).periods[0].period
    moon_fine = fine_detector.detect(moon).periods[0].period
    rows.append(("full moon (29.53)", moon_raw, moon_fine))

    report(
        format_table(
            ("true period", "bin-grid estimate", "interpolated"),
            rows,
            title="extension E2: off-grid period recovery",
        ),
        f"mean absolute error: {np.mean(raw_errors):.3f}d raw vs "
        f"{np.mean(fine_errors):.3f}d interpolated",
    )
    # Interpolation must dominate on planted tones and help the lunar case.
    assert np.mean(fine_errors) < np.mean(raw_errors) * 0.35
    assert abs(moon_fine - 29.53) <= abs(moon_raw - 29.53)

    x = zscore(np.sin(2 * np.pi * t / 29.53))
    benchmark(fine_detector.detect, x)
