#!/usr/bin/env python
"""A live query-log mining service, end to end.

The scenario the paper's introduction motivates: a search engine streams
its logs into a mining service that keeps compressed representations and
burst features current, and answers three kinds of questions on demand —
recommendations (similar queries), important news (bursts), and
optimisation hints (co-retrieved queries).  :class:`repro.QueryLogMiner`
is that service; this example drives it the way an operator would:

1. bootstrap from a first batch of aggregated series;
2. ingest a *raw log-record stream* for a new query (aggregation
   included) and watch it become searchable immediately (the dynamic
   VP-tree insertion path);
3. ask the three questions.

Run:  python examples/live_mining_service.py
"""

import datetime as dt

from repro import QueryLogGenerator, QueryLogMiner
from repro.datagen import DayGrid, iter_log_records, profile, sample_daily_counts

import numpy as np


def main() -> None:
    start, days = dt.date(2002, 1, 1), 365
    generator = QueryLogGenerator(seed=0, start=start, days=days)
    miner = QueryLogMiner(start=start, days=days, seed=0)

    print("=== bootstrap: ingesting the first batch of queries ===")
    first_batch = (
        "cinema", "movie listings", "restaurants", "bank", "weather",
        "full moon", "easter", "halloween", "christmas", "christmas gifts",
        "gingerbread men", "elvis", "flowers", "dudley moore", "president",
    )
    for name in first_batch:
        miner.add_series(generator.series(name))
    print(f"  {len(miner)} queries ingested\n")

    print("=== a new query arrives as raw log records ===")
    grid = DayGrid(start, days)
    rng = np.random.default_rng(7)
    counts = sample_daily_counts(
        profile("rudolph the red nosed reindeer"), grid, rng
    )
    added = miner.add_records(
        iter_log_records(counts, grid, "rudolph the red nosed reindeer")
    )
    print(
        f"  aggregated {int(counts.sum())} records into a daily series "
        f"for {added[0]!r}; now {len(miner)} queries live\n"
    )

    print("=== question 1: recommendations (similar demand shapes) ===")
    # One batched call answers every probe (the engine's search_many).
    probes = ["cinema", "christmas"]
    for probe, hits in zip(probes, miner.similar_many(probes, k=3)):
        for hit in hits:
            print(
                f"  {probe} ~ {hit.name:<20s} (distance {hit.distance:6.2f})"
            )
    shared = miner.shared_periods_of_similar("cinema", k=3)
    if shared:
        print(
            f"  ...and the whole group shares a {shared[0].period:.2f}-day "
            f"period ({shared[0].support} of the set)\n"
        )

    print("=== question 2: important news (bursts) ===")
    for name in ("halloween", "dudley moore"):
        spans = miner.burst_spans(name, window=30) or miner.burst_spans(
            name, window=7
        )
        rendered = (
            "; ".join(f"{a} .. {b}" for a, b in spans) if spans else "none"
        )
        print(f"  {name:<14s} bursts: {rendered}")
    print()

    print("=== question 3: optimisation (what is retrieved together?) ===")
    for match in miner.co_bursting("christmas", top=3):
        print(f"  christmas + {match.name:<32s} BSim {match.similarity:5.2f}")
    print(
        "\n  (the newly ingested 'rudolph...' series participates without "
        "any rebuild)\n"
    )

    print("=== question 3b: place co-retrieved queries on the same server ===")
    from repro import plan_placement

    collection = generator.collection(miner.names)
    plan = plan_placement(collection, servers=3)
    for server in range(plan.servers):
        members = ", ".join(plan.members(server))
        print(f"  server {server} (load {plan.loads[server]:8.0f}): {members}")
    print(
        f"  co-located: christmas & christmas gifts -> "
        f"{plan.colocated('christmas', 'christmas gifts')}; "
        f"load imbalance {plan.load_imbalance():.2f}x"
    )

    print("\n=== bonus: warped matching for shifted seasons ===")
    for hit in miner.dtw_similar("christmas", k=2):
        print(f"  christmas ~ {hit.name:<24s} (dtw {hit.distance:6.2f})")


if __name__ == "__main__":
    main()
