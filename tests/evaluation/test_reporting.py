"""Tests for report formatting."""

from repro.evaluation import format_float, format_table


class TestFormatFloat:
    def test_floats(self):
        assert format_float(1.23456) == "1.23"
        assert format_float(1.23456, digits=4) == "1.2346"

    def test_special_values(self):
        assert format_float(None) == "-"
        assert format_float(float("nan")) == "-"
        assert format_float(float("inf")) == "inf"

    def test_passthrough(self):
        assert format_float("abc") == "abc"
        assert format_float(7) == "7"
        assert format_float(True) == "True"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ("name", "value"),
            [("a", 1.0), ("long-name", 123.456)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        # All data lines equal width.
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows(self):
        table = format_table(("a", "b"), [])
        assert "a" in table and "b" in table

    def test_wide_cells_stretch_columns(self):
        table = format_table(("h",), [("a-very-long-cell",)])
        header_line = table.splitlines()[0]
        assert len(header_line) >= len("a-very-long-cell")
