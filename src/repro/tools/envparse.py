"""Shared parsing for the ``REPRO_*`` environment knobs.

Every tunable the engine reads from the environment —
``REPRO_VERIFY_BLOCK``, ``REPRO_SHARDS``, ``REPRO_CACHE_BYTES``,
``REPRO_APPROX_EPSILON``, ``REPRO_APPROX_PATIENCE`` — goes through the
helpers below, so a typo'd value fails the same way everywhere: a
:class:`~repro.exceptions.ReproError` (or a caller-chosen subclass)
whose message names the variable, quotes the offending value, and
states what would have been accepted.  Before this module each call
site either swallowed junk silently (masking misconfiguration) or let
a raw ``ValueError`` escape with no hint of *which* variable was bad.

Unset and empty/whitespace-only variables always mean "use the
default" — an empty string is how CI matrices and shell scripts spell
"knob absent".
"""

from __future__ import annotations

import os

from repro.exceptions import ReproError

__all__ = [
    "parse_env_float",
    "parse_env_int",
    "parse_env_optional_int",
]


def _raw(name: str) -> str | None:
    """The stripped value of ``name``, or ``None`` when unset/blank."""
    raw = os.environ.get(name, "").strip()
    return raw or None


def _check_minimum(name, value, raw, minimum, error):
    if minimum is not None and value < minimum:
        raise error(
            f"{name} must be >= {minimum}, got {raw!r}"
        )
    return value


def parse_env_int(
    name: str,
    default: int,
    *,
    minimum: int | None = None,
    error: type[ReproError] = ReproError,
) -> int:
    """``int(os.environ[name])`` with a clear failure mode.

    Returns ``default`` when the variable is unset or blank.  Raises
    ``error`` (default :class:`~repro.exceptions.ReproError`) naming the
    variable when the value is not an integer or is below ``minimum``.
    """
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise error(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return _check_minimum(name, value, raw, minimum, error)


def parse_env_optional_int(
    name: str,
    *,
    minimum: int | None = None,
    error: type[ReproError] = ReproError,
) -> int | None:
    """Like :func:`parse_env_int` but unset/blank means ``None``.

    For knobs whose absence disables a feature rather than selecting a
    numeric default (``REPRO_APPROX_PATIENCE``: no value, no early
    stop).
    """
    raw = _raw(name)
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise error(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    return _check_minimum(name, value, raw, minimum, error)


def parse_env_float(
    name: str,
    default: float,
    *,
    minimum: float | None = None,
    error: type[ReproError] = ReproError,
) -> float:
    """``float(os.environ[name])`` with a clear failure mode.

    Returns ``default`` when the variable is unset or blank; rejects
    non-finite values (``nan``/``inf`` are never a sane knob setting).
    """
    raw = _raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise error(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise error(
            f"{name} must be a finite number, got {raw!r}"
        )
    return _check_minimum(name, value, raw, minimum, error)
