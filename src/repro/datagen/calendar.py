"""Calendar helpers for demand modelling.

The paper's exemplar queries are driven by real calendar structure:
weekends (*cinema*), moving feasts (*easter* — fig. 15 shows its burst
drifting across March/April between 2000 and 2002), fixed anniversaries
(*elvis*, August 16), and derived holidays (*flowers* peaks at Valentine's
Day and Mother's Day).  This module supplies those anchors.
"""

from __future__ import annotations

import datetime as _dt

__all__ = [
    "easter_date",
    "nth_weekday_of_month",
    "mothers_day",
    "thanksgiving",
    "super_bowl_sunday",
]


def easter_date(year: int) -> _dt.date:
    """Western (Gregorian) Easter Sunday via the anonymous Gregorian computus.

    Spot checks: 2000-04-23, 2001-04-15, 2002-03-31 — the three springs
    visible in the paper's fig. 15.
    """
    a = year % 19
    b, c = divmod(year, 100)
    d, e = divmod(b, 4)
    f = (b + 8) // 25
    g = (b - f + 1) // 3
    h = (19 * a + b - d - g + 15) % 30
    i, k = divmod(c, 4)
    l = (32 + 2 * e + 2 * i - h - k) % 7
    m = (a + 11 * h + 22 * l) // 451
    month, day = divmod(h + l - 7 * m + 114, 31)
    return _dt.date(year, month, day + 1)


def nth_weekday_of_month(
    year: int, month: int, weekday: int, n: int
) -> _dt.date:
    """The ``n``-th given weekday (Monday=0) of a month (1-based ``n``)."""
    if not 1 <= n <= 5:
        raise ValueError(f"n must be in [1, 5], got {n}")
    first = _dt.date(year, month, 1)
    offset = (weekday - first.weekday()) % 7
    result = first + _dt.timedelta(days=offset + 7 * (n - 1))
    if result.month != month:
        raise ValueError(
            f"{year}-{month:02d} has no {n}th weekday {weekday}"
        )
    return result


def mothers_day(year: int) -> _dt.date:
    """US Mother's Day: the second Sunday of May."""
    return nth_weekday_of_month(year, 5, 6, 2)


def thanksgiving(year: int) -> _dt.date:
    """US Thanksgiving: the fourth Thursday of November."""
    return nth_weekday_of_month(year, 11, 3, 4)


def super_bowl_sunday(year: int) -> _dt.date:
    """Approximate Super Bowl date: the last Sunday of January."""
    day = _dt.date(year, 1, 31)
    return day - _dt.timedelta(days=(day.weekday() - 6) % 7)
