#!/usr/bin/env python
"""Mining seasonal and news bursts across three years of query logs.

The scenario behind figs. 15, 16 and 19: a search-engine analyst loads the
2000-2002 logs and asks

* where are the long-term (seasonal) bursts of the holiday queries, and
  do moving feasts like Easter drift year to year?
* which queries burst *together* — i.e. which events co-occur?
* can short-term bursts isolate the lunar cycle of 'full moon'?

Everything runs on the relational burst store (B-tree indexed burst
triplets + the fig. 18 overlap plan).

Run:  python examples/holiday_burst_mining.py
"""

import datetime as dt

from repro import BurstDatabase, BurstDetector, QueryLogGenerator, compact_bursts
from repro.datagen import easter_date
from repro.tools import burst_chart


def main() -> None:
    print("=== generating 2000-2002 query logs (1096 days) ===\n")
    generator = QueryLogGenerator(seed=7, start=dt.date(2000, 1, 1), days=1096)
    collection = generator.catalog_collection()

    # ------------------------------------------------------------------
    # Easter drifts: the moving feast across three springs (fig. 15)
    # ------------------------------------------------------------------
    print("=== 'easter' bursts across three springs (fig. 15) ===")
    easter = collection["easter"]
    standardized = easter.standardize()
    annotation = BurstDetector.long_term().detect(standardized)
    print(burst_chart(easter, annotation.mask))
    for burst in compact_bursts(standardized, annotation):
        start = burst.start_date(easter.start)
        end = burst.end_date(easter.start)
        actual = easter_date(end.year)
        print(
            f"  burst {start} .. {end}  "
            f"(Easter {end.year} was {actual}; drop follows the feast)"
        )
    print()

    # ------------------------------------------------------------------
    # Compact burst triplets for 'flowers' (fig. 16)
    # ------------------------------------------------------------------
    print("=== compact burst triplets for 'flowers' (fig. 16) ===")
    flowers = collection["flowers"].standardize()
    annotation = BurstDetector.long_term().detect(flowers)
    print("  [sequenceID, startDate, endDate, avg] rows for the DBMS:")
    for burst in compact_bursts(flowers, annotation):
        print(
            f"  ['flowers', {burst.start_date(flowers.start)}, "
            f"{burst.end_date(flowers.start)}, {burst.average:+.2f}]"
        )
    print("  (expected: one burst near Valentine's Day, one near Mother's Day,"
          " per year)\n")

    # ------------------------------------------------------------------
    # Short-term bursts: the lunar cycle (fig. 16, bottom)
    # ------------------------------------------------------------------
    print("=== short-term bursts of 'full moon' (7-day MA) ===")
    moon = collection["full moon"].standardize()
    annotation = BurstDetector.short_term().detect(moon)
    bursts = compact_bursts(moon, annotation)
    print(f"  {len(bursts)} bursts over 36 months "
          f"(one per lunation would be ~37)")
    gaps = [
        later.start - earlier.start for earlier, later in zip(bursts, bursts[1:])
    ]
    if gaps:
        print(f"  median gap between bursts: {sorted(gaps)[len(gaps)//2]} days "
              f"(lunar month = 29.53)\n")

    # ------------------------------------------------------------------
    # Query-by-burst across the whole catalog (fig. 19)
    # ------------------------------------------------------------------
    print("=== query-by-burst over the full catalog (fig. 19) ===")
    burst_db = BurstDatabase()
    burst_db.add_collection(collection)
    print(f"  burst table holds {len(burst_db.table)} triplet rows, "
          f"B-tree indexed on start/end\n")
    for query in ("world trade center", "hurricane", "christmas"):
        matches = burst_db.query(query, top=3)
        print(f"  query = {query}")
        for match in matches:
            print(f"    -> {match.name:<32s} BSim {match.similarity:6.2f}")
        print()


if __name__ == "__main__":
    main()
