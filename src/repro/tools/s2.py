"""S2 — the interactive similarity tool (section 7.5), terminal edition.

The paper closes with S2, "an interactive exploratory data discovery tool
for the MSN query database" offering three major functionalities:
identification of important periods, similarity search, and burst
detection with query-by-burst.  This module is that tool over the
synthetic query-log substrate, as a readline REPL (the original was a C#
GUI):

.. code-block:: console

    $ s2 --synthetic 200
    s2> show cinema
    s2> periods cinema
    s2> search cinema
    s2> bursts halloween
    s2> burstsearch christmas
    s2> preview cinema 5

``--demo`` runs a scripted tour non-interactively (used by the examples
and tests).
"""

from __future__ import annotations

import argparse
import cmd
import datetime as _dt
import sys

from repro.bursts.compaction import compact_bursts
from repro.bursts.detection import BurstDetector
from repro.bursts.query import BurstDatabase
from repro.compression.best_k import BestMinErrorCompressor
from repro.datagen.generator import QueryLogGenerator
from repro.dtw.search import DTWSearch
from repro.exceptions import ReproError
from repro.index.vptree import VPTreeIndex
from repro.periods.aggregate import shared_periods
from repro.periods.detector import PeriodDetector
from repro.spectral.dft import Spectrum
from repro.tools.plotting import burst_chart, line_chart, sparkline

__all__ = ["S2Shell", "build_workspace", "main"]


class S2Workspace:
    """Everything the shell needs: data, index, burst DB, detectors."""

    def __init__(self, collection, compressor_k: int = 14, seed: int = 0):
        self.collection = collection
        self.standardized = collection.standardize()
        self.index = VPTreeIndex(
            self.standardized.as_matrix(),
            compressor=BestMinErrorCompressor(compressor_k),
            names=list(collection.names),
            seed=seed,
        )
        self.burst_db = BurstDatabase()
        self.burst_db.add_collection(collection)
        self.period_detector = PeriodDetector(interpolate=True)
        self.compressor = BestMinErrorCompressor(compressor_k)
        self._dtw_search: DTWSearch | None = None  # built lazily

    def dtw_search(self) -> DTWSearch:
        """The (lazily built) DTW search structure over the database."""
        if self._dtw_search is None:
            self._dtw_search = DTWSearch(
                self.standardized.as_matrix(),
                band=0.05,
                names=list(self.collection.names),
            )
        return self._dtw_search


def build_workspace(
    seed: int = 0,
    days: int = 365,
    start: _dt.date = _dt.date(2002, 1, 1),
    synthetic: int = 0,
    compressor_k: int = 14,
) -> S2Workspace:
    """Generate the dataset and build the search structures."""
    generator = QueryLogGenerator(seed=seed, start=start, days=days)
    if synthetic:
        collection = generator.synthetic_database(
            synthetic, include_catalog=True
        )
    else:
        collection = generator.catalog_collection()
    return S2Workspace(collection, compressor_k=compressor_k, seed=seed)


class S2Shell(cmd.Cmd):
    """The interactive command loop."""

    intro = (
        "S2 similarity tool - periods, similarity search, bursts.\n"
        "Type 'help' for commands, 'list' for available queries, 'quit' to exit."
    )
    prompt = "s2> "

    def __init__(self, workspace: S2Workspace, stdout=None):
        super().__init__(stdout=stdout or sys.stdout)
        self.workspace = workspace

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _say(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _series(self, name: str):
        name = name.strip()
        if not name:
            raise ReproError("which query? e.g. 'show cinema'")
        if name not in self.workspace.collection:
            raise ReproError(
                f"unknown query {name!r}; 'list' shows what is loaded"
            )
        return self.workspace.collection[name]

    def onecmd(self, line: str) -> bool:  # noqa: D102 - cmd.Cmd hook
        try:
            return super().onecmd(line)
        except ReproError as exc:
            self._say(f"[error] {exc}")
            return False

    def emptyline(self) -> bool:  # noqa: D102 - cmd.Cmd hook
        # The cmd.Cmd default re-runs the last command on a bare Enter,
        # which surprises users mid-exploration; do nothing instead.
        return False

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def do_list(self, arg: str) -> None:
        """list — show the loaded query names."""
        names = self.workspace.collection.names
        self._say(f"{len(names)} queries loaded:")
        row: list[str] = []
        for name in names:
            row.append(name)
            if len(row) == 4:
                self._say("  " + " | ".join(row))
                row = []
        if row:
            self._say("  " + " | ".join(row))

    def do_show(self, arg: str) -> None:
        """show <query> — plot a query's demand curve."""
        series = self._series(arg)
        self._say(line_chart(series))

    def do_periods(self, arg: str) -> None:
        """periods <query> — detect the significant periods."""
        series = self._series(arg)
        result = self.workspace.period_detector.detect(series.standardize())
        self._say(line_chart(series))
        if not result.periods:
            self._say(
                f"no significant periods (threshold {result.threshold:.3f})"
            )
            return
        self._say(f"power threshold: {result.threshold:.3f}")
        for rank, period in enumerate(result.top(5), start=1):
            self._say(
                f"  P{rank} = {period.period:.2f} days "
                f"(power {period.power:.2f})"
            )

    def do_search(self, arg: str) -> None:
        """search <query> [k] — k nearest queries by demand shape."""
        parts = arg.rsplit(maxsplit=1)
        k = 5
        if len(parts) == 2 and parts[1].isdigit():
            arg, k = parts[0], int(parts[1])
        series = self._series(arg)
        query = self.workspace.standardized[series.name]
        neighbors, stats = self.workspace.index.search(
            query.values, k=min(k + 1, len(self.workspace.collection))
        )
        self._say(f"queries most similar to {series.name!r}:")
        shown = 0
        for neighbor in neighbors:
            if neighbor.name == series.name:
                continue
            self._say(
                f"  {neighbor.name:<32s} distance {neighbor.distance:7.2f}  "
                f"{sparkline(self.workspace.collection[neighbor.name].values, 40)}"
            )
            shown += 1
            if shown == k:
                break
        self._say(
            f"(examined {stats.full_retrievals} of "
            f"{len(self.workspace.collection)} uncompressed sequences)"
        )

    def do_sharedperiods(self, arg: str) -> None:
        """sharedperiods <query> [k] — periods common to a query's k-NN set."""
        parts = arg.rsplit(maxsplit=1)
        k = 5
        if len(parts) == 2 and parts[1].isdigit():
            arg, k = parts[0], int(parts[1])
        series = self._series(arg)
        query = self.workspace.standardized[series.name]
        neighbors, _ = self.workspace.index.search(
            query.values, k=min(k, len(self.workspace.collection))
        )
        members = [self.workspace.collection[n.name] for n in neighbors]
        found = shared_periods(members, self.workspace.period_detector)
        self._say(
            f"periods shared by the {len(members)} queries most similar to "
            f"{series.name!r}:"
        )
        if not found:
            self._say("  none are significant across the set")
            return
        for shared in found[:5]:
            self._say(
                f"  {shared.period:7.2f} days in {shared.support} of "
                f"{len(members)}: {', '.join(shared.members)}"
            )

    def do_dtwsearch(self, arg: str) -> None:
        """dtwsearch <query> [k] — k nearest queries under warped distance."""
        parts = arg.rsplit(maxsplit=1)
        k = 3
        if len(parts) == 2 and parts[1].isdigit():
            arg, k = parts[0], int(parts[1])
        series = self._series(arg)
        query = self.workspace.standardized[series.name]
        search = self.workspace.dtw_search()
        neighbors, stats = search.search(
            query.values, k=min(k + 1, len(self.workspace.collection))
        )
        self._say(f"queries DTW-closest to {series.name!r}:")
        shown = 0
        for neighbor in neighbors:
            if neighbor.name == series.name:
                continue
            self._say(
                f"  {neighbor.name:<32s} dtw distance {neighbor.distance:7.2f}"
            )
            shown += 1
            if shown == k:
                break
        self._say(
            f"(computed {stats.dtw_computations} full DTWs out of "
            f"{stats.candidates} candidates; the rest were pruned by "
            f"linear-cost bounds)"
        )

    def do_bursts(self, arg: str) -> None:
        """bursts <query> [short] — detect long- (or short-) term bursts."""
        short = False
        if arg.endswith(" short"):
            arg, short = arg[: -len(" short")], True
        series = self._series(arg)
        detector = (
            BurstDetector.short_term() if short else BurstDetector.long_term()
        )
        standardized = series.standardize()
        annotation = detector.detect(standardized)
        bursts = compact_bursts(standardized, annotation)
        self._say(burst_chart(series, annotation.mask))
        if not bursts:
            self._say("no bursts found")
            return
        for burst in bursts:
            self._say(
                f"  burst {burst.start_date(series.start)} .. "
                f"{burst.end_date(series.start)}  avg {burst.average:+.2f}"
            )

    def do_burstsearch(self, arg: str) -> None:
        """burstsearch <query> [short] — query-by-burst against the database."""
        window = None
        if arg.endswith(" short"):
            arg, window = arg[: -len(" short")], 7
        series = self._series(arg)
        matches = self.workspace.burst_db.query(series.name, top=5, window=window)
        if not matches:
            self._say("no overlapping bursts in the database")
            return
        self._say(f"queries bursting together with {series.name!r}:")
        for match in matches:
            self._say(f"  {match.name:<32s} BSim {match.similarity:6.2f}")

    def do_preview(self, arg: str) -> None:
        """preview <query> [k] — reconstruction from the k best coefficients."""
        parts = arg.rsplit(maxsplit=1)
        k = None
        if len(parts) == 2 and parts[1].isdigit():
            arg, k = parts[0], int(parts[1])
        series = self._series(arg)
        standardized = series.standardize()
        compressor = (
            BestMinErrorCompressor(k) if k else self.workspace.compressor
        )
        sketch = compressor.compress(Spectrum.from_series(standardized.values))
        approx = sketch.reconstruct()
        self._say(f"original      {sparkline(standardized.values, 64)}")
        self._say(f"{len(sketch):3d} best coeff {sparkline(approx, 64)}")
        self._say(f"approximation error: {sketch.error ** 0.5:.2f}")

    def do_quit(self, arg: str) -> bool:
        """quit — leave the tool."""
        return True

    do_exit = do_quit
    do_EOF = do_quit


DEMO_SCRIPT = (
    "list",
    "show cinema",
    "periods cinema",
    "periods full moon",
    "periods dudley moore",
    "search cinema 3",
    "sharedperiods cinema 4",
    "dtwsearch cinema 3",
    "bursts halloween",
    "bursts easter",
    "burstsearch christmas",
    "preview cinema 5",
    "quit",
)


def main(argv=None) -> int:
    """Command-line entry point (installed as ``s2``)."""
    parser = argparse.ArgumentParser(
        prog="s2", description="S2 similarity tool over synthetic query logs"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--days", type=int, default=365, help="days of log data to generate"
    )
    parser.add_argument(
        "--start",
        type=_dt.date.fromisoformat,
        default=_dt.date(2002, 1, 1),
        help="first day of the generated logs (ISO format)",
    )
    parser.add_argument(
        "--synthetic",
        type=int,
        default=0,
        metavar="N",
        help="add N synthetic series on top of the named catalog",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a scripted, non-interactive tour and exit",
    )
    args = parser.parse_args(argv)

    print("building the S2 workspace (generating logs, compressing, indexing)...")
    workspace = build_workspace(
        seed=args.seed, days=args.days, start=args.start, synthetic=args.synthetic
    )
    shell = S2Shell(workspace)
    if args.demo:
        for command in DEMO_SCRIPT:
            print(f"{shell.prompt}{command}")
            if shell.onecmd(command):
                break
        return 0
    shell.cmdloop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
