"""Tests for VP-tree epsilon (range) search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SeriesMismatchError
from repro.index import VPTreeIndex, distances_to_query
from repro.timeseries import zscore


def make_db(count=100, n=48, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return np.array(
        [
            zscore(
                np.sin(2 * np.pi * t / [6, 9, 16][i % 3] + rng.uniform(0, 6))
                + 0.4 * rng.normal(size=n)
            )
            for i in range(count)
        ]
    )


@pytest.fixture(scope="module")
def matrix():
    return make_db()


@pytest.fixture(scope="module")
def index(matrix):
    return VPTreeIndex(matrix, leaf_size=5, seed=1)


class TestRangeSearch:
    def test_matches_brute_force(self, matrix, index):
        rng = np.random.default_rng(2)
        query = zscore(rng.normal(size=48))
        truth = distances_to_query(matrix, query)
        for radius in (truth.min() * 1.01, np.median(truth), truth.max() + 1):
            hits, _ = index.range_search(query, radius)
            expected = set(np.flatnonzero(truth <= radius).tolist())
            assert {h.seq_id for h in hits} == expected
            for hit in hits:
                assert hit.distance == pytest.approx(
                    truth[hit.seq_id], abs=1e-9
                )

    def test_zero_radius_on_member(self, matrix, index):
        hits, _ = index.range_search(matrix[9], 0.0)
        assert [h.seq_id for h in hits] == [9]

    def test_empty_result(self, matrix, index):
        rng = np.random.default_rng(3)
        query = zscore(rng.normal(size=48))
        truth = distances_to_query(matrix, query)
        hits, stats = index.range_search(query, truth.min() * 0.5)
        assert hits == []
        assert stats.bound_computations > 0

    def test_results_sorted_by_distance(self, matrix, index):
        query = matrix[0] * 0.95
        hits, _ = index.range_search(query, 10.0)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_small_radius_prunes(self, matrix, index):
        hits, stats = index.range_search(matrix[3], 1.0)
        assert stats.full_retrievals < len(matrix)
        assert 3 in {h.seq_id for h in hits}

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.1, max_value=15.0),
    )
    def test_property_equivalence(self, seed, radius):
        matrix = make_db(count=40, n=32, seed=seed)
        index = VPTreeIndex(matrix, leaf_size=3, seed=seed)
        rng = np.random.default_rng(seed + 1)
        query = zscore(rng.normal(size=32))
        truth = distances_to_query(matrix, query)
        hits, _ = index.range_search(query, radius)
        assert {h.seq_id for h in hits} == set(
            np.flatnonzero(truth <= radius).tolist()
        )

    def test_respects_deletions(self, matrix):
        index = VPTreeIndex(matrix, leaf_size=5, seed=4)
        index.remove(9)
        hits, _ = index.range_search(matrix[9], 0.5)
        assert all(h.seq_id != 9 for h in hits)

    def test_validation(self, index, matrix):
        with pytest.raises(SeriesMismatchError):
            index.range_search(np.zeros(10), 1.0)
        with pytest.raises(ValueError):
            index.range_search(matrix[0], -1.0)
