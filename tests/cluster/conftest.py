"""Shared workloads for the cluster (sharding) tests.

Reuses the engine suite's tie-bearing database generator: shard merges
must preserve the canonical ``(distance, seq_id)`` tie-break even when
the tied duplicates land on *different* shards, which the hash
partitioner guarantees happens for some of the duplicated rows.
"""

import numpy as np
import pytest

from tests.engine.conftest import make_db
from repro.timeseries import zscore


@pytest.fixture(scope="package")
def matrix():
    return make_db()


@pytest.fixture(scope="package")
def queries(matrix):
    rng = np.random.default_rng(7)
    out_of_db = [zscore(rng.normal(size=matrix.shape[1])) for _ in range(2)]
    # In-database probes hit the duplicated rows, so ties are guaranteed.
    return out_of_db + [matrix[0].copy()]
