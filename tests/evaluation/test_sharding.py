"""The shard-scaling experiment and its runner section."""

import io

import numpy as np
import pytest

from repro.evaluation import shard_scaling_experiment
from repro.evaluation.runner import run_report
from repro.exceptions import ReproError
from repro.timeseries import zscore


def make_workload(seed=5, count=60, n=64, queries=4):
    rng = np.random.default_rng(seed)
    matrix = np.array(
        [zscore(np.cumsum(rng.normal(size=n))) for _ in range(count)]
    )
    probes = np.array(
        [zscore(np.cumsum(rng.normal(size=n))) for _ in range(queries)]
    )
    return matrix, probes


class TestShardScalingExperiment:
    def test_measures_each_count_and_agrees(self):
        matrix, probes = make_workload()
        result = shard_scaling_experiment(
            matrix, probes, shard_counts=(1, 3), k=4, workers=2
        )
        assert result.agreement
        assert [row.shards for row in result.rows] == [1, 3]
        assert result.database_size == len(matrix)
        assert result.queries == len(probes)
        for row in result.rows:
            assert row.wall_seconds > 0
            assert row.queries_per_second > 0
        assert result.row_for(1).speedup == 1.0

    def test_row_for_missing_count_raises(self):
        matrix, probes = make_workload()
        result = shard_scaling_experiment(
            matrix, probes, shard_counts=(2,), k=2, workers=1
        )
        with pytest.raises(ReproError, match="no row measured"):
            result.row_for(8)

    def test_needs_at_least_one_count(self):
        matrix, probes = make_workload()
        with pytest.raises(ReproError, match="at least one"):
            shard_scaling_experiment(matrix, probes, shard_counts=())

    def test_table_renders(self):
        matrix, probes = make_workload()
        result = shard_scaling_experiment(
            matrix, probes, shard_counts=(1, 2), k=3, workers=1,
            backend="scan",
        )
        table = result.as_table()
        assert "shard scaling" in table
        assert "1 shard" in table and "2 shards" in table


class TestRunnerSection:
    def test_report_includes_scaling_section_when_sharded(self):
        out = io.StringIO()
        run_report(
            db_size=96,
            days=128,
            queries=3,
            pairs=10,
            seed=2,
            budgets=(8,),
            shards=2,
            out=out,
        )
        text = out.getvalue()
        assert "cluster - scatter-gather scaling" in text
        assert "bit-identical" in text
        assert "MISMATCH" not in text

    def test_report_omits_section_by_default(self):
        out = io.StringIO()
        run_report(
            db_size=64,
            days=128,
            queries=2,
            pairs=5,
            seed=2,
            budgets=(8,),
            out=out,
        )
        assert "scatter-gather scaling" not in out.getvalue()
