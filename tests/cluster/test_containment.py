"""Degraded-shard containment: one poisoned shard, the rest unaffected.

The fault-drill companion for the cluster layer.  An entire shard's
store is corrupted (every member read raises ``CorruptionError``); the
router must keep serving from the healthy shards, quarantine only the
poisoned shard's members, flag the answers as degraded, and keep the
extended accounting invariant ``pruned + retrievals + quarantined ==
database_size`` both per query and globally.
"""

import math

import numpy as np
import pytest

from repro.cluster import build_sharded
from repro.engine import get_index, search_many
from repro.index.distance import euclidean_early_abandon_sq
from repro.resilience import FaultPlan, FaultyIndex, FaultyStore, quarantine_of

K = 4
POISONED = 1


@pytest.fixture
def poisoned(matrix):
    """A 4-shard flat router with every member of shard 1 unreadable."""
    # In-process only: the FaultyStore below wraps the parent's store
    # handles, which pooled workers (REPRO_SHARD_WORKERS) never touch.
    router = build_sharded(
        matrix, shards=4, backend="flat", seed=0, worker_pool=False
    )
    sub = router._shards[POISONED]
    sub._store = FaultyStore(
        sub._store, FaultPlan(), corrupt_ids=range(len(sub))
    )
    victims = {int(gid) for gid in router._global_ids[POISONED]}
    return router, victims


def survivors_knn(matrix, victims, query, k):
    """Brute-force truth over the healthy members only."""
    exact = sorted(
        (euclidean_early_abandon_sq(query, row, math.inf), seq_id)
        for seq_id, row in enumerate(matrix)
        if seq_id not in victims
    )
    return [(math.sqrt(d_sq), seq_id) for d_sq, seq_id in exact[:k]]


def test_healthy_shards_keep_answering(matrix, queries, poisoned):
    router, victims = poisoned
    for query in queries:
        hits, stats = router.search(query, k=K)
        got = [(h.distance, h.seq_id) for h in hits]
        assert got == survivors_knn(matrix, victims, query, K)
        assert stats.degraded
        assert set(stats.quarantined_ids) <= victims
        assert (
            stats.candidates_pruned
            + stats.full_retrievals
            + stats.quarantined
            == len(matrix)
        )


def test_quarantine_is_contained_to_the_poisoned_shard(
    matrix, queries, poisoned
):
    router, victims = poisoned
    for query in queries:
        router.search(query, k=K)
    grouped = router.quarantined_by_shard()
    assert set(grouped) == {POISONED}
    assert set(grouped[POISONED]) <= victims
    assert grouped[POISONED]  # something was actually quarantined


def test_batched_fanout_contains_the_poisoned_shard(
    matrix, queries, poisoned
):
    router, victims = poisoned
    batch = np.stack(queries)
    for query, (hits, stats) in zip(batch, search_many(router, batch, k=K)):
        assert [(h.distance, h.seq_id) for h in hits] == survivors_knn(
            matrix, victims, query, K
        )
        assert (
            stats.candidates_pruned
            + stats.full_retrievals
            + stats.quarantined
            == len(matrix)
        )


def test_range_search_skips_the_poisoned_shard(matrix, queries, poisoned):
    router, victims = poisoned
    query = queries[0]
    truth_sq = sorted(
        (euclidean_early_abandon_sq(query, row, math.inf), seq_id)
        for seq_id, row in enumerate(matrix)
        if seq_id not in victims
    )
    radius = math.sqrt(truth_sq[len(matrix) // 3][0])
    hits, stats = router.range_search(query, radius=radius)
    got = [(h.distance, h.seq_id) for h in hits]
    # Compare in squared space, as the engine does: sqrt-then-square
    # rounding can drop the exact boundary member on both sides alike.
    assert got == [
        (math.sqrt(d_sq), seq_id)
        for d_sq, seq_id in truth_sq
        if d_sq <= radius * radius
    ]
    assert set(stats.quarantined_ids) <= victims


def test_generator_failure_degrades_that_shard_only(matrix, queries):
    """A shard whose *generator* dies is served by its local fallback."""

    class ExplodingGenerators:
        """Index whose candidate generators always fail."""

        def __init__(self, inner):
            self._inner = inner
            self.obs_name = inner.obs_name

        def __len__(self):
            return len(self._inner)

        @property
        def sequence_length(self):
            return self._inner.sequence_length

        def knn_candidates(self, query, k, stats):
            raise OSError("shard offline")

        def range_candidates(self, query, radius, stats):
            raise OSError("shard offline")

        def fetch(self, seq_id):
            return self._inner.fetch(seq_id)

        def result_name(self, seq_id):
            return self._inner.result_name(seq_id)

    # In-process generators only: the injection below patches the local
    # shard objects, which a pooled router (REPRO_SHARD_WORKERS) never
    # consults.  The pooled death drills live in test_pool.py.
    router = build_sharded(
        matrix, shards=3, backend="flat", seed=0, worker_pool=False
    )
    router._shards[2] = ExplodingGenerators(router._shards[2])
    mono = get_index("flat", matrix)
    for query in queries:
        expected, _ = mono.search(query, k=K)
        hits, stats = router.search(query, k=K)
        # The fallback scan still verifies the shard exhaustively, so
        # answers stay *identical* to the monolithic index.
        assert [(h.distance, h.seq_id) for h in hits] == [
            (h.distance, h.seq_id) for h in expected
        ]
        assert stats.degraded
        assert (
            stats.candidates_pruned
            + stats.full_retrievals
            + stats.quarantined
            == len(matrix)
        )


def test_router_composes_with_faulty_index_wrapper(matrix, queries):
    """The PR-3 fault harness wraps the router like any other index."""
    victim = 17
    broken = FaultyIndex(
        build_sharded(matrix, shards=3, backend="flat", seed=0),
        FaultPlan(),
        [victim],
    )
    probe = matrix[victim]
    hits, stats = broken.search(probe, k=2)
    assert victim not in {h.seq_id for h in hits}
    assert stats.degraded
    assert victim in quarantine_of(broken)
