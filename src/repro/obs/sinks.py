"""Pluggable destinations for a registry's metrics and span events.

A sink is anything with ``write(record: dict)`` and ``close()``; the
convenience entry point is :func:`export`, which replays every metric and
buffered span event of a registry into a sink:

* :class:`MemorySink` — keeps records in a list (tests, ad-hoc queries);
* :class:`JsonLinesSink` — one JSON object per line, the machine-readable
  run artifact (BENCH JSONs can be derived from it);
* :class:`TableSink` — human-readable tables on a text stream.

>>> from repro.obs.metrics import observed, add
>>> with observed() as registry:
...     add("bounds.kernel_calls", 4)
>>> sink = MemorySink()
>>> export(registry, sink)
>>> sink.records[0]
{'type': 'counter', 'name': 'bounds.kernel_calls', 'value': 4}
"""

from __future__ import annotations

import io
import json
import os
import sys

from repro.obs.metrics import MetricsRegistry

__all__ = ["MemorySink", "JsonLinesSink", "TableSink", "export"]


class MemorySink:
    """Collects records in :attr:`records`, in arrival order."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        """No-op; the records stay available."""


class JsonLinesSink:
    """Writes one compact JSON object per record.

    Parameters
    ----------
    target:
        A path (opened for writing, creating parent directories) or an
        open text stream.  Streams passed in are flushed but not closed.
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._stream = target
            self._owns_stream = False
        else:
            path = os.fspath(target)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._stream = open(path, "w", encoding="utf-8")
            self._owns_stream = True

    def write(self, record: dict) -> None:
        json.dump(record, self._stream, separators=(",", ":"), sort_keys=True)
        self._stream.write("\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TableSink:
    """Buffers records and renders them as aligned text tables on close."""

    def __init__(self, out=None) -> None:
        self._out = out if out is not None else sys.stdout
        self._records: list[dict] = []

    def write(self, record: dict) -> None:
        self._records.append(record)

    def render(self) -> str:
        """The formatted tables, without writing them anywhere."""
        buffer = io.StringIO()
        self._render_section(
            buffer,
            "counters",
            ("name", "value"),
            [
                (r["name"], r["value"])
                for r in self._records
                if r["type"] == "counter"
            ],
        )
        self._render_section(
            buffer,
            "gauges",
            ("name", "value"),
            [
                (r["name"], r["value"])
                for r in self._records
                if r["type"] == "gauge"
            ],
        )
        self._render_section(
            buffer,
            "histograms",
            ("name", "count", "mean", "p50", "p95", "max"),
            [
                (
                    r["name"],
                    r["count"],
                    f"{r['mean']:.6g}",
                    f"{r['p50']:.6g}",
                    f"{r['p95']:.6g}",
                    f"{r['max']:.6g}",
                )
                for r in self._records
                if r["type"] == "histogram"
            ],
        )
        return buffer.getvalue()

    @staticmethod
    def _render_section(buffer, title, headers, rows) -> None:
        if not rows:
            return
        table = [tuple(str(cell) for cell in row) for row in rows]
        widths = [
            max(len(header), *(len(row[i]) for row in table))
            for i, header in enumerate(headers)
        ]
        print(f"-- {title} --", file=buffer)
        print(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            file=buffer,
        )
        for row in table:
            print(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths)),
                file=buffer,
            )

    def close(self) -> None:
        self._out.write(self.render())


def export(registry: MetricsRegistry, sink) -> None:
    """Replay every metric and span event of ``registry`` into ``sink``."""
    for record in registry.records():
        sink.write(record)
