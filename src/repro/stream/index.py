"""Live + sealed query union: one EngineIndex over both tiers.

A streaming store answers queries from two populations at once: the
sealed segments (immutable, checksummed, served through any of the six
registry backends or the sharded router) and the mutable live tier.
:class:`StreamIndex` glues them into a single
:class:`~repro.engine.core.EngineIndex`, so the shared verifier — and
therefore every statistic, every quarantine path and the
``pruned + retrievals + quarantined == db`` invariant — applies to the
union unchanged.

Soundness of the union: the inner backend's :math:`\\sigma_{UB}` filter
is computed over sealed members only, which can only make it *weaker*
(larger) than the true union filter — a weaker filter admits more
candidates, never misses one.  Live members bypass the filter entirely:
they are injected with a lower bound of ``0.0`` (trivially sound and
trivially sorted first), so each one is exactly verified rather than
pruned.  The live tier is small by construction — it is sealed into a
segment long before exact-verifying it would dominate — so the engine's
accounting stays honest: injected live candidates count as *generated*
and are then retrieved or abandoned like any other candidate.

Identifier layout: sealed rows keep their inner ids ``0..S-1``
unchanged (identity translation — the inner index *is* the sealed
population), live rows follow as ``S..S+L-1`` in insertion order.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.engine.core import CandidateSet, execute_knn, execute_range
from repro.engine.registry import get_index

__all__ = ["StreamIndex"]


class _UnionStore:
    """Batched-read adapter so the blocked verifier covers both tiers."""

    def __init__(self, index: "StreamIndex") -> None:
        self._index = index

    def read_many(self, seq_ids) -> np.ndarray:
        return self._index._read_many(seq_ids)


class StreamIndex:
    """One engine-protocol index over sealed segments plus the live tier.

    Parameters
    ----------
    backend:
        Registry name for the sealed tier ("flat", "vptree", "mvptree",
        "mtree", "rtree", "scan" or "sharded").
    sealed_matrix / sealed_names:
        The visible sealed rows (z-scored) and their names.
    live_matrix / live_names:
        The live tier's z-scored snapshot and its names.
    kwargs:
        Forwarded to the registry builder (compressor, shards, …).
    """

    def __init__(
        self,
        backend: str,
        sealed_matrix: np.ndarray,
        sealed_names: tuple[str, ...],
        live_matrix: np.ndarray,
        live_names: tuple[str, ...],
        **kwargs,
    ) -> None:
        self.backend = backend
        self._sealed_count = int(sealed_matrix.shape[0])
        self._live = np.ascontiguousarray(live_matrix, dtype=np.float64)
        self._names = tuple(sealed_names) + tuple(live_names)
        # Both snapshots are (rows, n) with the same window length n,
        # even when empty — the store builds them that way.
        self._length = int(sealed_matrix.shape[1] or live_matrix.shape[1])
        self._inner = (
            get_index(backend, sealed_matrix, names=list(sealed_names), **kwargs)
            if self._sealed_count
            else None
        )
        self.store = _UnionStore(self)

    # ------------------------------------------------------------------
    # EngineIndex protocol
    # ------------------------------------------------------------------
    @property
    def obs_name(self) -> str:
        """Prefix for engine spans and counters."""
        return "index.stream"

    @property
    def sequence_length(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._sealed_count + self._live.shape[0]

    def result_name(self, seq_id: int) -> str | None:
        return self._names[seq_id]

    def fetch(self, seq_id: int) -> np.ndarray:
        seq_id = int(seq_id)
        if seq_id < self._sealed_count:
            return self._inner.fetch(seq_id)
        return self._live[seq_id - self._sealed_count]

    def _read_many(self, seq_ids) -> np.ndarray:
        from repro.engine.core import fetch_block

        ids = [int(seq_id) for seq_id in seq_ids]
        out = np.empty((len(ids), self._length), dtype=np.float64)
        sealed_rows = [
            (row, seq_id) for row, seq_id in enumerate(ids)
            if seq_id < self._sealed_count
        ]
        if sealed_rows:
            block = fetch_block(self._inner, [s for _, s in sealed_rows])
            for (row, _), values in zip(sealed_rows, block):
                out[row] = values
        for row, seq_id in enumerate(ids):
            if seq_id >= self._sealed_count:
                out[row] = self._live[seq_id - self._sealed_count]
        return out

    def _live_entries(self) -> list[tuple[float, int]]:
        base = self._sealed_count
        return [(0.0, base + i) for i in range(self._live.shape[0])]

    def knn_candidates(self, query, k, stats) -> CandidateSet:
        live = self._live_entries()
        if self._inner is None:
            return CandidateSet(
                entries=live, generated=len(live), sigma_sq=math.inf
            )
        inner = self._inner.knn_candidates(query, k, stats)
        return self._union(inner, live)

    def range_candidates(self, query, radius, stats) -> CandidateSet:
        # Every live member's lower bound of 0 is <= any radius, so the
        # whole live tier survives the range filter — by construction.
        live = self._live_entries()
        if self._inner is None:
            return CandidateSet(
                entries=live, generated=len(live), sigma_sq=math.inf
            )
        inner = self._inner.range_candidates(query, radius, stats)
        return self._union(inner, live)

    def _union(
        self, inner: CandidateSet, live: list[tuple[float, int]]
    ) -> CandidateSet:
        """Prepend the live tier to an inner (sealed-only) candidate set.

        Sealed ids pass through untouched (identity translation).  Live
        entries sort first (lower bound 0.0), so an entry list stays
        ascending and a chained stream stays non-decreasing — the order
        contract both refinement paths rely on.
        """
        if inner.stream is not None:
            return CandidateSet(
                entries=[],
                generated=None,
                sigma_sq=inner.sigma_sq,
                paid=inner.paid,
                stream=itertools.chain(iter(live), inner.stream),
                top_ubs=inner.top_ubs,
            )
        return CandidateSet(
            entries=live + inner.entries,
            generated=(inner.generated or 0) + len(live),
            sigma_sq=inner.sigma_sq,
            paid=inner.paid,
            top_ubs=inner.top_ubs,
        )

    # ------------------------------------------------------------------
    # Convenience entry points (same engine as every other index)
    # ------------------------------------------------------------------
    def search(
        self, query, k: int = 1, policy=None
    ):
        """k-NN over the union through the shared engine."""
        return execute_knn(self, query, k, policy)

    def range_search(self, query, radius: float, policy=None):
        """Range search over the union through the shared engine."""
        return execute_range(self, query, radius, policy)

    def close(self) -> None:
        """Release the inner backend (routers hold files/processes)."""
        closer = getattr(self._inner, "close", None)
        if closer is not None:
            closer()
