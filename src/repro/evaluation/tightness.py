"""The bound-tightness experiment (figs. 20 and 21).

Protocol from section 7.2: draw random pairs from the (standardised)
database, compute every method's lower and upper bound at equal storage,
and report the *cumulative* bound over all pairs next to the cumulative
true Euclidean distance.  BestMinError should deliver the tightest bounds,
with a mid-single-digit-% LB improvement and a low-double-digit-% UB
improvement over the best first-coefficient method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bounds.registry import bounds_for
from repro.compression.budget import StorageBudget
from repro.evaluation.reporting import format_table
from repro.spectral.dft import Spectrum

__all__ = ["TightnessResult", "bound_tightness_experiment"]

#: The paper's reporting order for figs. 20/21.
DEFAULT_METHODS = ("gemini", "wang", "best_error", "best_min", "best_min_error")


@dataclass(frozen=True)
class TightnessResult:
    """Cumulative bounds for one storage budget."""

    budget: StorageBudget
    pairs: int
    true_distance: float
    lower: Mapping[str, float]
    upper: Mapping[str, float]

    def lb_improvement(self, method: str = "best_min_error") -> float:
        """Percent LB improvement of ``method`` over the best *other* method."""
        others = [v for name, v in self.lower.items() if name != method]
        best_other = max(others)
        return 100.0 * (self.lower[method] - best_other) / best_other

    def ub_improvement(self, method: str = "best_min_error") -> float:
        """Percent UB improvement (reduction) over the best other method."""
        others = [
            v
            for name, v in self.upper.items()
            if name != method and np.isfinite(v)
        ]
        best_other = min(others)
        return 100.0 * (best_other - self.upper[method]) / best_other

    def as_table(self) -> str:
        rows = [
            (
                method,
                self.lower[method],
                self.upper.get(method, float("inf")),
            )
            for method in self.lower
        ]
        rows.insert(0, ("full euclidean", self.true_distance, self.true_distance))
        return format_table(
            ("method", "cumulative LB", "cumulative UB"),
            rows,
            title=f"Memory = {self.budget.label()}",
        )


def bound_tightness_experiment(
    matrix: np.ndarray,
    budgets: Sequence[StorageBudget],
    pairs: int = 100,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed: int = 0,
) -> list[TightnessResult]:
    """Run the fig. 20/21 protocol over ``pairs`` random pairs.

    ``matrix`` rows must already be standardised.  Each pair (q, t) draws
    two distinct rows; q plays the *full query*, t is compressed by every
    method under every budget.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or len(matrix) < 2:
        raise ValueError("need a 2-D matrix with at least two rows")
    rng = np.random.default_rng(seed)
    pair_ids = [
        tuple(rng.choice(len(matrix), size=2, replace=False))
        for _ in range(pairs)
    ]
    spectra = {}

    def spectrum_of(row: int) -> Spectrum:
        if row not in spectra:
            spectra[row] = Spectrum.from_series(matrix[row])
        return spectra[row]

    results = []
    for budget in budgets:
        compressors = {m: budget.compressor(m) for m in methods}
        lower = {m: 0.0 for m in methods}
        upper = {m: 0.0 for m in methods}
        has_upper = {m: True for m in methods}
        true_total = 0.0
        for q_row, t_row in pair_ids:
            query = spectrum_of(q_row)
            target = spectrum_of(t_row)
            true_total += float(np.linalg.norm(matrix[q_row] - matrix[t_row]))
            for method, compressor in compressors.items():
                pair = bounds_for(query, compressor.compress(target))
                lower[method] += pair.lower
                if np.isfinite(pair.upper):
                    upper[method] += pair.upper
                else:
                    has_upper[method] = False
        results.append(
            TightnessResult(
                budget=budget,
                pairs=pairs,
                true_distance=true_total,
                lower=lower,
                upper={
                    m: (upper[m] if has_upper[m] else float("inf"))
                    for m in methods
                },
            )
        )
    return results
