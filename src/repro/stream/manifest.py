"""Generational manifests: the stream store's source of truth.

A stream directory holds immutable segment files, one live WAL and a
series of manifest files ``MANIFEST-000001.json``, ``MANIFEST-000002
.json``, … — one per *generation*.  Each manifest is a complete,
self-checksummed description of one consistent snapshot: which segments
exist (file, row count, row names), which WAL feeds the live tier,
which sealed names are tombstoned, and which files the generation's
compaction retired.  Readers adopt exactly one manifest and therefore
always see a complete snapshot; writers never modify a manifest in
place — they commit the next generation via write-to-temp + ``fsync`` +
atomic rename, so a manifest either exists whole or not at all.

Generation numbers are monotonic; adoption is "newest valid wins": a
manifest that fails its CRC (or disagrees with its own filename) is
renamed aside to ``*.quarantined`` (``stream.manifests_quarantined``)
and the scan falls back to the previous generation — torn or hand-
edited metadata costs at most the last batch, never the store.

Crash seams: ``manifest.tmp.write`` (before the temp file is written)
and ``manifest.rename`` (after the temp file is durable, before the
atomic rename publishes it).  A kill at either seam leaves the previous
generation intact and at most a ``*.tmp`` orphan behind, which the next
open garbage-collects.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import asdict, dataclass

from repro import obs
from repro.exceptions import CorruptionError
from repro.resilience.faults import crashpoint
from repro.storage.pagestore import fsync_enabled_from_env

__all__ = ["ManifestLog", "SegmentInfo", "StreamManifest"]

_FORMAT = "repro-stream-manifest"
_VERSION = 1
_NAME_RE = re.compile(r"^MANIFEST-(\d{6,})\.json$")


def manifest_filename(generation: int) -> str:
    """The canonical file name of generation ``generation``."""
    return f"MANIFEST-{generation:06d}.json"


def wal_filename(generation: int) -> str:
    """The canonical WAL file name created alongside ``generation``."""
    return f"wal-{generation:06d}.log"


def segment_filename(ordinal: int) -> str:
    """The canonical segment file name for segment counter ``ordinal``."""
    return f"segment-{ordinal:06d}.pages"


def _checksum(payload: dict) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class SegmentInfo:
    """One immutable sealed segment as the manifest records it."""

    file: str  #: page-store file name within the stream directory
    count: int  #: number of rows the segment must hold
    names: tuple[str, ...]  #: row names, in storage order

    def __post_init__(self) -> None:
        if len(self.names) != self.count:
            raise CorruptionError(
                f"segment {self.file!r} lists {len(self.names)} names "
                f"for {self.count} rows"
            )


@dataclass(frozen=True)
class StreamManifest:
    """One generation's complete snapshot description."""

    generation: int  #: monotonic, 1-based
    sequence_length: int  #: window length shared by every series
    wal: str  #: live-tier WAL file name for this generation
    next_segment: int  #: monotonic counter naming the next segment file
    segments: tuple[SegmentInfo, ...]
    tombstones: tuple[str, ...]  #: sealed names hidden from every reader
    retired: tuple[str, ...]  #: files this generation's commit retired

    def __post_init__(self) -> None:
        if self.generation < 1:
            raise CorruptionError(
                f"manifest generation must be >= 1, got {self.generation}"
            )
        if self.sequence_length < 1:
            raise CorruptionError(
                f"manifest sequence_length must be >= 1, "
                f"got {self.sequence_length}"
            )

    def payload(self) -> dict:
        """The checksummed body (everything but format/version/crc)."""
        body = asdict(self)
        body["segments"] = [
            {"file": s.file, "count": s.count, "names": list(s.names)}
            for s in self.segments
        ]
        body["tombstones"] = list(self.tombstones)
        body["retired"] = list(self.retired)
        return body

    def referenced_files(self) -> frozenset[str]:
        """File names this snapshot depends on (WAL + segments)."""
        return frozenset({self.wal, *(s.file for s in self.segments)})


class ManifestLog:
    """The directory-level commit/adopt protocol for stream manifests.

    Parameters
    ----------
    directory:
        The stream directory the manifests live in.
    fsync:
        Force commits through ``fsync(2)`` (temp file *and* directory
        entry).  ``None`` consults ``REPRO_FSYNC`` with a default of
        **on**: a manifest that evaporates with the page cache would
        silently roll the store back a generation.
    """

    def __init__(self, directory, *, fsync: bool | None = None) -> None:
        self.directory = os.fspath(directory)
        self._fsync = (
            fsync_enabled_from_env(default=True) if fsync is None else bool(fsync)
        )

    # ------------------------------------------------------------------
    # Commit side
    # ------------------------------------------------------------------
    def commit(self, manifest: StreamManifest) -> str:
        """Atomically publish ``manifest``; returns its path.

        Refuses to move backwards: committing a generation that already
        exists (or is older than an existing one) is a logic error that
        would break "newest valid wins" adoption.
        """
        name = manifest_filename(manifest.generation)
        path = os.path.join(self.directory, name)
        if os.path.exists(path):
            raise CorruptionError(
                f"refusing to overwrite existing manifest {path!r}"
            )
        payload = manifest.payload()
        document = {
            "format": _FORMAT,
            "version": _VERSION,
            "crc32": _checksum(payload),
            **payload,
        }
        tmp_path = path + ".tmp"
        crashpoint("manifest.tmp.write")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        crashpoint("manifest.rename")
        os.replace(tmp_path, path)
        if self._fsync:
            self._sync_directory()
        obs.add("stream.manifest_commits")
        return path

    def _sync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Adopt side
    # ------------------------------------------------------------------
    def candidates(self) -> list[tuple[int, str]]:
        """``(generation, path)`` of every manifest file, newest first."""
        found: list[tuple[int, str]] = []
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for entry in entries:
            match = _NAME_RE.match(entry)
            if match:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, entry))
                )
        found.sort(reverse=True)
        return found

    def load(self, path: str) -> StreamManifest:
        """Read and verify one manifest file.

        Raises :class:`~repro.exceptions.CorruptionError` for a missing
        or unparseable file, a foreign format, a CRC mismatch, or a
        generation that disagrees with the filename it sits under.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise CorruptionError(f"no stream manifest at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptionError(
                f"unreadable stream manifest at {path}: {exc}"
            ) from exc
        if document.get("format") != _FORMAT:
            raise CorruptionError(
                f"{path} is not a stream manifest "
                f"(format={document.get('format')!r})"
            )
        if document.get("version") != _VERSION:
            raise CorruptionError(
                f"unsupported stream manifest version "
                f"{document.get('version')!r} in {path}"
            )
        recorded = document.get("crc32")
        try:
            manifest = StreamManifest(
                generation=int(document["generation"]),
                sequence_length=int(document["sequence_length"]),
                wal=document["wal"],
                next_segment=int(document["next_segment"]),
                segments=tuple(
                    SegmentInfo(
                        file=s["file"],
                        count=int(s["count"]),
                        names=tuple(s["names"]),
                    )
                    for s in document["segments"]
                ),
                tombstones=tuple(document["tombstones"]),
                retired=tuple(document["retired"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptionError(
                f"malformed stream manifest at {path}: {exc}"
            ) from exc
        actual = _checksum(manifest.payload())
        if recorded != actual:
            raise CorruptionError(
                f"stream manifest checksum mismatch at {path}: "
                f"recorded {recorded}, computed {actual}"
            )
        expected_name = manifest_filename(manifest.generation)
        if os.path.basename(path) != expected_name:
            raise CorruptionError(
                f"manifest at {path} claims generation "
                f"{manifest.generation} (expected file {expected_name})"
            )
        return manifest

    def quarantine(self, path: str) -> str:
        """Move a failed manifest aside; returns its new path."""
        target = path + ".quarantined"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{path}.quarantined.{suffix}"
        os.replace(path, target)
        obs.add("stream.manifests_quarantined")
        return target
