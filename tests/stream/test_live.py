"""Tests for the mutable live tier: rollovers and re-normalisation."""

import numpy as np
import pytest

from repro.exceptions import IngestionError, KeyNotFoundError, StorageError
from repro.stream import LiveTier
from repro.timeseries.preprocessing import zscore


@pytest.fixture
def tier():
    return LiveTier(8)


class TestMutators:
    def test_add_and_read_back(self, tier):
        values = np.arange(8, dtype=float)
        tier.add("a", values)
        np.testing.assert_array_equal(tier.raw("a"), values)
        assert "a" in tier and len(tier) == 1

    def test_add_copies_its_input(self, tier):
        values = np.ones(8)
        tier.add("a", values)
        values[0] = 99.0
        assert tier.raw("a")[0] == 1.0

    def test_add_rejects_wrong_geometry(self, tier):
        with pytest.raises(IngestionError):
            tier.add("a", np.ones(5))
        with pytest.raises(IngestionError):
            tier.add("a", np.ones((2, 8)))

    def test_add_rejects_duplicate(self, tier):
        tier.add("a", np.ones(8))
        with pytest.raises(IngestionError):
            tier.add("a", np.ones(8))

    def test_record_accumulates(self, tier):
        tier.add("a", np.zeros(8))
        tier.record("a", 7, 3.0)
        tier.record("a", 7, 2.0)
        assert tier.raw("a")[7] == 5.0

    def test_record_on_unknown_name_starts_zero_window(self, tier):
        tier.record("fresh", 2, 4.0)
        expected = np.zeros(8)
        expected[2] = 4.0
        np.testing.assert_array_equal(tier.raw("fresh"), expected)

    def test_record_bounds_checked(self, tier):
        with pytest.raises(IngestionError):
            tier.record("a", 8, 1.0)
        with pytest.raises(IngestionError):
            tier.record("a", -1, 1.0)

    def test_rollover_slides_and_reports_completed_days(self, tier):
        tier.add("a", np.arange(8, dtype=float))
        completed = tier.rollover()
        assert completed == [("a", 7.0)]
        np.testing.assert_array_equal(
            tier.raw("a"), [1, 2, 3, 4, 5, 6, 7, 0]
        )

    def test_delete_and_clear(self, tier):
        tier.add("a", np.ones(8))
        tier.delete("a")
        assert "a" not in tier
        with pytest.raises(KeyNotFoundError):
            tier.delete("a")
        tier.add("b", np.ones(8))
        tier.clear()
        assert len(tier) == 0

    def test_sequence_length_validated(self):
        with pytest.raises(StorageError):
            LiveTier(0)


class TestReadSide:
    def test_matrix_is_per_row_zscore_of_current_window(self, tier):
        rows = {
            "a": np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=float),
            "b": np.array([5, 0, 5, 0, 5, 0, 5, 0], dtype=float),
        }
        for name, values in rows.items():
            tier.add(name, values)
        tier.rollover()
        matrix = tier.matrix()
        for row, values in zip(matrix, rows.values()):
            shifted = np.concatenate([values[1:], [0.0]])
            np.testing.assert_array_equal(row, zscore(shifted))

    def test_constant_window_zscores_to_zeros(self, tier):
        tier.add("flat", np.full(8, 3.0))
        np.testing.assert_array_equal(tier.matrix()[0], np.zeros(8))

    def test_empty_tier_matrices_are_shaped(self, tier):
        assert tier.matrix().shape == (0, 8)
        assert tier.raw_matrix().shape == (0, 8)

    def test_missing_name_raises(self, tier):
        with pytest.raises(KeyNotFoundError):
            tier.raw("ghost")
