"""Weighted Euclidean matching — the measure query-by-burst approximates.

Section 6 introduces query-by-burst as "a fast alternative of weighted
Euclidean matching, where the focus is given on the bursty portion of a
sequence".  This module implements that reference measure so the claim
can be tested: build a weight vector emphasising the query's burst
region, rank the database by the weighted distance, and compare the
ranking with the burst-triplet ranking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bursts.compaction import Burst
from repro.exceptions import SeriesMismatchError
from repro.timeseries.preprocessing import as_float_array

__all__ = [
    "burst_weight_vector",
    "weighted_euclidean",
    "rank_by_weighted_euclidean",
]


def burst_weight_vector(
    bursts: Sequence[Burst],
    length: int,
    emphasis: float = 4.0,
    baseline: float = 1.0,
) -> np.ndarray:
    """Per-position weights focusing on the burst spans.

    Positions inside any burst get weight ``emphasis``; the rest get
    ``baseline`` (pass ``baseline=0`` to ignore the quiet part entirely).
    """
    if emphasis <= 0:
        raise ValueError(f"emphasis must be positive, got {emphasis}")
    if baseline < 0:
        raise ValueError(f"baseline must be non-negative, got {baseline}")
    weights = np.full(length, float(baseline))
    for burst in bursts:
        if burst.end >= length:
            raise SeriesMismatchError(
                f"burst [{burst.start}, {burst.end}] exceeds length {length}"
            )
        weights[burst.start : burst.end + 1] = emphasis
    return weights


def weighted_euclidean(x, y, weights) -> float:
    """``sqrt(sum(w_i * (x_i - y_i)^2))``."""
    x = as_float_array(x)
    y = as_float_array(y)
    weights = as_float_array(weights)
    if not x.size == y.size == weights.size:
        raise SeriesMismatchError(
            f"length mismatch: {x.size}, {y.size}, {weights.size}"
        )
    diff = x - y
    return float(np.sqrt(np.dot(weights, diff * diff)))


def rank_by_weighted_euclidean(
    query, matrix: np.ndarray, weights, top: int = 10
) -> list[tuple[int, float]]:
    """Rows of ``matrix`` nearest to ``query`` under the weighted distance.

    Returns ``(row, distance)`` pairs, nearest first.  One vectorised pass
    over the whole database — this is the "expensive" exhaustive measure
    the burst triplets replace.
    """
    query = as_float_array(query)
    matrix = np.asarray(matrix, dtype=np.float64)
    weights = as_float_array(weights)
    if (
        matrix.ndim != 2
        or matrix.shape[1] != query.size
        or weights.size != query.size
    ):
        raise SeriesMismatchError(
            f"matrix {matrix.shape} incompatible with query of length "
            f"{query.size} and weights of length {weights.size}"
        )
    diff = matrix - query
    distances = np.sqrt(np.einsum("ij,j,ij->i", diff, weights, diff))
    order = np.argsort(distances, kind="stable")[:top]
    return [(int(row), float(distances[row])) for row in order]
