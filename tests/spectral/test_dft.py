"""Tests for the normalised DFT and the weighted half-spectrum."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import SeriesMismatchError
from repro.spectral import Spectrum, dft, half_spectrum, half_weights, idft

signals = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=96),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestDft:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64)
        np.testing.assert_allclose(idft(dft(x)), x, atol=1e-10)

    @given(signals)
    def test_parseval_full_spectrum(self, x):
        coeffs = dft(x)
        np.testing.assert_allclose(
            np.sum(np.abs(coeffs) ** 2), np.sum(x**2), atol=1e-6, rtol=1e-9
        )

    def test_dc_coefficient_is_scaled_mean(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        coeffs = dft(x)
        assert coeffs[0] == pytest.approx(x.sum() / np.sqrt(4))

    def test_conjugate_symmetry(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=16)
        coeffs = dft(x)
        for k in range(1, 8):
            assert coeffs[16 - k] == pytest.approx(np.conj(coeffs[k]))


class TestHalfWeights:
    def test_even_length(self):
        w = half_weights(8)
        np.testing.assert_allclose(w, [1, 2, 2, 2, 1])

    def test_odd_length(self):
        w = half_weights(7)
        np.testing.assert_allclose(w, [1, 2, 2, 2])

    @given(st.integers(min_value=2, max_value=512))
    def test_weights_sum_to_n(self, n):
        assert half_weights(n).sum() == n


class TestSpectrum:
    @given(signals)
    def test_energy_matches_time_domain(self, x):
        spectrum = Spectrum.from_series(x)
        np.testing.assert_allclose(
            spectrum.energy(), np.sum(x**2), atol=1e-6, rtol=1e-9
        )

    @given(signals, st.randoms(use_true_random=False))
    def test_distance_matches_time_domain(self, x, rand):
        rng = np.random.default_rng(rand.randint(0, 2**31))
        y = rng.normal(size=x.size)
        a = Spectrum.from_series(x)
        b = Spectrum.from_series(y)
        np.testing.assert_allclose(
            a.distance(b), np.linalg.norm(x - y), atol=1e-6, rtol=1e-9
        )

    def test_half_spectrum_matches_full(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=32)
        np.testing.assert_allclose(half_spectrum(x), dft(x)[:17], atol=1e-10)

    def test_to_series_roundtrip(self):
        rng = np.random.default_rng(4)
        for n in (31, 32):
            x = rng.normal(size=n)
            spectrum = Spectrum.from_series(x)
            np.testing.assert_allclose(spectrum.to_series(), x, atol=1e-10)

    def test_to_series_requires_fourier_basis(self):
        spec = Spectrum(np.zeros(3), np.ones(3), 3, basis="haar")
        with pytest.raises(SeriesMismatchError):
            spec.to_series()

    def test_incompatible_distance_raises(self):
        a = Spectrum.from_series(np.zeros(8) + 1.0)
        b = Spectrum.from_series(np.zeros(10) + 1.0)
        with pytest.raises(SeriesMismatchError):
            a.distance(b)

    def test_shape_validation(self):
        with pytest.raises(SeriesMismatchError):
            Spectrum(np.zeros(3), np.ones(4), 6)

    def test_powers_use_weights(self):
        x = np.array([1.0, -1.0, 1.0, -1.0])  # pure Nyquist signal
        spectrum = Spectrum.from_series(x)
        powers = spectrum.powers
        assert powers[-1] == pytest.approx(4.0)  # all energy at Nyquist
        assert powers[:-1] == pytest.approx(np.zeros(2), abs=1e-12)


class TestMemoisedProperties:
    """magnitudes/powers are cached on the frozen dataclass: hot bound
    loops read them repeatedly and must not recompute np.abs each time."""

    def test_same_object_returned(self):
        spectrum = Spectrum.from_series(np.arange(8.0))
        assert spectrum.magnitudes is spectrum.magnitudes
        assert spectrum.powers is spectrum.powers

    def test_cached_arrays_are_read_only(self):
        spectrum = Spectrum.from_series(np.arange(8.0))
        with pytest.raises(ValueError):
            spectrum.magnitudes[0] = 1.0
        with pytest.raises(ValueError):
            spectrum.powers[0] = 1.0

    def test_values_unchanged(self):
        spectrum = Spectrum.from_series(np.arange(8.0))
        np.testing.assert_array_equal(
            spectrum.magnitudes, np.abs(spectrum.coefficients)
        )
        np.testing.assert_array_equal(
            spectrum.powers,
            spectrum.weights * np.abs(spectrum.coefficients) ** 2,
        )
