"""Tests for the M-tree baseline index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SeriesMismatchError
from repro.index import distances_to_query
from repro.index.mtree import MTreeIndex
from repro.timeseries import zscore


def make_db(count=100, n=48, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    rows = [
        zscore(
            np.sin(2 * np.pi * t / [6, 8, 12, 16][i % 4] + rng.uniform(0, 6))
            + 0.4 * rng.normal(size=n)
        )
        for i in range(count)
    ]
    return np.array(rows)


@pytest.fixture(scope="module")
def matrix():
    return make_db()


@pytest.fixture(scope="module")
def index(matrix):
    return MTreeIndex(matrix, capacity=8)


class TestStructure:
    def test_invariants(self, index):
        index.check_invariants()

    def test_invariants_various_capacities(self, matrix):
        for capacity in (4, 5, 16, 64):
            MTreeIndex(matrix, capacity=capacity).check_invariants()

    def test_capacity_validation(self, matrix):
        with pytest.raises(ValueError):
            MTreeIndex(matrix, capacity=3)

    def test_matrix_validation(self):
        with pytest.raises(SeriesMismatchError):
            MTreeIndex(np.zeros(5))
        with pytest.raises(SeriesMismatchError):
            MTreeIndex(np.zeros((3, 4)), names=["x"])


class TestSearch:
    def test_1nn_matches_brute_force(self, matrix, index):
        rng = np.random.default_rng(3)
        for _ in range(10):
            query = zscore(rng.normal(size=48))
            hits, _ = index.search(query, k=1)
            truth = float(distances_to_query(matrix, query).min())
            assert hits[0].distance == pytest.approx(truth, abs=1e-9)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_knn_matches_brute_force(self, matrix, index, k):
        rng = np.random.default_rng(4)
        query = zscore(rng.normal(size=48))
        hits, _ = index.search(query, k=k)
        truth = np.sort(distances_to_query(matrix, query))[:k]
        np.testing.assert_allclose([h.distance for h in hits], truth, atol=1e-9)

    def test_query_in_database(self, matrix, index):
        hits, _ = index.search(matrix[31], k=1)
        assert hits[0].seq_id == 31
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_property_exactness(self, seed):
        matrix = make_db(count=40, n=24, seed=seed)
        index = MTreeIndex(matrix, capacity=5)
        rng = np.random.default_rng(seed + 1)
        query = zscore(rng.normal(size=24))
        hits, _ = index.search(query, k=3)
        truth = np.sort(distances_to_query(matrix, query))[:3]
        np.testing.assert_allclose([h.distance for h in hits], truth, atol=1e-9)

    def test_prunes_some_distances(self, matrix, index):
        """On clusterable data the search must beat the trivial scan."""
        totals = []
        for row in matrix[:10]:
            _, stats = index.search(row, k=1)
            totals.append(stats.full_retrievals)
        assert np.mean(totals) < len(matrix)

    def test_filters_fire(self, matrix, index):
        """The triangle-inequality filters must prune real work."""
        evaluated = pruned = 0
        for row in matrix[:10]:
            _, stats = index.search(row, k=1)
            evaluated += stats.bound_computations
            pruned += stats.candidates_pruned + stats.subtrees_pruned
        assert evaluated > 0
        assert pruned > 0

    def test_names(self, matrix):
        names = [f"q{i}" for i in range(len(matrix))]
        index = MTreeIndex(matrix, capacity=8, names=names)
        hits, _ = index.search(matrix[5], k=1)
        assert hits[0].name == "q5"

    def test_query_validation(self, index, matrix):
        with pytest.raises(SeriesMismatchError):
            index.search(np.zeros(5), k=1)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=0)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=len(matrix) + 1)
