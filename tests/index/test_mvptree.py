"""Tests for the multi-vantage-point tree extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import BestMinErrorCompressor, WangCompressor
from repro.exceptions import SeriesMismatchError
from repro.index import distances_to_query
from repro.index.mvptree import MVPTreeIndex
from repro.timeseries import zscore


def make_db(count=120, n=64, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    rows = []
    for i in range(count):
        kind = i % 4
        if kind == 0:
            row = rng.normal(size=n)
        elif kind == 1:
            row = np.cumsum(rng.normal(size=n))
        else:
            period = [7, 30][kind - 2]
            row = np.sin(2 * np.pi * t / period + rng.uniform(0, 6)) + (
                0.4 * rng.normal(size=n)
            )
        rows.append(zscore(row))
    return np.array(rows)


@pytest.fixture(scope="module")
def matrix():
    return make_db()


@pytest.fixture(scope="module")
def index(matrix):
    return MVPTreeIndex(matrix, leaf_size=6, seed=1)


class TestExactness:
    def test_1nn_matches_brute_force(self, matrix, index):
        rng = np.random.default_rng(5)
        for _ in range(10):
            query = zscore(rng.normal(size=64))
            hits, _ = index.search(query, k=1)
            truth = float(distances_to_query(matrix, query).min())
            assert hits[0].distance == pytest.approx(truth, abs=1e-9)

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_knn_matches_brute_force(self, matrix, index, k):
        rng = np.random.default_rng(6)
        query = zscore(np.cumsum(rng.normal(size=64)))
        hits, _ = index.search(query, k=k)
        truth = np.sort(distances_to_query(matrix, query))[:k]
        np.testing.assert_allclose(
            [h.distance for h in hits], truth, atol=1e-9
        )

    def test_query_in_database(self, matrix, index):
        hits, _ = index.search(matrix[23], k=1)
        assert hits[0].seq_id == 23
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_property_exact(self, seed):
        matrix = make_db(count=50, n=32, seed=seed)
        index = MVPTreeIndex(matrix, leaf_size=3, seed=seed)
        rng = np.random.default_rng(seed + 1)
        query = zscore(rng.normal(size=32))
        hits, _ = index.search(query, k=2)
        truth = np.sort(distances_to_query(matrix, query))[:2]
        np.testing.assert_allclose(
            [h.distance for h in hits], truth, atol=1e-9
        )

    def test_every_object_reachable(self, matrix, index):
        """A huge radius-equivalent search (k = count) returns everyone."""
        hits, _ = index.search(matrix[0], k=len(matrix))
        assert sorted(h.seq_id for h in hits) == list(range(len(matrix)))


class TestBehaviour:
    def test_prunes(self, matrix, index):
        totals = []
        for row in matrix[:10]:
            _, stats = index.search(row, k=1)
            totals.append(stats.full_retrievals)
        assert np.mean(totals) < len(matrix) * 0.6

    def test_works_with_wang_sketches(self, matrix):
        index = MVPTreeIndex(
            matrix, compressor=WangCompressor(8), bound_method=None, seed=2
        )
        rng = np.random.default_rng(7)
        query = zscore(rng.normal(size=64))
        hits, _ = index.search(query, k=1)
        truth = float(distances_to_query(matrix, query).min())
        assert hits[0].distance == pytest.approx(truth, abs=1e-9)

    def test_names(self, matrix):
        names = [f"q{i}" for i in range(len(matrix))]
        index = MVPTreeIndex(matrix, names=names, seed=3)
        hits, _ = index.search(matrix[4], k=1)
        assert hits[0].name == "q4"

    def test_validation(self, matrix, index):
        with pytest.raises(SeriesMismatchError):
            MVPTreeIndex(np.zeros(8))
        with pytest.raises(SeriesMismatchError):
            MVPTreeIndex(matrix, names=["x"])
        with pytest.raises(ValueError):
            MVPTreeIndex(matrix, leaf_size=0)
        with pytest.raises(SeriesMismatchError):
            index.search(np.zeros(10), k=1)
        with pytest.raises(ValueError):
            index.search(matrix[0], k=0)

    def test_small_database(self):
        matrix = make_db(count=5, n=16, seed=9)
        index = MVPTreeIndex(
            matrix, compressor=BestMinErrorCompressor(4), leaf_size=2, seed=4
        )
        hits, _ = index.search(matrix[2], k=1)
        assert hits[0].seq_id == 2
