"""Figures 14 and 15: burst detection for 'halloween' and 'easter'.

Fig. 14: a 30-day moving average flags the October/November burst of
'halloween' during 2002.  Fig. 15: the same detector on 2000-2002 finds
one spring burst per year for 'easter', tracking the moving feast.
"""

import datetime as dt

from repro.bursts import BurstDetector, compact_bursts
from repro.datagen import easter_date
from repro.evaluation import format_table
from repro.tools import burst_chart


def test_fig14_halloween_2002(catalog_2002, report, benchmark):
    halloween = catalog_2002["halloween"]
    standardized = halloween.standardize()
    detector = BurstDetector.long_term()
    annotation = detector.detect(standardized)
    bursts = compact_bursts(standardized, annotation)

    report(
        burst_chart(halloween, annotation.mask),
        format_table(
            ("burst start", "burst end", "avg value"),
            [
                (
                    b.start_date(halloween.start).isoformat(),
                    b.end_date(halloween.start).isoformat(),
                    b.average,
                )
                for b in bursts
            ],
            title="fig 14: 'halloween' bursts (30-day MA, 1.5 sigma)",
        ),
    )
    assert len(bursts) == 1
    burst = bursts[0]
    start, end = burst.start_date(halloween.start), burst.end_date(halloween.start)
    # "the burst discovered is indeed during the October and November months"
    assert start >= dt.date(2002, 10, 1)
    assert end <= dt.date(2002, 11, 30)
    assert start <= dt.date(2002, 10, 31) <= end or start <= dt.date(2002, 11, 7)

    benchmark(detector.detect, standardized)


def test_fig15_easter_2000_2002(catalog_2000_2002, report, benchmark):
    easter = catalog_2000_2002["easter"]
    standardized = easter.standardize()
    detector = BurstDetector.long_term()
    annotation = detector.detect(standardized)
    bursts = compact_bursts(standardized, annotation)

    rows = []
    for burst in bursts:
        end = burst.end_date(easter.start)
        rows.append(
            (
                burst.start_date(easter.start).isoformat(),
                end.isoformat(),
                easter_date(end.year).isoformat(),
            )
        )
    report(
        burst_chart(easter, annotation.mask),
        format_table(
            ("burst start", "burst end", "actual Easter"),
            rows,
            title="fig 15: 'easter' bursts across 2000-2002",
        ),
    )
    # One burst per spring, each starting before the feast; the trailing
    # moving average lets the flagged span lag up to a window past it.
    assert len(bursts) == 3
    for burst in bursts:
        end = burst.end_date(easter.start)
        feast = easter_date(end.year)
        assert burst.start_date(easter.start) < feast
        assert -7 <= (end - feast).days <= detector.window

    benchmark(detector.detect, standardized)
