#!/usr/bin/env python
"""Launch the S2 similarity tool (section 7.5) over synthetic query logs.

Interactive:      python examples/s2_explorer.py
Scripted tour:    python examples/s2_explorer.py --demo
Bigger database:  python examples/s2_explorer.py --synthetic 500

Inside the shell try:

    list                     all loaded queries
    show cinema              demand curve
    periods full moon        significant periods
    search cinema 5          similar queries via the VP-tree
    bursts halloween         long-term bursts
    burstsearch christmas    query-by-burst
    preview cinema 5         best-coefficient reconstruction
"""

import sys

from repro.tools.s2 import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
