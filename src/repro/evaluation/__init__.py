"""Experiment harness implementing the paper's section 7 protocols."""

from repro.evaluation.approx import (
    ApproxQualityResult,
    ApproxQualityRow,
    approx_quality_experiment,
)
from repro.evaluation.pruning import (
    PruningResult,
    fraction_examined,
    pruning_power_experiment,
)
from repro.evaluation.ingest import IngestResult, IngestRow, ingest_experiment
from repro.evaluation.reporting import format_float, format_table
from repro.evaluation.sharding import (
    ShardScalingResult,
    ShardScalingRow,
    shard_scaling_experiment,
)
from repro.evaluation.streaming import StreamResult, stream_experiment
from repro.evaluation.tightness import TightnessResult, bound_tightness_experiment
from repro.evaluation.timing import (
    TimingResult,
    TimingRow,
    index_vs_scan_experiment,
)

__all__ = [
    "format_table",
    "format_float",
    "ApproxQualityRow",
    "ApproxQualityResult",
    "approx_quality_experiment",
    "TightnessResult",
    "bound_tightness_experiment",
    "PruningResult",
    "fraction_examined",
    "pruning_power_experiment",
    "IngestRow",
    "IngestResult",
    "ingest_experiment",
    "TimingRow",
    "TimingResult",
    "index_vs_scan_experiment",
    "ShardScalingRow",
    "ShardScalingResult",
    "shard_scaling_experiment",
    "StreamResult",
    "stream_experiment",
]
