"""A collection of equally shaped time series — the "query database".

The paper's experiments run against databases of up to :math:`2^{15}`
sequences, all of the same length and covering the same date span.
:class:`TimeSeriesCollection` enforces that shape discipline, provides
name-based and positional access, and can expose the whole database as a
single ``(num_series, length)`` matrix so downstream code (compression,
linear scans, index construction) can work with vectorised numpy kernels.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import SeriesMismatchError, UnknownQueryError
from repro.timeseries.series import TimeSeries

__all__ = ["TimeSeriesCollection"]


class TimeSeriesCollection:
    """An ordered, name-indexed set of equal-length :class:`TimeSeries`.

    Series are kept in insertion order; each series must have a unique name,
    the same length, and the same start date as the first series added.
    """

    def __init__(self, series: Iterable[TimeSeries] = ()) -> None:
        self._series: dict[str, TimeSeries] = {}
        self._order: list[str] = []
        self._length: int | None = None
        self._start: _dt.date | None = None
        for item in series:
            self.add(item)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, series: TimeSeries) -> None:
        """Add a series, enforcing unique names and a uniform shape."""
        if not series.name:
            raise SeriesMismatchError("collection members must be named")
        if series.name in self._series:
            raise SeriesMismatchError(f"duplicate series name: {series.name!r}")
        if self._length is None:
            self._length = len(series)
            self._start = series.start
        elif len(series) != self._length:
            raise SeriesMismatchError(
                f"series {series.name!r} has length {len(series)}, "
                f"collection requires {self._length}"
            )
        elif series.start != self._start:
            raise SeriesMismatchError(
                f"series {series.name!r} starts {series.start.isoformat()}, "
                f"collection requires {self._start.isoformat()}"
            )
        self._series[series.name] = series
        self._order.append(series.name)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __iter__(self) -> Iterator[TimeSeries]:
        return (self._series[name] for name in self._order)

    def __getitem__(self, key: str | int) -> TimeSeries:
        if isinstance(key, str):
            try:
                return self._series[key]
            except KeyError:
                raise UnknownQueryError(key) from None
        return self._series[self._order[key]]

    @property
    def names(self) -> Sequence[str]:
        """Series names in insertion order."""
        return tuple(self._order)

    @property
    def series_length(self) -> int:
        if self._length is None:
            raise SeriesMismatchError("collection is empty")
        return self._length

    @property
    def start(self) -> _dt.date:
        if self._start is None:
            raise SeriesMismatchError("collection is empty")
        return self._start

    def position_of(self, name: str) -> int:
        """Insertion position of a series name."""
        try:
            return self._order.index(name)
        except ValueError:
            raise UnknownQueryError(name) from None

    # ------------------------------------------------------------------
    # Bulk views / transforms
    # ------------------------------------------------------------------
    def as_matrix(self) -> np.ndarray:
        """All series stacked into a ``(len(self), series_length)`` matrix."""
        if not self._order:
            raise SeriesMismatchError("collection is empty")
        return np.stack([self._series[name].values for name in self._order])

    def standardize(self) -> "TimeSeriesCollection":
        """New collection with every member z-normalised."""
        return TimeSeriesCollection(s.standardize() for s in self)

    def subset(self, names: Iterable[str]) -> "TimeSeriesCollection":
        """New collection restricted to ``names`` (in the given order)."""
        return TimeSeriesCollection(self[name] for name in names)

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        names: Sequence[str] | None = None,
        start: _dt.date = _dt.date(2000, 1, 1),
    ) -> "TimeSeriesCollection":
        """Build a collection from a ``(num_series, length)`` matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SeriesMismatchError(
                f"expected a 2-D matrix, got shape {matrix.shape}"
            )
        if names is None:
            width = len(str(max(matrix.shape[0] - 1, 1)))
            names = [f"series-{i:0{width}d}" for i in range(matrix.shape[0])]
        if len(names) != matrix.shape[0]:
            raise SeriesMismatchError(
                f"{matrix.shape[0]} rows but {len(names)} names"
            )
        return cls(
            TimeSeries(row, name=name, start=start)
            for row, name in zip(matrix, names)
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialise the collection to an ``.npz`` file."""
        np.savez_compressed(
            path,
            matrix=self.as_matrix(),
            names=np.array(self._order, dtype=str),
            start=np.array([self.start.isoformat()], dtype=str),
        )

    @classmethod
    def load(cls, path) -> "TimeSeriesCollection":
        """Load a collection previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as payload:
            start = _dt.date.fromisoformat(str(payload["start"][0]))
            return cls.from_matrix(
                payload["matrix"], names=payload["names"].tolist(), start=start
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._order:
            return "TimeSeriesCollection(empty)"
        return (
            f"TimeSeriesCollection({len(self)} series of length "
            f"{self._length}, start {self._start.isoformat()})"
        )
