"""Streaming-lifecycle experiment: ``python -m repro.evaluation --stream``.

The batch experiments assume the database exists before the first query;
the MSN setting the paper describes is the opposite — queries arrive as
a *stream* of daily counts.  This experiment walks one
:class:`~repro.stream.StreamStore` through the whole streaming
lifecycle and reports what an operator cares about:

* **append** — full-series adds into the WAL-backed live tier, timed;
* **seal** — the live tier flushed into an immutable checksummed
  segment, timed (this is the write stall a deployment would schedule);
* **crash** — a :class:`~repro.resilience.CrashPlan` kills the store at
  a durability seam mid-seal; the directory is reopened and the
  recovered store must answer the same workload **bit-identically**;
* **compact** — tombstoned and superseded rows merged away, timed;
* **agreement** — the final store, queried through several engine
  backends, against an independently maintained reference index (the
  experiment shadows every mutation in plain Python).

Everything is asserted, not assumed: ``crash_recovered_identically``
and ``backends_agree`` are computed from the actual answer sets.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.engine.registry import get_index
from repro.evaluation.reporting import format_table
from repro.resilience import CrashPlan, InjectedCrashError, crash_plan
from repro.stream import StreamStore
from repro.timeseries.preprocessing import zscore

__all__ = ["StreamResult", "stream_experiment"]

_AGREEMENT_BACKENDS = ("flat", "scan", "vptree")


@dataclass(frozen=True)
class StreamResult:
    """Timings and verdicts of one streaming-lifecycle run."""

    database_size: int
    sequence_length: int
    append_rows: int
    append_seconds: float
    seal_seconds: float
    sealed_rows: int
    compact_seconds: float
    segments_before_compact: int
    crash_seam: str
    recovered_generation: int
    wal_records_replayed: int
    orphans_removed: int
    crash_recovered_identically: bool
    backends_agree: bool
    alerts: int

    @property
    def appends_per_second(self) -> float:
        return self.append_rows / max(self.append_seconds, 1e-12)

    def as_table(self) -> str:
        table = format_table(
            ("phase", "seconds", "rows"),
            [
                ("append (WAL + live tier)", self.append_seconds,
                 float(self.append_rows)),
                ("seal (segment + manifest)", self.seal_seconds,
                 float(self.sealed_rows)),
                ("compact (merge + retire)", self.compact_seconds,
                 float(self.segments_before_compact)),
            ],
            title=(
                f"streaming lifecycle, {self.database_size} series x "
                f"{self.sequence_length} days"
            ),
            digits=3,
        )
        return "\n".join(
            [
                table,
                f"append throughput: {self.appends_per_second:,.0f} "
                f"series/s (fsync off)",
                f"crash drill: killed at {self.crash_seam!r} mid-seal; "
                f"reopen adopted generation {self.recovered_generation}, "
                f"replayed {self.wal_records_replayed} WAL records, "
                f"removed {self.orphans_removed} orphans",
                "recovered answers: "
                + (
                    "bit-identical"
                    if self.crash_recovered_identically
                    else "MISMATCH"
                ),
                f"backend agreement ({', '.join(_AGREEMENT_BACKENDS)} vs "
                "reference): "
                + ("bit-identical" if self.backends_agree else "MISMATCH"),
                f"real-time burst alerts raised: {self.alerts}",
            ]
        )


def _answers(store: StreamStore, queries, k: int, backend: str):
    """Order-independent comparable view: frozenset of (name, distance)."""
    out = []
    for query in queries:
        neighbors, _ = store.search(query, k, backend=backend)
        out.append(
            frozenset(
                (n.name, round(n.distance, 12)) for n in neighbors
            )
        )
    return out


def _reference_answers(expected: dict, queries, k: int):
    """The same workload over an index built outside the stream stack."""
    names = list(expected)
    matrix = np.stack([zscore(expected[name]) for name in names])
    index = get_index("scan", matrix, names=names)
    out = []
    for query in queries:
        neighbors, _ = index.search(query, k)
        out.append(
            frozenset(
                (n.name, round(n.distance, 12)) for n in neighbors
            )
        )
    return out


def stream_experiment(
    counts: np.ndarray,
    names,
    queries: np.ndarray,
    tmp_dir,
    k: int = 5,
    crash_seam: str = "manifest.rename",
    events: int = 8,
) -> StreamResult:
    """Run the streaming lifecycle over ``counts`` and verify every claim.

    Parameters
    ----------
    counts:
        ``(count, n)`` **raw non-negative** daily counts (the stream
        ingests counts; standardisation happens inside the store).
    names:
        One name per row of ``counts``.
    queries:
        ``(q, n)`` z-scored query workload.
    tmp_dir:
        Scratch directory; the stream lives in ``tmp_dir/stream``.
    crash_seam:
        The :func:`~repro.resilience.crashpoint` seam to kill at during
        the mid-experiment seal (any ``seal.*`` / ``manifest.*`` seam).
    events:
        Count events recorded against live series before the rollover.
    """
    counts = np.ascontiguousarray(counts, dtype=np.float64)
    names = tuple(names)
    count, n = counts.shape
    half = count // 2
    directory = os.path.join(tmp_dir, "stream")
    # Shadow copy of what the store should contain, maintained by the
    # experiment itself — the independent reference the final agreement
    # check is built from.
    expected: dict[str, np.ndarray] = {}

    store = StreamStore(directory, n, fsync=False)
    try:
        # Phase 1: sealed population.
        started = time.perf_counter()
        for name, row in zip(names[:half], counts[:half]):
            store.append(name, row)
        append_seconds = time.perf_counter() - started
        for name, row in zip(names[:half], counts[:half]):
            expected[name] = row.copy()

        started = time.perf_counter()
        store.seal()
        seal_seconds = time.perf_counter() - started

        # Phase 2: a live population with events and one day rollover.
        for name, row in zip(names[half:], counts[half:]):
            store.append(name, row)
            expected[name] = row.copy()
        rng = np.random.default_rng(0)
        for name in names[half : half + events]:
            bump = float(rng.integers(1, 50))
            store.record(name, bump)
            expected[name][n - 1] += bump
        store.rollover()
        for name in names[half:]:
            row = expected[name]
            row[: n - 1] = row[1:]
            row[n - 1] = 0.0

        # Crash drill: answers before, kill mid-seal, reopen, compare.
        before = _answers(store, queries, k, "flat")
        plan = CrashPlan(point=crash_seam)
        try:
            with crash_plan(plan):
                store.seal()
        except InjectedCrashError:
            pass
    finally:
        store.close()

    store = StreamStore(directory, fsync=False)
    try:
        recovery = store.recovery
        after = _answers(store, queries, k, "flat")
        recovered_identically = before == after

        # Phase 3: seal the replayed live tier, supersede + delete, compact.
        store.seal()
        store.append(names[0], counts[half % count])
        expected[names[0]] = counts[half % count].copy()
        store.delete(names[-1])
        del expected[names[-1]]
        store.seal()
        segments_before = len(store.segment_files())
        started = time.perf_counter()
        store.compact()
        compact_seconds = time.perf_counter() - started

        reference = _reference_answers(expected, queries, k)
        backends_agree = all(
            _answers(store, queries, k, backend) == reference
            for backend in _AGREEMENT_BACKENDS
        )
        alerts = len(store.drain_alerts())
    finally:
        store.close()

    return StreamResult(
        database_size=count,
        sequence_length=n,
        append_rows=half,
        append_seconds=append_seconds,
        seal_seconds=seal_seconds,
        sealed_rows=half,
        compact_seconds=compact_seconds,
        segments_before_compact=segments_before,
        crash_seam=crash_seam,
        recovered_generation=recovery.generation,
        wal_records_replayed=recovery.wal_records,
        orphans_removed=recovery.orphans_removed,
        crash_recovered_identically=recovered_identically,
        backends_agree=backends_agree,
        alerts=alerts,
    )
