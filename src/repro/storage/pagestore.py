"""Disk-backed sequence storage with explicit I/O accounting.

The paper's timing experiment (fig. 23) contrasts three configurations: a
linear scan that reads every *uncompressed* sequence from disk, an index
whose compressed features live on disk, and an index whose compressed
features fit in memory.  Since absolute 2004-era disk timings are not
reproducible, this module makes the dominant cost *measurable*: every
sequence fetched from a :class:`SequencePageStore` is charged the number of
pages it spans, and the store keeps running counters of read calls, pages
touched and (an estimate of) random seeks.

:class:`MemorySequenceStore` implements the same interface with zero I/O
cost, so "index in memory" and "index on disk" are the same code path with
a different store plugged in.

File layout (format 2, the default): a checksummed header page (magic,
page size, sequence length, header CRC32), then each sequence serialised
as consecutive float64 pages.  Every data page reserves its final four
bytes for a CRC32 of the page payload, so a flipped bit, a half-written
page or a truncated file surfaces as a typed
:class:`~repro.exceptions.CorruptionError` /
:class:`~repro.exceptions.TornWriteError` instead of silently feeding
garbage floats to the query engine.  Format-1 files (the pre-checksum
layout) remain fully readable; they simply have no checksums to verify.
See ``docs/RESILIENCE.md`` for the fault model.

Reads have two physical paths with identical semantics and accounting:

* **buffered** (default) — ``seek`` + ``read`` on the backing file, one
  syscall pair per sequence;
* **memory-mapped** (``use_mmap=True`` or ``REPRO_MMAP=1``) — the file
  is mapped once and raw blocks are gathered as numpy slices of the
  map, so :meth:`SequencePageStore.read_many` serves a whole candidate
  block with zero syscalls.  CRC validation, the
  :class:`~repro.storage.cache.SequenceCache` and every
  :class:`IOStats` charge are unchanged — pages are *logical* I/O
  units, charged whether the bytes arrive via ``read(2)`` or a page
  fault.

:meth:`SequencePageStore.read_many` replays exactly the per-id scalar
sequence — cache probe, charge, raw-block gather, CRC validation, cache
fill, in id order — but defers the payload *assembly* (page
de-concatenation and float64 reinterpretation) to one vectorised pass
over the whole batch, which is where the scalar loop spends its time.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import (
    CorruptionError,
    KeyNotFoundError,
    StorageError,
    TornWriteError,
)
from repro.storage.cache import SequenceCache, cache_budget_from_env
from repro.timeseries.preprocessing import as_float_array, as_float_matrix

__all__ = [
    "FSYNC_ENV",
    "IOStats",
    "MMAP_ENV",
    "MemorySequenceStore",
    "SequencePageStore",
    "fsync_enabled_from_env",
    "mmap_enabled_from_env",
]

#: Environment switch for memory-mapped reads (``1``/``true``/``on``).
MMAP_ENV = "REPRO_MMAP"

#: Environment switch for durable writes (``REPRO_FSYNC=0``/``1``).
FSYNC_ENV = "REPRO_FSYNC"


def mmap_enabled_from_env() -> bool:
    """Whether ``REPRO_MMAP`` asks for memory-mapped store reads."""
    raw = os.environ.get(MMAP_ENV, "").strip().lower()
    return raw in {"1", "true", "yes", "on"}


def fsync_enabled_from_env(default: bool = False) -> bool:
    """Resolve the ``REPRO_FSYNC`` knob against a per-site default.

    Durability sites disagree on the right default: the WAL and the
    stream manifest default *on* (losing acknowledged appends is a
    correctness bug), while bulk page stores and benchmarks default
    *off* (an fsync per batch would dominate the measured ingest cost).
    An explicit ``REPRO_FSYNC=1``/``0`` overrides every site either way;
    unset or unrecognised falls back to ``default``.
    """
    raw = os.environ.get(FSYNC_ENV, "").strip().lower()
    if raw in {"1", "true", "yes", "on"}:
        return True
    if raw in {"0", "false", "no", "off"}:
        return False
    return bool(default)

_MAGIC_V1 = b"RPRSEQ1\x00"
_MAGIC_V2 = b"RPRSEQ2\x00"
_HEADER_V1 = struct.Struct("<8sIQ")  # magic, page_size, sequence_length
_HEADER_V2 = struct.Struct("<8sIQI")  # ... + CRC32 of the preceding fields
#: Bytes reserved at the end of every format-2 data page for its CRC32.
_PAGE_CRC_BYTES = 4
_PAGE_CRC = struct.Struct("<I")
# Bulk appends encode + write in chunks of roughly this many bytes so
# the scratch buffer stays within the CPU cache and the allocator arena.
_BULK_CHUNK_BYTES = 4 << 20
#: Upper sanity bound for header fields — a corrupted header must not be
#: able to request absurd allocations before the CRC check existed (v1).
_MAX_PAGE_SIZE = 1 << 24
_MAX_SEQUENCE_LENGTH = 1 << 40


@dataclass
class IOStats:
    """Running I/O counters for a sequence store."""

    read_calls: int = 0
    pages_read: int = 0
    seeks: int = 0
    _last_page: int | None = field(default=None, repr=False)

    def charge(self, first_page: int, page_count: int) -> None:
        """Record one read of ``page_count`` pages starting at ``first_page``."""
        self.read_calls += 1
        self.pages_read += page_count
        obs.add("storage.read_calls")
        obs.add("storage.pages_read", page_count)
        if self._last_page is None or first_page != self._last_page:
            self.seeks += 1
            obs.add("storage.seeks")
        self._last_page = first_page + page_count

    def charge_cached(self) -> None:
        """Record one read served from the sequence cache.

        A cache hit is still a read call, but it touches zero pages and
        moves no disk head, so the page and seek counters — and the head
        position used to estimate future seeks — are left alone.
        """
        self.read_calls += 1
        obs.add("storage.read_calls")
        obs.add("storage.pages_read", 0)

    def reset(self) -> None:
        self.read_calls = 0
        self.pages_read = 0
        self.seeks = 0
        self._last_page = None


class SequencePageStore:
    """Append-only on-disk store of equal-length float64 sequences.

    Parameters
    ----------
    path:
        Backing file.  Created on first append; reopened read-write.
    sequence_length:
        Length of every stored sequence (fixed per store).
    page_size:
        Simulated disk page size in bytes (default 4096).  In the
        checksummed format each page carries ``page_size - 4`` bytes of
        payload; the final four hold the page's CRC32.
    verify_checksums:
        Verify every data page's CRC32 on read (default).  Turning it
        off trades integrity detection for a little CPU — the overhead
        benchmark prices both paths.
    cache_bytes:
        Byte budget for the hot-read :class:`SequenceCache` in front of
        the block reader.  ``None`` (default) consults the
        ``REPRO_CACHE_BYTES`` environment variable; 0 disables caching.
    use_mmap:
        Serve raw blocks from a read-only memory map of the backing
        file instead of buffered ``seek``/``read`` calls.  ``None``
        (default) consults ``REPRO_MMAP``.  Appends remain buffered
        writes; the map is refreshed lazily when the store grows.
    fsync:
        Force every append through ``fsync(2)`` so acknowledged writes
        survive a power loss, not just a process crash.  ``None``
        (default) consults ``REPRO_FSYNC`` with a default of *off* —
        page stores are bulk-ingest surfaces whose durability the
        stream layer's WAL already guarantees (``docs/STREAMING.md``).
    """

    def __init__(
        self,
        path,
        sequence_length: int,
        page_size: int = 4096,
        verify_checksums: bool = True,
        cache_bytes: int | None = None,
        use_mmap: bool | None = None,
        fsync: bool | None = None,
    ) -> None:
        self._validate_geometry(sequence_length, page_size)
        self.path = os.fspath(path)
        self.sequence_length = int(sequence_length)
        self.page_size = int(page_size)
        self.format_version = 2
        self.verify_checksums = bool(verify_checksums)
        self.stats = IOStats()
        self._init_fsync(fsync)
        self._init_cache(cache_bytes)
        self._init_mmap(use_mmap)
        self._init_geometry()
        self._count = 0
        self._file = open(self.path, "w+b")
        header = _HEADER_V2.pack(
            _MAGIC_V2,
            self.page_size,
            self.sequence_length,
            zlib.crc32(
                _HEADER_V1.pack(_MAGIC_V2, self.page_size, self.sequence_length)
            ),
        )
        self._file.write(header)
        self._data_offset = self._align(_HEADER_V2.size)
        self._file.write(b"\x00" * (self._data_offset - _HEADER_V2.size))
        self._file.flush()

    @staticmethod
    def _validate_geometry(sequence_length: int, page_size: int) -> None:
        if not 0 < sequence_length <= _MAX_SEQUENCE_LENGTH:
            raise StorageError(
                f"sequence_length must be in (0, {_MAX_SEQUENCE_LENGTH}], "
                f"got {sequence_length}"
            )
        if not 64 <= page_size <= _MAX_PAGE_SIZE:
            raise StorageError(
                f"page_size must be in [64, {_MAX_PAGE_SIZE}] bytes, "
                f"got {page_size}"
            )

    def _init_geometry(self) -> None:
        bytes_per_sequence = self.sequence_length * 8
        payload = self.page_size
        if self.format_version >= 2:
            payload -= _PAGE_CRC_BYTES
        self._payload_per_page = payload
        self._pages_per_sequence = -(-bytes_per_sequence // payload)

    def _init_cache(self, cache_bytes: int | None) -> None:
        self._cache_budget = (
            cache_budget_from_env() if cache_bytes is None else int(cache_bytes)
        )
        if self._cache_budget < 0:
            raise StorageError(
                f"cache_bytes must be >= 0, got {self._cache_budget}"
            )
        self._cache = (
            SequenceCache(self._cache_budget) if self._cache_budget else None
        )

    def _init_mmap(self, use_mmap: bool | None) -> None:
        self._use_mmap = (
            mmap_enabled_from_env() if use_mmap is None else bool(use_mmap)
        )
        self._mmap: np.memmap | None = None
        self._mmap_rows = 0

    def _init_fsync(self, fsync: bool | None) -> None:
        self._fsync = (
            fsync_enabled_from_env(default=False)
            if fsync is None
            else bool(fsync)
        )

    @property
    def cache(self) -> SequenceCache | None:
        """The hot-read cache, or ``None`` when caching is disabled."""
        return self._cache

    @property
    def uses_mmap(self) -> bool:
        """Whether raw blocks are served from a memory map of the file."""
        return self._use_mmap

    @property
    def fsync_enabled(self) -> bool:
        """Whether appends are forced through ``fsync(2)``."""
        return self._fsync

    @classmethod
    def open(
        cls,
        path,
        page_size: int | None = None,
        *,
        repair: bool = False,
        verify_checksums: bool = True,
        cache_bytes: int | None = None,
        use_mmap: bool | None = None,
        fsync: bool | None = None,
    ) -> "SequencePageStore":
        """Reopen an existing store file, validating its header.

        The sequence length and page size are read back from the
        (checksummed, for format-2 files) header; passing ``page_size``
        asserts the expectation.  The sequence count is recovered from
        the file size, so a store survives process restarts.

        A format-2 file whose size is not a whole number of sequences
        records a torn write — a crash mid-append.  By default that
        raises :class:`~repro.exceptions.TornWriteError`; with
        ``repair=True`` the partial trailing sequence is truncated away
        (the self-healing path: everything fully written stays
        readable).  Format-1 files keep their historical
        floor-to-whole-sequences behaviour.
        """
        path = os.fspath(path)
        try:
            with open(path, "rb") as probe:
                raw_header = probe.read(_HEADER_V2.size)
                file_size = os.path.getsize(path)
        except OSError as exc:
            raise StorageError(f"cannot open store file {path!r}: {exc}")
        if len(raw_header) < _HEADER_V1.size:
            raise TornWriteError(
                f"{path!r} is too short to be a sequence store"
            )
        magic = raw_header[:8]
        if magic == _MAGIC_V2:
            if len(raw_header) < _HEADER_V2.size:
                raise TornWriteError(
                    f"{path!r}: truncated format-2 header"
                )
            magic, stored_page_size, sequence_length, stored_crc = (
                _HEADER_V2.unpack(raw_header)
            )
            expected_crc = zlib.crc32(raw_header[: _HEADER_V1.size])
            if stored_crc != expected_crc:
                raise CorruptionError(
                    f"{path!r}: header CRC mismatch "
                    f"(stored {stored_crc:#010x}, "
                    f"computed {expected_crc:#010x})"
                )
            version = 2
        elif magic == _MAGIC_V1:
            magic, stored_page_size, sequence_length = _HEADER_V1.unpack(
                raw_header[: _HEADER_V1.size]
            )
            version = 1
        else:
            raise CorruptionError(
                f"{path!r} is not a sequence store (bad magic {magic!r})"
            )
        try:
            cls._validate_geometry(sequence_length, stored_page_size)
        except StorageError as exc:
            raise CorruptionError(
                f"{path!r}: implausible header fields: {exc}"
            ) from None
        if page_size is not None and page_size != stored_page_size:
            raise StorageError(
                f"store {path!r} uses page size {stored_page_size}, "
                f"expected {page_size}"
            )

        store = cls.__new__(cls)
        store.path = path
        store.sequence_length = int(sequence_length)
        store.page_size = int(stored_page_size)
        store.format_version = version
        store.verify_checksums = bool(verify_checksums)
        store.stats = IOStats()
        store._init_fsync(fsync)
        store._init_cache(cache_bytes)
        store._init_mmap(use_mmap)
        store._init_geometry()
        store._file = open(path, "r+b")
        header_size = _HEADER_V2.size if version == 2 else _HEADER_V1.size
        store._data_offset = store._align(header_size)
        payload_bytes = max(file_size - store._data_offset, 0)
        sequence_bytes = store._pages_per_sequence * store.page_size
        store._count = payload_bytes // sequence_bytes
        if version == 2 and payload_bytes % sequence_bytes:
            if not repair:
                store._file.close()
                raise TornWriteError(
                    f"{path!r}: trailing partial sequence "
                    f"({payload_bytes % sequence_bytes} bytes past the "
                    f"last whole sequence) — reopen with repair=True to "
                    f"truncate it"
                )
            store._file.truncate(
                store._data_offset + store._count * sequence_bytes
            )
            store._file.flush()
            obs.add("resilience.storage_repairs")
        return store

    def _align(self, offset: int) -> int:
        return -(-offset // self.page_size) * self.page_size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        """Release the backing file descriptor; safe to call repeatedly."""
        self._release_mmap()
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "SequencePageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pickling — used by the parallel shard builder, whose worker
    # processes build a shard's store and ship the handle back to the
    # parent.  The open file descriptor cannot cross processes, so the
    # state carries the path plus a was-open flag and the receiving side
    # reopens; cache contents are dropped (only the budget travels).
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        was_open = not self._file.closed
        if was_open:
            self._file.flush()
        state["_file"] = was_open
        state["_cache"] = None
        # The map holds OS resources that cannot cross processes; the
        # receiving side re-maps lazily on its first mapped read.
        state["_mmap"] = None
        state["_mmap_rows"] = 0
        return state

    def __setstate__(self, state) -> None:
        was_open = state.pop("_file")
        self.__dict__.update(state)
        self._file = open(self.path, "r+b")
        if not was_open:
            self._file.close()
        self._cache = (
            SequenceCache(self._cache_budget) if self._cache_budget else None
        )

    # ------------------------------------------------------------------
    # Storage interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def pages_per_sequence(self) -> int:
        """Pages charged for reading one sequence."""
        return self._pages_per_sequence

    def append(self, values) -> int:
        """Store a sequence; returns its integer id (dense, starting at 0)."""
        arr = as_float_array(values)
        if arr.size != self.sequence_length:
            raise StorageError(
                f"store holds sequences of length {self.sequence_length}, "
                f"got {arr.size}"
            )
        seq_id = self._count
        self._file.seek(self._offset_of(seq_id))
        self._file.write(self._encode_block(arr.tobytes()))
        obs.add("storage.page_writes", self._pages_per_sequence)
        self._count += 1
        self._maybe_sync()
        return seq_id

    def append_matrix(self, matrix: np.ndarray) -> list[int]:
        """Store every row of a ``(count, sequence_length)`` matrix.

        The bulk ingest path: pages and CRCs are encoded in vectorised
        passes over a preallocated buffer (:meth:`_encode_matrix`) and
        written in a few megabyte-sized sequential chunks, instead of
        one encode + seek + write per row.  The chunking keeps the
        scratch buffer cache-hot and allocator-recycled rather than
        faulting a fresh matrix-sized buffer on every call.  The bytes
        on disk are identical to per-row :meth:`append` — asserted by
        ``tests/storage/test_bulk_append.py``.
        """
        matrix = as_float_matrix(matrix)
        count = matrix.shape[0]
        if count == 0:
            return []
        if matrix.shape[1] != self.sequence_length:
            raise StorageError(
                f"store holds sequences of length {self.sequence_length}, "
                f"got {matrix.shape[1]}"
            )
        first = self._count
        self._file.seek(self._offset_of(first))
        block_bytes = self._pages_per_sequence * self.page_size
        chunk_rows = max(1, _BULK_CHUNK_BYTES // block_bytes)
        for start in range(0, count, chunk_rows):
            encoded = self._encode_matrix(matrix[start : start + chunk_rows])
            self._file.write(encoded.data)
        obs.add("storage.page_writes", count * self._pages_per_sequence)
        self._count += count
        self._maybe_sync()
        return list(range(first, first + count))

    def _offset_of(self, seq_id: int) -> int:
        return (
            self._data_offset
            + seq_id * self._pages_per_sequence * self.page_size
        )

    def flush(self) -> None:
        """Push buffered writes to the OS, without forcing them to disk.

        Enough for *visibility*: a concurrently opened reader sees a
        complete file.  Durability against power loss additionally
        needs :meth:`sync`.
        """
        self._file.flush()

    def sync(self) -> None:
        """Flush buffers and force the bytes to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())
        obs.add("storage.fsyncs")

    def _maybe_sync(self) -> None:
        if self._fsync:
            self.sync()

    def _encode_block(self, payload: bytes) -> bytes:
        """Serialise one sequence as zero-padded, checksummed pages."""
        if self.format_version == 1:
            block_size = self._pages_per_sequence * self.page_size
            return payload + b"\x00" * (block_size - len(payload))
        block = bytearray()
        for start in range(0, self._payload_per_page * self._pages_per_sequence,
                           self._payload_per_page):
            chunk = payload[start : start + self._payload_per_page]
            if len(chunk) < self._payload_per_page:
                chunk = chunk + b"\x00" * (self._payload_per_page - len(chunk))
            block += chunk
            block += _PAGE_CRC.pack(zlib.crc32(chunk))
        return bytes(block)

    def _encode_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Serialise a whole ``(count, n)`` matrix of sequences at once.

        Fills a single preallocated page buffer: the payload bytes are
        scattered page-column by page-column (at most
        ``pages_per_sequence`` assignments), each page's CRC32 runs over
        a view of its payload, and the checksums land in the last four
        bytes of every page — no per-row bytes objects and no final
        ``tobytes`` copy.  The buffer's bytes are exactly
        ``b"".join(self._encode_block(row.tobytes()) ...)``; callers
        write its memoryview directly.
        """
        count = matrix.shape[0]
        pages = self._pages_per_sequence
        row_bytes = self.sequence_length * 8
        raw = matrix.view(np.uint8).reshape(count, row_bytes)
        if self.format_version == 1:
            buf = np.zeros((count, pages * self.page_size), dtype=np.uint8)
            buf[:, :row_bytes] = raw
            return buf.reshape(-1)
        payload = self._payload_per_page
        buf = np.zeros((count, pages, self.page_size), dtype=np.uint8)
        for page in range(pages):
            chunk = raw[:, page * payload : (page + 1) * payload]
            buf[:, page, : chunk.shape[1]] = chunk
        flat = buf.reshape(count * pages, self.page_size)
        payloads = flat[:, :payload]
        checksums = np.empty(count * pages, dtype="<u4")
        for index in range(count * pages):
            checksums[index] = zlib.crc32(payloads[index])
        flat[:, payload:] = checksums.view(np.uint8).reshape(-1, _PAGE_CRC_BYTES)
        return buf.reshape(-1)

    def _decode_block(self, seq_id: int, block: bytes) -> np.ndarray:
        """Validate a sequence's pages and strip the checksums."""
        expected = self._pages_per_sequence * self.page_size
        if len(block) < expected:
            raise TornWriteError(
                f"store {self.path!r}: sequence {seq_id} is truncated "
                f"({len(block)} of {expected} bytes on disk)"
            )
        if self.format_version == 1:
            payload = block[: self.sequence_length * 8]
            return np.frombuffer(payload, dtype=np.float64).copy()
        payload = bytearray()
        verify = self.verify_checksums
        for page in range(self._pages_per_sequence):
            start = page * self.page_size
            chunk = block[start : start + self._payload_per_page]
            if verify:
                stored = _PAGE_CRC.unpack_from(
                    block, start + self._payload_per_page
                )[0]
                computed = zlib.crc32(chunk)
                if stored != computed:
                    page_bytes = block[start : start + self.page_size]
                    obs.add("resilience.corrupt_pages")
                    if not any(page_bytes):
                        raise TornWriteError(
                            f"store {self.path!r}: sequence {seq_id} page "
                            f"{page} was never written (torn write)"
                        )
                    raise CorruptionError(
                        f"store {self.path!r}: sequence {seq_id} page "
                        f"{page} CRC mismatch (stored {stored:#010x}, "
                        f"computed {computed:#010x})"
                    )
            payload += chunk
        return np.frombuffer(
            bytes(payload[: self.sequence_length * 8]), dtype=np.float64
        ).copy()

    # ------------------------------------------------------------------
    # Raw block access: buffered or memory-mapped
    # ------------------------------------------------------------------
    def _release_mmap(self) -> None:
        """Drop the current map (idempotent; tolerates live views)."""
        mapped, self._mmap = self._mmap, None
        self._mmap_rows = 0
        if mapped is None:
            return
        inner = getattr(mapped, "_mmap", None)
        if inner is not None:
            try:
                inner.close()
            except (BufferError, OSError):  # pragma: no cover - live views
                pass

    def _block_view(self) -> np.ndarray | None:
        """A read-only ``(count, block_bytes)`` uint8 view over the map.

        Returns ``None`` when mapping is disabled or impossible (empty
        store, file shorter than the expected data region), in which
        case callers fall back to buffered reads.  The map is refreshed
        lazily after appends grow the store.
        """
        if not self._use_mmap or self._count == 0 or self._file.closed:
            return None
        block_bytes = self._pages_per_sequence * self.page_size
        needed = self._data_offset + self._count * block_bytes
        if self._mmap is None or self._mmap_rows < self._count:
            self._file.flush()
            try:
                if os.path.getsize(self.path) < needed:
                    return None
                mapped = np.memmap(self.path, dtype=np.uint8, mode="r")
            except (OSError, ValueError):
                return None
            self._release_mmap()
            self._mmap = mapped
            self._mmap_rows = self._count
        return self._mmap[self._data_offset : needed].reshape(
            self._count, block_bytes
        )

    def _read_block(self, seq_id: int) -> bytes:
        view = self._block_view()
        if view is not None:
            return view[seq_id].tobytes()
        self._file.seek(self._offset_of(seq_id))
        return self._file.read(self._pages_per_sequence * self.page_size)

    def read(self, seq_id: int) -> np.ndarray:
        """Fetch a sequence by id, charging its pages to :attr:`stats`.

        Raises :class:`~repro.exceptions.CorruptionError` (or its
        subclass :class:`~repro.exceptions.TornWriteError`) when a
        format-2 page fails validation.
        """
        if not 0 <= seq_id < self._count:
            raise KeyNotFoundError(seq_id)
        cache = self._cache
        if cache is not None:
            cached = cache.get(seq_id)
            if cached is not None:
                self.stats.charge_cached()
                try:
                    return self._decode_block(seq_id, cached)
                except CorruptionError:
                    # A block that no longer validates (e.g. checksum
                    # verification was toggled on after it was cached)
                    # must not be served again.
                    cache.invalidate(seq_id)
                    raise
        offset = self._offset_of(seq_id)
        self.stats.charge(offset // self.page_size, self._pages_per_sequence)
        block = self._read_block(seq_id)
        decoded = self._decode_block(seq_id, block)
        if cache is not None:
            cache.put(seq_id, block)
        return decoded

    def _validate_block(self, seq_id: int, block: np.ndarray) -> None:
        """CRC-check one raw block (uint8 row) without assembling payload.

        Raises exactly what :meth:`_decode_block` would raise for the
        same bytes — same exception types, same messages — so the bulk
        reader's failure surface is indistinguishable from the scalar
        one.
        """
        if len(block) < self._pages_per_sequence * self.page_size:
            raise TornWriteError(
                f"store {self.path!r}: sequence {seq_id} is truncated "
                f"({len(block)} of "
                f"{self._pages_per_sequence * self.page_size} bytes on disk)"
            )
        if self.format_version == 1 or not self.verify_checksums:
            return
        pages = block.reshape(self._pages_per_sequence, self.page_size)
        for page in range(self._pages_per_sequence):
            chunk = pages[page, : self._payload_per_page]
            stored = _PAGE_CRC.unpack_from(
                pages[page], self._payload_per_page
            )[0]
            computed = zlib.crc32(chunk)
            if stored != computed:
                obs.add("resilience.corrupt_pages")
                if not pages[page].any():
                    raise TornWriteError(
                        f"store {self.path!r}: sequence {seq_id} page "
                        f"{page} was never written (torn write)"
                    )
                raise CorruptionError(
                    f"store {self.path!r}: sequence {seq_id} page "
                    f"{page} CRC mismatch (stored {stored:#010x}, "
                    f"computed {computed:#010x})"
                )

    def _extract_payloads(self, raw: np.ndarray) -> np.ndarray:
        """One vectorised payload assembly for a batch of raw blocks.

        ``raw`` is ``(m, block_bytes)`` uint8; the result is the
        ``(m, sequence_length)`` float64 matrix whose rows are bitwise
        what :meth:`_decode_block` returns for each block.
        """
        count = raw.shape[0]
        row_bytes = self.sequence_length * 8
        if self.format_version == 1:
            payload = raw[:, :row_bytes]
        else:
            pages = raw.reshape(
                count, self._pages_per_sequence, self.page_size
            )
            payload = np.ascontiguousarray(
                pages[:, :, : self._payload_per_page]
            ).reshape(count, -1)[:, :row_bytes]
        return np.ascontiguousarray(payload).view(np.float64)

    def read_many(self, seq_ids) -> np.ndarray:
        """Fetch several sequences as a ``(len(seq_ids), n)`` matrix.

        Semantics and accounting replay :meth:`read` per id in order —
        cache probe (hits are re-validated and charged as cached reads),
        :class:`IOStats` charge, raw-block gather, CRC validation, cache
        fill — so counters, cache dynamics and failure behaviour are
        identical to the scalar loop.  Two things are vectorised: with
        the store memory-mapped the gather is a numpy slice per id
        (zero syscalls), and the payload assembly for the whole batch is
        a single numpy pass instead of per-id byte joins.
        """
        ids = [int(seq_id) for seq_id in seq_ids]
        if not ids:
            return np.empty((0, self.sequence_length), dtype=np.float64)
        for seq_id in ids:
            if not 0 <= seq_id < self._count:
                raise KeyNotFoundError(seq_id)
        block_bytes = self._pages_per_sequence * self.page_size
        view = self._block_view()
        cache = self._cache
        raw = np.empty((len(ids), block_bytes), dtype=np.uint8)
        for row, seq_id in enumerate(ids):
            cached = cache.get(seq_id) if cache is not None else None
            if cached is not None:
                self.stats.charge_cached()
                block = np.frombuffer(cached, dtype=np.uint8)
                try:
                    self._validate_block(seq_id, block)
                except CorruptionError:
                    cache.invalidate(seq_id)
                    raise
                raw[row, : len(block)] = block
                continue
            offset = self._offset_of(seq_id)
            self.stats.charge(
                offset // self.page_size, self._pages_per_sequence
            )
            if view is not None:
                raw[row] = view[seq_id]
            else:
                self._file.seek(offset)
                block = np.frombuffer(
                    self._file.read(block_bytes), dtype=np.uint8
                )
                raw[row, : len(block)] = block
                if len(block) < block_bytes:
                    # Same truncation surface as the scalar decode.
                    self._validate_block(seq_id, block)
            self._validate_block(seq_id, raw[row])
            if cache is not None:
                cache.put(seq_id, raw[row].tobytes())
        return self._extract_payloads(raw)

    def scrub(self) -> tuple[int, ...]:
        """Verify every stored sequence; return the ids that fail.

        A maintenance pass (it bypasses :attr:`stats`, so experiment I/O
        counters stay meaningful): each sequence's pages are read and
        checksum-validated, and the ids of corrupt or torn sequences are
        returned instead of raised — feed them to the engine's
        quarantine, or re-ingest them from the source of truth.

        The scrub always reads from disk — never from the sequence
        cache — and evicts every failing id from the cache, so a
        sequence that went bad on disk can never keep being served from
        a stale cached copy.
        """
        bad: list[int] = []
        for seq_id in range(self._count):
            try:
                self._decode_block(seq_id, self._read_block(seq_id))
            except CorruptionError:
                bad.append(seq_id)
        if bad:
            if self._cache is not None:
                for seq_id in bad:
                    self._cache.invalidate(seq_id)
            obs.add("resilience.scrub_failures", len(bad))
        return tuple(bad)


class MemorySequenceStore:
    """Drop-in replacement for :class:`SequencePageStore` held in RAM.

    Reads are free: :attr:`stats` counts calls but charges zero pages, which
    models the paper's "compressed features in memory" configuration.
    """

    def __init__(self, sequence_length: int) -> None:
        if sequence_length <= 0:
            raise StorageError("sequence_length must be positive")
        self.sequence_length = int(sequence_length)
        self.stats = IOStats()
        self._rows: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def pages_per_sequence(self) -> int:
        return 0

    def append(self, values) -> int:
        arr = as_float_array(values)
        if arr.size != self.sequence_length:
            raise StorageError(
                f"store holds sequences of length {self.sequence_length}, "
                f"got {arr.size}"
            )
        self._rows.append(arr.copy())
        return len(self._rows) - 1

    def append_matrix(self, matrix: np.ndarray) -> list[int]:
        return [self.append(row) for row in np.asarray(matrix, dtype=np.float64)]

    def read(self, seq_id: int) -> np.ndarray:
        if not 0 <= seq_id < len(self._rows):
            raise KeyNotFoundError(seq_id)
        self.stats.read_calls += 1
        # Charge zero pages so the page counter exists (and stays zero)
        # for in-memory runs — reports can show "0 pages" explicitly.
        obs.add("storage.read_calls")
        obs.add("storage.pages_read", 0)
        return self._rows[seq_id]

    def read_many(self, seq_ids) -> np.ndarray:
        """Fetch several sequences as one matrix; counts one call per id."""
        return np.stack([self.read(int(seq_id)) for seq_id in seq_ids])

    def close(self) -> None:
        """No-op, for interface parity with :class:`SequencePageStore`."""

    def __enter__(self) -> "MemorySequenceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
