"""Ablation A4: fixed k vs the adaptive energy-threshold representation.

Section 8 proposes adding best coefficients per sequence "until the
compressed representation contains k% of the energy".  The ablation
compares a fixed-k compressor against an adaptive one tuned to the same
*average* storage, measuring per-sequence energy coverage and pruning.
"""

import numpy as np

from repro.compression import (
    AdaptiveEnergyCompressor,
    BestMinErrorCompressor,
    SketchDatabase,
)
from repro.evaluation import format_table
from repro.evaluation.pruning import fraction_examined
from repro.spectral import Spectrum


def _coverage(compressor, rows):
    fractions = []
    sizes = []
    for row in rows:
        spectrum = Spectrum.from_series(row)
        sketch = compressor.compress(spectrum)
        total = max(spectrum.energy(), 1e-12)
        fractions.append(sketch.stored_energy() / total)
        sizes.append(len(sketch))
    return float(np.mean(fractions)), float(np.min(fractions)), float(np.mean(sizes))


def test_ablation_adaptive_k(database_matrix, query_matrix, report, benchmark):
    sample = database_matrix[:512]

    fixed = BestMinErrorCompressor(14)
    fixed_cov = _coverage(fixed, sample)
    # No cap: the adaptive scheme's defining guarantee is the coverage
    # floor, so it must be allowed to spend more on noisy sequences.
    adaptive = AdaptiveEnergyCompressor(0.85)
    adaptive_cov = _coverage(adaptive, sample)

    rows = [
        ("fixed k=14", fixed_cov[2], fixed_cov[0], fixed_cov[1]),
        ("adaptive 85% energy", adaptive_cov[2], adaptive_cov[0], adaptive_cov[1]),
    ]
    report(
        format_table(
            ("representation", "avg k", "mean energy kept", "worst energy kept"),
            rows,
            title="ablation A4: fixed vs adaptive coefficient count",
            digits=3,
        ),
        "the adaptive scheme guarantees a floor on per-sequence energy "
        "coverage, which fixed k cannot",
    )
    # The adaptive floor is its defining property.
    assert adaptive_cov[1] >= 0.85 - 1e-6
    assert fixed_cov[1] < 0.85  # fixed k leaves some sequences under-covered

    # Pruning still works on the variable-width sketches.
    matrix = database_matrix[:1024]
    sketch_db = SketchDatabase.from_matrix(matrix, adaptive)
    fractions = [
        fraction_examined(q, Spectrum.from_series(q), sketch_db, matrix)
        for q in query_matrix[:8]
    ]
    assert 0 < float(np.mean(fractions)) <= 1

    spectrum = Spectrum.from_series(sample[0])
    benchmark(adaptive.compress, spectrum)
