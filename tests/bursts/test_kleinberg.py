"""Tests for the Kleinberg burst-automaton baseline."""

import numpy as np
import pytest

from repro.bursts import KleinbergBurst, KleinbergDetector


def bursty_counts(n=200, start=120, width=20, base=50.0, boost=4.0, seed=0):
    rng = np.random.default_rng(seed)
    rates = np.full(n, base)
    rates[start : start + width] *= boost
    return rng.poisson(rates).astype(float)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            KleinbergDetector(scaling=1.0)
        with pytest.raises(ValueError):
            KleinbergDetector(gamma=0.0)
        with pytest.raises(ValueError):
            KleinbergDetector(states=1)


class TestTwoState:
    def test_finds_planted_burst(self):
        counts = bursty_counts()
        bursts = KleinbergDetector().detect(counts)
        assert len(bursts) == 1
        burst = bursts[0]
        assert 115 <= burst.start <= 125
        assert 135 <= burst.end <= 145
        assert burst.level == 1

    def test_flat_stream_has_almost_no_bursts(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(50.0, size=300).astype(float)
        # With Kleinberg's default gamma a lucky day can flicker into the
        # burst state; anything beyond a couple of isolated days would be
        # a real false-positive problem.
        bursts = KleinbergDetector().detect(counts)
        assert sum(len(b) for b in bursts) <= 2
        # A stricter transition cost removes even those.
        assert KleinbergDetector(gamma=3.0).detect(counts) == []

    def test_state_sequence_shape(self):
        counts = bursty_counts()
        states = KleinbergDetector().state_sequence(counts)
        assert states.shape == (200,)
        assert set(np.unique(states)) <= {0, 1}

    def test_higher_gamma_is_more_conservative(self):
        counts = bursty_counts(boost=2.0, width=6, seed=3)
        eager = KleinbergDetector(gamma=0.5).detect(counts)
        strict = KleinbergDetector(gamma=20.0).detect(counts)
        eager_days = sum(len(b) for b in eager)
        strict_days = sum(len(b) for b in strict)
        assert strict_days <= eager_days

    def test_two_separated_bursts(self):
        counts = bursty_counts(n=300, start=50, width=15, seed=4)
        counts[200:215] *= 4.0
        bursts = KleinbergDetector().detect(counts)
        assert len(bursts) == 2
        assert bursts[0].end < bursts[1].start

    def test_burst_at_stream_end(self):
        counts = bursty_counts(n=150, start=130, width=20, seed=5)
        bursts = KleinbergDetector().detect(counts)
        assert bursts
        assert bursts[-1].end == 149


class TestHierarchical:
    def test_stronger_burst_reaches_higher_state(self):
        rng = np.random.default_rng(6)
        rates = np.full(300, 40.0)
        rates[100:120] *= 2.2   # moderate burst (may fragment)
        rates[200:220] *= 9.0   # extreme burst
        counts = rng.poisson(rates).astype(float)
        detector = KleinbergDetector(states=4)
        bursts = detector.detect(counts)
        moderate = [b for b in bursts if b.end < 150]
        extreme = [b for b in bursts if b.start >= 150]
        assert moderate and extreme
        assert max(b.level for b in extreme) > max(b.level for b in moderate)
        # The extreme burst is caught as one clean run.
        assert len(extreme) == 1
        assert 195 <= extreme[0].start <= 205
        assert 215 <= extreme[0].end <= 225

    def test_burst_dataclass(self):
        burst = KleinbergBurst(10, 14, 2)
        assert len(burst) == 5
        assert burst < KleinbergBurst(20, 21, 1)


class TestAgreementWithMovingAverage:
    def test_both_flag_the_halloween_burst(self):
        """The two detectors agree on the obvious seasonal burst."""
        from repro.bursts import BurstDetector, compact_bursts
        from repro.datagen import QueryLogGenerator

        series = QueryLogGenerator(seed=0).series("halloween")
        kleinberg = KleinbergDetector().detect(series.values)
        standardized = series.standardize()
        annotation = BurstDetector.long_term().detect(standardized)
        ma_bursts = compact_bursts(standardized, annotation)

        assert kleinberg and ma_bursts
        k_days = set()
        for burst in kleinberg:
            k_days.update(range(burst.start, burst.end + 1))
        ma_days = set()
        for burst in ma_bursts:
            ma_days.update(range(burst.start, burst.end + 1))
        overlap = len(k_days & ma_days) / min(len(k_days), len(ma_days))
        assert overlap > 0.5
