"""Adaptive (variable-k) compression — the paper's future-work extension.

Section 8 suggests: "add the best coefficients until the compressed
representation contains k% of the energy in the signal (or, equivalently,
the error is below some threshold)".  :class:`AdaptiveEnergyCompressor`
implements exactly that.  The produced sketches carry the error and the
``minProperty``, so every bound algorithm and the VP-tree index work on
them unchanged — which is the point the paper makes about this extension
being "easily indexed using our customized VP-tree index".
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import SpectralSketch
from repro.compression.first_k import _sketch_from_indexes
from repro.exceptions import CompressionError
from repro.spectral.dft import Spectrum

__all__ = ["AdaptiveEnergyCompressor"]


class AdaptiveEnergyCompressor:
    """Keep the fewest best coefficients reaching an energy fraction.

    Parameters
    ----------
    energy_fraction:
        Target fraction of the signal energy (excluding DC) that the
        retained coefficients must reach, in ``(0, 1]``.
    max_k:
        Optional hard cap on the number of retained coefficients.
    method:
        Method tag recorded on the produced sketches (the sketches are
        BestMinError-shaped, so that is the natural default).
    """

    def __init__(
        self,
        energy_fraction: float,
        max_k: int | None = None,
        method: str = "adaptive_best_min_error",
    ) -> None:
        if not 0.0 < energy_fraction <= 1.0:
            raise CompressionError(
                f"energy_fraction must be in (0, 1], got {energy_fraction}"
            )
        if max_k is not None and max_k < 1:
            raise CompressionError(f"max_k must be >= 1, got {max_k}")
        self.energy_fraction = energy_fraction
        self.max_k = max_k
        self.method = method

    def compress(self, spectrum: Spectrum) -> SpectralSketch:
        """Compress, growing k until the energy target is met."""
        magnitudes = spectrum.magnitudes.copy()
        if len(magnitudes) > 0:
            magnitudes[0] = 0.0  # DC is zero on standardised data anyway
        powers = spectrum.weights * magnitudes**2
        total = float(powers.sum())
        # Rank coefficients best-first with the same deterministic
        # low-frequency tie-breaking as best_indexes().
        order = np.argsort(-magnitudes[1:], kind="stable") + 1
        if total == 0.0:
            chosen = order[:1]
        else:
            cumulative = np.cumsum(powers[order])
            needed = int(
                np.searchsorted(
                    cumulative, self.energy_fraction * total - 1e-12
                )
                + 1
            )
            chosen = order[: min(needed, order.size)]
        if self.max_k is not None:
            chosen = chosen[: self.max_k]
        min_power = float(magnitudes[chosen].min())
        indexes = np.sort(chosen)
        return _sketch_from_indexes(
            spectrum, indexes, True, min_power, self.method
        )

    def compress_series(self, values) -> SpectralSketch:
        """Convenience: transform a raw sequence, then compress it."""
        return self.compress(Spectrum.from_series(values))
