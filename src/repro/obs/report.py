"""Run summaries over a metrics registry.

Turns the raw instrument values into the quantities the paper's
evaluation argues about: per-query latency percentiles (from the
``span.*`` histograms), the prune ratio of every index (fraction of the
database discarded without an exact comparison), bound-kernel work and
pages touched.  Two consumers:

* :func:`render_report` — the human-readable run summary printed by
  ``python -m repro.evaluation --obs`` and the instrumented examples;
* :func:`write_json_lines` — the machine-readable artifact: every raw
  metric and span event plus one ``{"type": "derived", ...}`` record per
  computed quantity.

>>> from repro.obs.metrics import observed, add
>>> with observed() as registry:
...     add("index.flat.search.full_retrievals", 25)
...     add("index.flat.search.candidates_pruned", 75)
>>> derived_metrics(registry)["index.flat.search.prune_ratio"]
0.75
"""

from __future__ import annotations

import io

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonLinesSink, TableSink, export

__all__ = [
    "derived_metrics",
    "render_report",
    "render_table",
    "write_json_lines",
]


def derived_metrics(registry: MetricsRegistry) -> dict[str, float]:
    """Quantities computed from the raw counters.

    * ``<prefix>.prune_ratio`` for every instrumented search prefix:
      ``candidates_pruned / (candidates_pruned + full_retrievals)`` — the
      fraction of the database never compared exactly (the complement of
      fig. 22's "fraction examined");
    * ``bounds.pairs_per_kernel_call`` — batching efficiency of the bound
      kernels;
    * ``storage.pages_per_read`` — I/O density of the sequence store;
    * ``storage.cache.hit_rate`` — fraction of sequence reads served by
      the hot-read :class:`~repro.storage.SequenceCache`.
    """
    counters = registry.snapshot()["counters"]
    derived: dict[str, float] = {}
    for name, pruned in counters.items():
        if not name.endswith(".candidates_pruned"):
            continue
        prefix = name[: -len(".candidates_pruned")]
        verified = counters.get(f"{prefix}.full_retrievals", 0)
        if pruned + verified > 0:
            derived[f"{prefix}.prune_ratio"] = pruned / (pruned + verified)
    kernel_calls = counters.get("bounds.kernel_calls", 0)
    if kernel_calls:
        derived["bounds.pairs_per_kernel_call"] = (
            counters.get("bounds.pairs", 0) / kernel_calls
        )
    read_calls = counters.get("storage.read_calls", 0)
    if read_calls:
        derived["storage.pages_per_read"] = (
            counters.get("storage.pages_read", 0) / read_calls
        )
    cache_hits = counters.get("storage.cache.hits", 0)
    cache_misses = counters.get("storage.cache.misses", 0)
    if cache_hits + cache_misses > 0:
        derived["storage.cache.hit_rate"] = cache_hits / (
            cache_hits + cache_misses
        )
    return derived


def _span_histograms(registry: MetricsRegistry):
    snapshot = registry.snapshot()["histograms"]
    return {
        name[len("span."):]: summary
        for name, summary in snapshot.items()
        if name.startswith("span.")
    }


def render_report(registry: MetricsRegistry) -> str:
    """A human-readable summary of one observed run."""
    out = io.StringIO()
    print("=== observability report ===", file=out)

    spans = _span_histograms(registry)
    if spans:
        print("\nstage latencies (wall-clock):", file=out)
        width = max(len(name) for name in spans)
        for name, summary in spans.items():
            print(
                f"  {name:<{width}s}  n={summary['count']:<6d} "
                f"p50={summary['p50'] * 1e3:9.3f}ms  "
                f"p95={summary['p95'] * 1e3:9.3f}ms  "
                f"total={summary['total']:8.3f}s",
                file=out,
            )

    derived = derived_metrics(registry)
    if derived:
        print("\nderived:", file=out)
        width = max(len(name) for name in derived)
        for name, value in sorted(derived.items()):
            print(f"  {name:<{width}s}  {value:.4f}", file=out)

    counters = registry.snapshot()["counters"]
    if counters:
        print("\ncounters:", file=out)
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            print(f"  {name:<{width}s}  {value}", file=out)

    if registry.dropped_events:
        print(f"\n({registry.dropped_events} span events dropped)", file=out)
    return out.getvalue()


def render_table(registry: MetricsRegistry) -> str:
    """The raw instruments as aligned tables (no derived quantities)."""
    sink = TableSink(out=io.StringIO())
    export(registry, sink)
    return sink.render()


def write_json_lines(registry: MetricsRegistry, target) -> None:
    """Write the full run record — raw and derived — as JSON lines."""
    with JsonLinesSink(target) as sink:
        export(registry, sink)
        for name, value in sorted(derived_metrics(registry).items()):
            sink.write({"type": "derived", "name": name, "value": value})
