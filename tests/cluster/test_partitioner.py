"""The deterministic shard partitioner."""

import numpy as np
import pytest

from repro.cluster import Partitioner
from repro.exceptions import ReproError


class TestAssignment:
    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_members_partition_the_population(self, policy, shards):
        parts = Partitioner(shards, policy=policy)
        members = parts.members(97)
        assert len(members) == shards
        merged = np.sort(np.concatenate(members))
        assert np.array_equal(merged, np.arange(97))

    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    def test_deterministic_across_instances(self, policy):
        a = Partitioner(5, policy=policy, seed=3).assign(200)
        b = Partitioner(5, policy=policy, seed=3).assign(200)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("policy", ["hash", "round_robin"])
    def test_shard_of_matches_assign(self, policy):
        parts = Partitioner(4, policy=policy, seed=1)
        assignment = parts.assign(64)
        assert [parts.shard_of(i) for i in range(64)] == list(assignment)

    def test_round_robin_is_perfectly_balanced(self):
        members = Partitioner(4, policy="round_robin").members(100)
        assert [len(m) for m in members] == [25, 25, 25, 25]

    def test_hash_spreads_over_every_shard(self):
        members = Partitioner(7, policy="hash").members(210)
        sizes = [len(m) for m in members]
        assert all(size > 0 for size in sizes)
        # An avalanche hash over 210 sequential ids should not leave any
        # shard pathologically starved or overloaded.
        assert max(sizes) < 3 * min(sizes)

    def test_hash_seed_changes_the_split(self):
        base = Partitioner(4, policy="hash", seed=0).assign(128)
        reseeded = Partitioner(4, policy="hash", seed=9).assign(128)
        assert not np.array_equal(base, reseeded)

    def test_single_shard_takes_everything(self):
        parts = Partitioner(1, policy="hash")
        assert np.array_equal(parts.assign(10), np.zeros(10, dtype=np.intp))


class TestValidation:
    def test_shard_count_must_be_positive(self):
        with pytest.raises(ReproError, match="shard count"):
            Partitioner(0)

    def test_unknown_policy_lists_available(self):
        with pytest.raises(ReproError, match="round_robin"):
            Partitioner(2, policy="alphabetical")

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            Partitioner(2).assign(-1)

    def test_negative_seq_id_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            Partitioner(2).shard_of(-1)
