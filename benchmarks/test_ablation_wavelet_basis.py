"""Ablation A6: Fourier vs Haar wavelet basis for the same machinery.

Section 3 claims the algorithms "can be adapted to any class of
orthogonal decompositions ... with minimal or no adjustments".  The
ablation runs the identical compressor + bound stack in both bases and
compares (a) bound validity, (b) tightness on the periodic query-log data
(Fourier's home turf) and (c) tightness on piecewise-constant data
(wavelets' home turf).
"""

import numpy as np

from repro.bounds import bounds_for
from repro.compression import BestErrorCompressor
from repro.evaluation import format_table
from repro.spectral import Spectrum
from repro.timeseries import zscore
from repro.wavelets import haar_spectrum


def _cumulative_lb(rows, to_spectrum, compressor):
    total_lb, total_true = 0.0, 0.0
    for i in range(0, len(rows) - 1, 2):
        q, t = rows[i], rows[i + 1]
        pair = bounds_for(to_spectrum(q), compressor.compress(to_spectrum(t)))
        total_lb += pair.lower
        total_true += float(np.linalg.norm(q - t))
        # Validity in either basis.
        assert pair.lower <= total_true + total_lb  # cheap sanity
    return total_lb, total_true


def test_ablation_wavelet_basis(database_matrix, report, benchmark):
    compressor = BestErrorCompressor(12)
    periodic = database_matrix[:120, :512]

    rng = np.random.default_rng(6)
    piecewise = np.array(
        [zscore(np.repeat(rng.normal(size=16), 32)) for _ in range(120)]
    )

    rows = []
    results = {}
    for label, data in (("periodic logs", periodic), ("piecewise", piecewise)):
        for basis, to_spectrum in (
            ("fourier", Spectrum.from_series),
            ("haar", haar_spectrum),
        ):
            lb, true = _cumulative_lb(data, to_spectrum, compressor)
            results[(label, basis)] = lb / true
            rows.append((label, basis, lb, true, lb / true))

    report(
        format_table(
            ("workload", "basis", "cumulative LB", "true distance", "ratio"),
            rows,
            title="ablation A6: the same machinery under two orthonormal bases",
            digits=3,
        ),
        "each basis is tightest on its home workload; both remain valid",
    )
    # Fourier wins on periodic query logs, Haar on piecewise-constant data.
    assert results[("periodic logs", "fourier")] > results[("periodic logs", "haar")]
    assert results[("piecewise", "haar")] > results[("piecewise", "fourier")]
    # And both are genuine lower bounds (ratio <= 1 + epsilon).
    for ratio in results.values():
        assert ratio <= 1.0 + 1e-9

    x = piecewise[0]
    benchmark(haar_spectrum, x)
