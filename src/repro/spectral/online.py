"""Incremental periodogram maintenance: the sliding DFT.

The batch pipeline recomputes :func:`~repro.spectral.periodogram
.periodogram` from scratch — an O(n log n) ``rfft`` per call.  A stream
sees one completed day at a time, and recomputing the whole transform
daily to watch for period changes wastes almost all of that work: when a
length-``n`` window slides by one sample (drop ``x_old``, admit
``x_new``), every *unnormalised* DFT coefficient obeys the exact
recurrence

.. math::

    S_k' = (S_k - x_{old} + x_{new}) \\; e^{+j 2 \\pi k / n}

— the classic *sliding DFT* — so the half spectrum updates in O(n)
multiply-adds instead of O(n log n).

Float drift and the bit-identity contract
-----------------------------------------
The recurrence is exact in real arithmetic but accumulates rounding in
floats: after many slides the maintained coefficients drift away from
what a fresh ``rfft`` of the window would produce.  This class therefore
keeps **two grades** of answer:

* :attr:`power` — the recurrence-grade spectrum, O(n) per push, with a
  drift *guard*: every slide cross-checks the coefficients' Parseval
  energy against the window's running time-domain energy (itself
  maintained incrementally and re-anchored exactly at every refresh),
  and a relative mismatch beyond ``drift_tolerance`` (or
  ``refresh_every`` slides, whichever first) triggers a full ``rfft``
  recompute.  Between refreshes the powers are approximate but
  drift-bounded.  The slide path is deliberately allocation-light —
  in-place coefficient updates, scalar energy bookkeeping, one
  ``vdot`` for the guard — so a push costs a handful of O(n)
  vector ops, measurably cheaper than a fresh ``rfft``
  (``benchmarks/test_detector_models.py`` prices both).
* :meth:`periodogram` / :meth:`spectrum` — the authoritative grade:
  refreshes first whenever the recurrence state is dirty, so the result
  is **bit-identical** to the batch :func:`~repro.spectral.periodogram
  .periodogram` of the current window contents, at every prefix
  (asserted by ``tests/spectral/test_online_periodogram.py``).

While the buffer is still filling (fewer than ``window`` samples seen)
every bin's value depends on the prefix length, so there is nothing to
slide: pushes in the growing phase recompute the exact ``rfft`` of the
prefix directly and the state is never dirty.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.exceptions import SeriesLengthError
from repro.spectral.dft import Spectrum, half_weights
from repro.spectral.periodogram import Periodogram

__all__ = ["OnlinePeriodogram"]


class OnlinePeriodogram:
    """Sliding-window periodogram fed one value per day.

    Parameters
    ----------
    window:
        Analysis window length ``n``.  Until ``n`` samples arrive the
        whole prefix is analysed (matching what a batch caller would
        do); afterwards the window slides and the DFT recurrence takes
        over.
    drift_tolerance:
        Relative Parseval-energy mismatch beyond which the recurrence
        state is declared drifted and recomputed exactly.
    refresh_every:
        Unconditional exact-recompute cadence (slides between
        refreshes), bounding worst-case drift even when the energy
        guard stays quiet.
    """

    def __init__(
        self,
        window: int,
        drift_tolerance: float = 1e-9,
        refresh_every: int = 512,
    ) -> None:
        window = int(window)
        if window < 4:
            raise ValueError(
                f"window must be >= 4 for spectral analysis, got {window}"
            )
        if drift_tolerance <= 0.0:
            raise ValueError(
                f"drift_tolerance must be positive, got {drift_tolerance}"
            )
        if refresh_every < 1:
            raise ValueError(
                f"refresh_every must be >= 1, got {refresh_every}"
            )
        self.window = window
        self.drift_tolerance = float(drift_tolerance)
        self.refresh_every = int(refresh_every)
        self._buffer = np.zeros(window, dtype=np.float64)
        self._pos = 0  # next write slot once the buffer is full
        self._size = 0  # total values pushed (not capped)
        self._coeffs = np.zeros(0, dtype=np.complex128)
        self._dirty = False
        self._since_refresh = 0
        # Running time-domain window energy, maintained by scalar
        # updates on the slide path and re-anchored exactly (recomputed
        # from the buffer) at every refresh.
        self._energy = 0.0
        # e^{+j 2 pi k / n} for k = 0 .. n//2 — the slide twiddles.
        self._twiddle = np.exp(
            2j * np.pi * np.arange(window // 2 + 1) / window
        )
        #: Diagnostics: total pushes, recurrence slides, exact recomputes.
        self.pushes = 0
        self.slides = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return min(self._size, self.window)

    @property
    def size(self) -> int:
        """Total values pushed so far (not capped at the window)."""
        return self._size

    @property
    def full(self) -> bool:
        """Whether the sliding phase has begun."""
        return self._size >= self.window

    @property
    def n(self) -> int:
        """Length of the sequence currently analysed."""
        return len(self)

    def values(self) -> np.ndarray:
        """The current window contents, oldest first (a copy)."""
        if not self.full:
            return self._buffer[: self._size].copy()
        return np.concatenate(
            (self._buffer[self._pos :], self._buffer[: self._pos])
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def push(self, value) -> None:
        """Absorb one completed day.

        O(n log n) while the buffer is filling (exact prefix ``rfft``),
        O(n) afterwards (recurrence slide + drift guard), except when
        the guard demands an exact refresh.
        """
        value = float(value)  # scalar validation: the push path is hot
        if not math.isfinite(value):
            raise SeriesLengthError("sequence contains NaN or infinite values")
        if not self.full:
            self._buffer[self._size] = value
            self._size += 1
            self._energy += value * value
            # Growing phase: every bin depends on the prefix length, so
            # recompute exactly; the state is never dirty here.
            self._coeffs = np.fft.rfft(self._buffer[: self._size])
            self._dirty = False
        else:
            oldest = self._buffer[self._pos]
            self._buffer[self._pos] = value
            self._pos = (self._pos + 1) % self.window
            self._size += 1
            self._energy += value * value - oldest * oldest
            # In place: one scalar add, one vector multiply, no
            # temporaries — the whole point of sliding instead of
            # recomputing.
            self._coeffs += value - oldest
            self._coeffs *= self._twiddle
            self._dirty = True
            self._since_refresh += 1
            self.slides += 1
            obs.add("spectral.online_slides")
            if self._since_refresh >= self.refresh_every or self._drifted():
                self._refresh()
        self.pushes += 1
        obs.add("spectral.online_pushes")

    def extend(self, values) -> None:
        """Push a whole block of days in order."""
        for value in np.asarray(values, dtype=np.float64):
            self.push(value)

    # ------------------------------------------------------------------
    # Drift guard
    # ------------------------------------------------------------------
    def _drifted(self) -> bool:
        # Parseval over the half spectrum without materialising the
        # weight product: sum(w_k |S_k|^2) = 2 sum|S_k|^2 - |S_0|^2
        # (- |S_{n/2}|^2 for even n), one vdot and scalar corrections.
        coeffs = self._coeffs
        total = 2.0 * float(np.vdot(coeffs, coeffs).real)
        total -= abs(coeffs[0]) ** 2
        if self.window % 2 == 0:
            total -= abs(coeffs[-1]) ** 2
        energy_spec = total / self.window
        scale = max(self._energy, 1e-30)
        return abs(self._energy - energy_spec) > self.drift_tolerance * scale

    def _refresh(self) -> None:
        """Exact recompute of the maintained coefficients and energy."""
        window = self.values()
        self._coeffs = np.fft.rfft(window)
        self._energy = float(np.dot(window, window))
        self._dirty = False
        self._since_refresh = 0
        self.refreshes += 1
        obs.add("spectral.online_refreshes")

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    @property
    def power(self) -> np.ndarray:
        """Recurrence-grade periodogram powers (drift-bounded, O(bins)).

        ``|S_k|^2 / n`` over the maintained (possibly slid) coefficients
        — within ``drift_tolerance`` of the exact answer by the energy
        guard, but not necessarily bit-identical between refreshes.  Use
        :meth:`periodogram` when exactness matters.
        """
        if self._size == 0:
            return np.zeros(0, dtype=np.float64)
        return np.abs(self._coeffs) ** 2 / self.n

    def periodogram(self) -> Periodogram:
        """The batch-identical :class:`Periodogram` of the current window.

        Refreshes the recurrence state first when it is dirty, so the
        returned powers are bit-identical to
        ``periodogram(self.values())`` — the authoritative read path.
        """
        if self._size == 0:
            raise ValueError("no values pushed yet")
        if self._dirty:
            self._refresh()
        coefficients = self._coeffs / math.sqrt(self.n)
        return Periodogram(np.abs(coefficients) ** 2, self.n)

    def spectrum(self) -> Spectrum:
        """The batch-identical complex :class:`Spectrum` of the window."""
        if self._size == 0:
            raise ValueError("no values pushed yet")
        if self._dirty:
            self._refresh()
        n = self.n
        return Spectrum(
            self._coeffs / math.sqrt(n), half_weights(n), n
        )
