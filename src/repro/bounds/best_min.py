"""Algorithm BestMin (section 3.3).

Uses only the ``minProperty``: every omitted coefficient of ``T`` has
magnitude at most ``minPower``, the smallest stored best coefficient.
Geometrically (fig. 6), each omitted :math:`T^-_i` lies inside the complex
disc of radius ``minPower``, so for each omitted query coefficient

.. math::

    \\lVert Q^-_i \\rVert - minPower \\;\\le\\;
    \\lVert Q^-_i - T^-_i \\rVert \\;\\le\\;
    \\lVert Q^-_i \\rVert + minPower

with the lower bound clamped at zero when :math:`\\lVert Q^-_i \\rVert`
is within the disc.  Both bounds are provably valid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounds.core import BoundPair, partition
from repro.compression.base import SpectralSketch
from repro.exceptions import CompressionError
from repro.spectral.dft import Spectrum

__all__ = ["best_min_bounds"]


def best_min_bounds(query: Spectrum, sketch: SpectralSketch) -> BoundPair:
    """LB/UB_BestMin from the stored coefficients and ``minPower``."""
    if sketch.min_power is None:
        raise CompressionError(
            f"BestMin bounds need a best-coefficient sketch (minProperty); "
            f"method {sketch.method!r} does not provide one"
        )
    part = partition(query, sketch)
    mags = part.omitted_magnitudes
    weights = part.omitted_weights
    min_power = sketch.min_power

    below = np.maximum(mags - min_power, 0.0)
    lower_sq = float(np.dot(weights, below**2))
    upper_sq = float(np.dot(weights, (mags + min_power) ** 2))
    return BoundPair(
        math.sqrt(part.exact_sq + lower_sq),
        math.sqrt(part.exact_sq + upper_sq),
    )
